#!/usr/bin/env python3
"""Extending the template library with a custom activity.

The paper's framework is extensible by design: "for any other, new
activity that the designer wishes to introduce, explicit semantics can
also be given" (section 3.4).  This example adds a **phone-number
normalizer** — a row-wise cleaning activity in the spirit of the
Potter's Wheel / AJAX tools the paper cites — by:

1. declaring an :class:`ActivityTemplate` (auxiliary schemata + cost
   shape + where it may move),
2. registering an executable operator with the engine,
3. using it in a workflow and letting the optimizer move it around.

Run:  python examples/custom_templates.py
"""

from repro import Activity, ETLWorkflow, RecordSet, RecordSetKind, Schema, optimize
from repro.core.schema import EMPTY_SCHEMA
from repro.engine import EngineContext, Executor, default_registry, default_scalar_functions
from repro.templates import (
    ActivityKind,
    CostShape,
    SchemaPlan,
    TemplateLibrary,
    default_library,
)
from repro.templates.base import ActivityTemplate
from repro.templates import builtin as t


# -- 1. the template ---------------------------------------------------------------

def _normalize_phone_plan(params):
    attr = params["attr"]
    return SchemaPlan(
        functionality_per_input=(Schema([attr]),),
        generated=EMPTY_SCHEMA,       # in-place: the reference name survives
        projected_out=EMPTY_SCHEMA,
    )


NORMALIZE_PHONE = ActivityTemplate(
    name="normalize_phone",
    kind=ActivityKind.FUNCTION,
    arity=1,
    cost_shape=CostShape.LINEAR,
    param_names=("attr",),
    planner=_normalize_phone_plan,
    distributes_over=frozenset({"union"}),
    injective=False,  # "+30 210..." and "0030 210..." collapse to one form
    predicate_name="PHONE",
    doc="Normalize phone numbers to digits-only international form.",
)


# -- 2. the executable semantics ----------------------------------------------------

def _exec_normalize_phone(activity, inputs, ctx):
    attr = activity.params["attr"]
    result = []
    for row in inputs[0]:
        new_row = dict(row)
        value = new_row[attr]
        if value is not None:
            digits = "".join(ch for ch in str(value) if ch.isdigit())
            new_row[attr] = digits.removeprefix("00") or None
        result.append(new_row)
    return result


# -- 3. use it ------------------------------------------------------------------------

def build_workflow(library: TemplateLibrary) -> ETLWorkflow:
    wf = ETLWorkflow()
    schema = Schema(["CUST_ID", "PHONE", "SCORE"])
    crm = wf.add_node(
        RecordSet("1", "CRM", schema, RecordSetKind.SOURCE, cardinality=5000)
    )
    web = wf.add_node(
        RecordSet("2", "WEB", schema, RecordSetKind.SOURCE, cardinality=9000)
    )
    normalize_a = wf.add_node(
        Activity("3", library.get("normalize_phone"), {"attr": "PHONE"})
    )
    normalize_b = wf.add_node(
        Activity("4", library.get("normalize_phone"), {"attr": "PHONE"})
    )
    union = wf.add_node(Activity("5", t.UNION, {}, name="U"))
    keep_hot_leads = wf.add_node(
        Activity(
            "6",
            t.SELECTION,
            {"attr": "SCORE", "op": ">=", "value": 0.8},
            selectivity=0.2,
            name="σ(SCORE>=0.8)",
        )
    )
    not_null = wf.add_node(
        Activity("7", t.NOT_NULL, {"attr": "PHONE"}, selectivity=0.9)
    )
    dw = wf.add_node(RecordSet("9", "LEADS", schema, RecordSetKind.TARGET))

    wf.add_edge(crm, normalize_a)
    wf.add_edge(web, normalize_b)
    wf.add_edge(normalize_a, union, port=0)
    wf.add_edge(normalize_b, union, port=1)
    wf.add_edge(union, keep_hot_leads)
    wf.add_edge(keep_hot_leads, not_null)
    wf.add_edge(not_null, dw)
    wf.validate()
    wf.propagate_schemas()
    return wf


def main():
    library = default_library()
    library.register(NORMALIZE_PHONE)

    registry = default_registry()
    registry.register("normalize_phone", _exec_normalize_phone)

    workflow = build_workflow(library)
    result = optimize(workflow, algorithm="hs")
    print(result.summary())
    print("initial :", result.initial.signature)
    print("best    :", result.best.signature)
    # The optimizer factorized the two homologous normalizers after the
    # union (one pass instead of two) and pushed σ(SCORE) into both
    # branches — or the other way round, whichever the cost model prefers.

    context = EngineContext(scalar_functions=default_scalar_functions())
    executor = Executor(context=context, registry=registry)
    data = {
        "CRM": [
            {"CUST_ID": 1, "PHONE": "+30 210-555-1234", "SCORE": 0.9},
            {"CUST_ID": 2, "PHONE": None, "SCORE": 0.95},
            {"CUST_ID": 3, "PHONE": "0030 210 555 9999", "SCORE": 0.1},
        ],
        "WEB": [
            {"CUST_ID": 4, "PHONE": "(210) 555 7777", "SCORE": 0.85},
            {"CUST_ID": 5, "PHONE": "210.555.8888", "SCORE": 0.2},
        ],
    }
    out = executor.run(result.best.workflow, data).targets["LEADS"]
    print(f"\nLEADS ({len(out)} rows):")
    for row in sorted(out, key=lambda r: r["CUST_ID"]):
        print(" ", row)


if __name__ == "__main__":
    main()
