#!/usr/bin/env python3
"""Compare ES, HS and HS-Greedy across workload sizes (paper section 4.2).

Generates one workflow per category, runs the three algorithms with the
paper's methodology (ES budgeted; the paper let it run 40 h and it still
"did not terminate" on medium/large), and prints the quality /
visited-states / time trade-off the evaluation section discusses.

Run:  python examples/algorithm_comparison.py [seed]
"""

import sys

from repro import exhaustive_search, greedy_search, heuristic_search
from repro.workloads import generate_workload

ES_BUDGETS = {"small": 4000, "medium": 2000, "large": 1000}


def main(seed: int = 1):
    print(f"{'category':<9}{'acts':>5}{'alg':>11}{'cost':>12}{'improv%':>9}"
          f"{'visited':>9}{'time(s)':>9}")
    for category in ("small", "medium", "large"):
        workload = generate_workload(category, seed=seed)
        runs = [
            exhaustive_search(
                workload.workflow,
                max_states=ES_BUDGETS[category],
                max_seconds=30.0,
            ),
            heuristic_search(workload.workflow),
            greedy_search(workload.workflow),
        ]
        for result in runs:
            mark = "" if result.completed else "*"
            print(
                f"{category:<9}{workload.activity_count:>5}"
                f"{result.algorithm:>11}{result.best_cost:>12,.0f}"
                f"{result.improvement_percent:>9.1f}"
                f"{result.visited_states:>8}{mark:<1}"
                f"{result.elapsed_seconds:>9.2f}"
            )
    print("* stopped on budget (paper: 'ES did not terminate')")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
