#!/usr/bin/env python3
"""Profile a workflow, calibrate its selectivities, re-optimize.

The closed loop a production deployment wants:

1. run the current design with the :class:`TracingExecutor` and see which
   activity actually dominates the night window;
2. measure real per-activity selectivities on the same run
   (:func:`measure_selectivities`) — the declared guesses are often off;
3. rebuild the workflow with measured selectivities
   (:func:`calibrate_workflow`) and re-optimize: with truthful numbers
   the optimizer may choose a different design.

Run:  python examples/profiling_and_calibration.py
"""

from repro import optimize
from repro.core.cost import ProcessedRowsCostModel, estimate
from repro.engine import calibrate_workflow, measure_selectivities
from repro.engine.tracing import TracingExecutor
from repro.workloads import generate_workload


def main():
    workload = generate_workload("small", seed=6)
    executor = TracingExecutor(context=workload.context)
    data = workload.make_data(data_seed=1, n=400)

    print("=== 1. profile the current design ===")
    executor.run(workload.workflow, data)
    print(executor.last_trace.render(top=8))

    print("\n=== 2. declared vs measured selectivities ===")
    measured = measure_selectivities(workload.workflow, data, executor)
    print(f"{'activity':<28}{'declared':>10}{'measured':>10}")
    for activity in sorted(workload.workflow.activities(), key=lambda a: a.id):
        if activity.id in measured:
            print(
                f"[{activity.id}] {activity.name:<22}"
                f"{activity.selectivity:>10.2f}{measured[activity.id]:>10.2f}"
            )

    print("\n=== 3. calibrate and re-optimize ===")
    model = ProcessedRowsCostModel()
    calibrated = calibrate_workflow(workload.workflow, data, executor)
    before = optimize(workload.workflow)
    after = optimize(calibrated)
    print(f"optimized with declared selectivities: {before.best.signature}")
    print(f"optimized with measured  selectivities: {after.best.signature}")
    same = before.best.signature == after.best.signature
    print(f"same design either way: {same}")
    print(
        f"calibrated-model cost of the calibrated optimum: "
        f"{estimate(after.best.workflow, model).total:,.0f} "
        f"(initial: {estimate(calibrated, model).total:,.0f})"
    )


if __name__ == "__main__":
    main()
