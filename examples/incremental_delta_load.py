#!/usr/bin/env python3
"""Incremental (delta) warehouse load via snapshot difference.

A classic ETL pattern the paper's binary-activity machinery covers:
today's full extract MINUS yesterday's loaded snapshot yields the new
rows, which are then cleansed and loaded.  Filters distribute over the
difference — σ(A − B) = σ(A) − σ(B) — so the optimizer can push the
cheap selective checks *before* the expensive sort-merge difference,
shrinking both of its inputs.

Run:  python examples/incremental_delta_load.py
"""

import random

from repro import Activity, ETLWorkflow, RecordSet, RecordSetKind, Schema, optimize
from repro.core.cost import ProcessedRowsCostModel, estimate
from repro.engine import EngineContext, Executor, default_scalar_functions, empirically_equivalent
from repro.templates import builtin as t


def build_workflow() -> ETLWorkflow:
    wf = ETLWorkflow()
    schema = Schema(["ID", "REGION", "DATE", "AMOUNT"])
    extract = wf.add_node(
        RecordSet("1", "EXTRACT_TODAY", schema, RecordSetKind.SOURCE, 50_000)
    )
    snapshot = wf.add_node(
        RecordSet("2", "SNAPSHOT_YDAY", schema, RecordSetKind.SOURCE, 48_000)
    )
    delta = wf.add_node(Activity("3", t.DIFFERENCE, {}, selectivity=0.05, name="Δ(new-rows)"))
    wf.add_edge(extract, delta, port=0)
    wf.add_edge(snapshot, delta, port=1)

    # Cleansing written after the delta — the "reading order" design.
    amount_ok = wf.add_node(
        Activity(
            "4",
            t.RANGE_CHECK,
            {"attr": "AMOUNT", "low": 0.0, "high": 10_000.0},
            selectivity=0.70,
            name="RC(AMOUNT)",
        )
    )
    eu_only = wf.add_node(
        Activity(
            "5",
            t.SELECTION,
            {"attr": "REGION", "op": "==", "value": "EU"},
            selectivity=0.40,
            name="σ(REGION=EU)",
        )
    )
    wf.add_edge(delta, amount_ok)
    wf.add_edge(amount_ok, eu_only)
    dw = wf.add_node(RecordSet("9", "DW_DELTA", schema, RecordSetKind.TARGET))
    wf.add_edge(eu_only, dw)
    wf.validate()
    wf.propagate_schemas()
    return wf


def make_data(seed: int = 0, n_yday: int = 600, n_new: int = 40) -> dict:
    rng = random.Random(seed)

    def row(i):
        return {
            "ID": i,
            "REGION": rng.choice(["EU", "US"]),
            "DATE": f"{rng.randint(1, 6):02d}/01/2005",
            "AMOUNT": round(rng.uniform(-100, 12_000), 2),
        }

    yesterday = [row(i) for i in range(n_yday)]
    today = list(yesterday) + [row(10_000 + i) for i in range(n_new)]
    rng.shuffle(today)
    return {"EXTRACT_TODAY": today, "SNAPSHOT_YDAY": yesterday}


def main():
    workflow = build_workflow()
    model = ProcessedRowsCostModel()
    print(f"initial plan cost: {estimate(workflow, model).total:,.0f}")

    result = optimize(workflow, algorithm="hs", model=model)
    print(result.summary())
    print("initial :", result.initial.signature)
    print("best    :", result.best.signature)
    # Expected shape: both checks distributed into the two difference
    # inputs, i.e. σ/RC clones appear before node 3 on both branches.

    context = EngineContext(scalar_functions=default_scalar_functions())
    executor = Executor(context=context)
    data = make_data(seed=3)
    report = empirically_equivalent(workflow, result.best.workflow, data, executor)
    print(f"equivalent on data: {bool(report)}")

    run_best = executor.run(result.best.workflow, data)
    out = run_best.targets["DW_DELTA"]
    print(f"delta rows loaded: {len(out)} (EU-only, amount-checked, new since yesterday)")

    # The win is in the sort-merge difference, whose cost grows
    # super-linearly with its input: the distributed checks shrink what Δ
    # has to sort (the extra filter passes are linear and cheap).
    run_initial = executor.run(workflow, data)
    before = run_initial.stats.rows_processed["3"]
    after = run_best.stats.rows_processed["3"]
    print(f"rows entering the Δ sort-merge: {before:,} -> {after:,} "
          f"({100 * (before - after) / before:.0f}% fewer)")


if __name__ == "__main__":
    main()
