#!/usr/bin/env python3
"""Quickstart: optimize the paper's running example (Figs. 1 and 2).

Builds the Fig. 1 workflow — two part suppliers, one American, feeding a
European warehouse — optimizes it with the heuristic search, prints both
designs, and verifies on synthetic data that they produce identical
warehouse contents.

Run:  python examples/quickstart.py
"""

from repro import optimize, state_signature
from repro.core.cost import ProcessedRowsCostModel, estimate
from repro.engine import Executor, empirically_equivalent
from repro.workloads import fig1_workflow


def describe(workflow, model):
    report = estimate(workflow, model)
    print(f"  signature : {state_signature(workflow)}")
    print(f"  total cost: {report.total:,.0f} processed-row units")
    for group in workflow.local_groups():
        names = " -> ".join(a.name for a in group)
        print(f"  group     : {names}")


def main():
    scenario = fig1_workflow()
    model = ProcessedRowsCostModel()

    print("Initial design (paper Fig. 1):")
    describe(scenario.workflow, model)

    result = optimize(scenario.workflow, algorithm="heuristic", model=model)

    print("\nOptimized design (paper Fig. 2):")
    describe(result.best.workflow, model)
    print(f"\n{result.summary()}")

    # The optimized state keeps the warehouse contents bit-identical.
    data = scenario.make_data(seed=42)
    executor = Executor(context=scenario.context)
    report = empirically_equivalent(
        scenario.workflow, result.best.workflow, data, executor
    )
    print(f"same DW contents on sample data: {bool(report)}")

    rows = executor.run(result.best.workflow, data).targets["DW"]
    print(f"DW received {len(rows)} rows; first: {rows[0]}")


if __name__ == "__main__":
    main()
