#!/usr/bin/env python3
"""Physical optimization: implementations, memory budgets, interleaving.

The paper's future-work section names "the physical optimization of ETL
workflows (i.e., taking physical operators and access methods into
consideration)" as the next step.  This example walks the layer this
library builds for it:

1. logically optimize a workflow (the paper's contribution);
2. pick physical implementations for the result under different memory
   budgets and inspect the plans;
3. run the *logical* search directly against the physical cost model and
   compare the designs it chooses.

Run:  python examples/physical_planning.py
"""

from repro import optimize
from repro.core.cost import ProcessedRowsCostModel, estimate
from repro.physical import PhysicalCostModel, plan_physical
from repro.workloads import generate_workload


def main():
    workload = generate_workload("small", seed=9)
    model = ProcessedRowsCostModel()

    print("=== 1. logical optimization (sort-based cost model) ===")
    logical = optimize(workload.workflow, algorithm="hs", model=model)
    print(logical.summary())

    print("\n=== 2. physical plans for the logical optimum ===")
    for memory in (1e9, 500, 1):
        plan = plan_physical(logical.best.workflow, memory_rows=memory)
        print(plan.describe())
        print()

    print("=== 3. logical search under physical costs ===")
    for memory in (1e9, 1):
        result = optimize(
            workload.workflow,
            algorithm="hs",
            model=PhysicalCostModel(memory_rows=memory),
        )
        print(
            f"memory={memory:g} rows: cost {result.initial_cost:,.0f} -> "
            f"{result.best_cost:,.0f} ({result.improvement_percent:.0f}% better)"
        )
        print(f"  chosen design: {result.best.signature}")


if __name__ == "__main__":
    main()
