#!/usr/bin/env python3
"""A realistic nightly retail warehouse load, built from scratch.

The scenario the paper's introduction motivates: several operational
sources feed one warehouse fact table within a tight night-time window.
Here three regional order systems (EU, US, legacy) are cleansed,
surrogate-keyed, unified, and aggregated into daily revenue — and the
designer wrote the flow "in reading order", with the cheap selective
checks at the end.  The optimizer repairs that.

This example exercises the public API end to end:

* building a workflow by hand (activities, recordsets, ports);
* running all three algorithms and comparing their statistics;
* executing initial and optimized designs on generated data and
  comparing both the results and the engine's processed-row counts.

Run:  python examples/retail_dwh_load.py
"""

import random

from repro import Activity, ETLWorkflow, RecordSet, RecordSetKind, Schema, optimize
from repro.core.cost import ProcessedRowsCostModel, estimate
from repro.engine import EngineContext, Executor, default_scalar_functions, empirically_equivalent
from repro.templates import builtin as t

KEY_DOMAIN = 500


def build_workflow() -> ETLWorkflow:
    """Three branches -> union tree -> daily revenue aggregation."""
    wf = ETLWorkflow()
    source_schema = Schema(["ORDER_ID", "REGION", "DATE", "AMOUNT", "QTY", "DISCOUNT"])

    sources = []
    for index, name in enumerate(("ORDERS_EU", "ORDERS_US", "ORDERS_LEGACY")):
        sources.append(
            wf.add_node(
                RecordSet(
                    str(index + 1),
                    name,
                    source_schema,
                    RecordSetKind.SOURCE,
                    cardinality=4000 * (index + 1),
                )
            )
        )

    def branch(source, prefix, with_date_fix):
        """Cleansing first, filters last — the 'reading order' layout."""
        head = source
        def attach(activity):
            nonlocal head
            wf.add_node(activity)
            wf.add_edge(head, activity)
            head = activity

        attach(
            Activity(
                f"{prefix}0",
                t.FUNCTION_APPLY,
                {
                    "function": "net_amount",
                    "inputs": ("AMOUNT", "DISCOUNT"),
                    "output": "NET",
                },
                name=f"net({prefix})",
            )
        )
        attach(
            Activity(
                f"{prefix}1",
                t.SURROGATE_KEY,
                {"key_attr": "ORDER_ID", "skey_attr": "ORDER_SK", "lookup": "orders"},
                name=f"SK({prefix})",
            )
        )
        if with_date_fix:
            attach(
                Activity(
                    f"{prefix}2",
                    t.FUNCTION_APPLY,
                    {
                        "function": "date_us_to_eu",
                        "inputs": ("DATE",),
                        "output": "DATE",
                        "injective": True,
                    },
                    name=f"A2E({prefix})",
                )
            )
        # The selective business-rule checks, written last:
        attach(
            Activity(
                f"{prefix}3",
                t.NOT_NULL,
                {"attr": "QTY"},
                selectivity=0.97,
                name=f"NN(QTY)/{prefix}",
            )
        )
        attach(
            Activity(
                f"{prefix}4",
                t.RANGE_CHECK,
                {"attr": "QTY", "low": 1, "high": 50},
                selectivity=0.60,
                name=f"RC(QTY)/{prefix}",
            )
        )
        attach(
            Activity(
                f"{prefix}5",
                t.SELECTION,
                {"attr": "NET", "op": ">=", "value": 5.0},
                selectivity=0.50,
                name=f"σ(NET>=5)/{prefix}",
            )
        )
        return head

    heads = [
        branch(sources[0], "a", with_date_fix=False),
        branch(sources[1], "b", with_date_fix=True),
        branch(sources[2], "c", with_date_fix=False),
    ]

    union1 = wf.add_node(Activity("u1", t.UNION, {}, name="U1"))
    wf.add_edge(heads[0], union1, port=0)
    wf.add_edge(heads[1], union1, port=1)
    union2 = wf.add_node(Activity("u2", t.UNION, {}, name="U2"))
    wf.add_edge(union1, union2, port=0)
    wf.add_edge(heads[2], union2, port=1)

    revenue = wf.add_node(
        Activity(
            "g1",
            t.AGGREGATION,
            {
                "group_by": ("REGION", "DATE"),
                "measure": "NET",
                "agg": "sum",
                "output": "REVENUE",
            },
            selectivity=0.05,
            name="γSUM(NET->REVENUE)",
        )
    )
    wf.add_edge(union2, revenue)

    fact = wf.add_node(
        RecordSet(
            "z",
            "FACT_REVENUE",
            Schema(["REGION", "DATE", "REVENUE"]),
            RecordSetKind.TARGET,
        )
    )
    wf.add_edge(revenue, fact)
    wf.validate()
    wf.propagate_schemas()
    return wf


def make_context() -> EngineContext:
    functions = default_scalar_functions()
    functions["net_amount"] = (
        lambda amount, discount: None
        if amount is None
        else round(amount * (1.0 - (discount or 0.0)), 4)
    )
    context = EngineContext(scalar_functions=functions)
    context.lookups["orders"] = lambda order_id: 1_000_000 + order_id
    return context


def make_data(seed: int = 0) -> dict:
    rng = random.Random(seed)
    data = {}
    for name, region, n in (
        ("ORDERS_EU", "EU", 400),
        ("ORDERS_US", "US", 800),
        ("ORDERS_LEGACY", "LEG", 1200),
    ):
        rows = []
        for _ in range(n):
            month, day = rng.randint(1, 3), rng.randint(1, 28)
            rows.append(
                {
                    "ORDER_ID": rng.randrange(KEY_DOMAIN),
                    "REGION": region,
                    "DATE": f"{month:02d}/{day:02d}/2005",
                    "AMOUNT": round(rng.uniform(1, 300), 2),
                    "QTY": rng.choice([None] + list(range(1, 80))),
                    "DISCOUNT": rng.choice([0.0, 0.0, 0.1, 0.25]),
                }
            )
        data[name] = rows
    return data


def main():
    workflow = build_workflow()
    model = ProcessedRowsCostModel()
    print(f"Initial nightly load: {estimate(workflow, model).total:,.0f} cost units")

    results = {
        name: optimize(workflow, algorithm=name, **kwargs)
        for name, kwargs in (
            ("es", {"max_states": 3000, "max_seconds": 20}),
            ("hs", {}),
            ("greedy", {}),
        )
    }
    for result in results.values():
        print(" ", result.summary())

    best = min(results.values(), key=lambda r: r.best_cost)
    context = make_context()
    executor = Executor(context=context)
    data = make_data(seed=7)

    report = empirically_equivalent(workflow, best.best.workflow, data, executor)
    print(f"\noptimized design equivalent on data: {bool(report)}")

    before = executor.run(workflow, data).stats.total_rows_processed
    after = executor.run(best.best.workflow, data).stats.total_rows_processed
    print(f"rows actually processed: {before:,} -> {after:,} "
          f"({100 * (before - after) / before:.0f}% fewer)")

    facts = executor.run(best.best.workflow, data).targets["FACT_REVENUE"]
    facts.sort(key=lambda r: (r["REGION"], r["DATE"]))
    print(f"\nFACT_REVENUE sample ({len(facts)} rows):")
    for row in facts[:5]:
        print(" ", row)


if __name__ == "__main__":
    main()
