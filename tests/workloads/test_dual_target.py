"""The dual-target (fan-out) scenario: multi-target optimization."""

import pytest

from repro import optimize, state_signature
from repro.engine import Executor, empirically_equivalent
from repro.workloads import dual_target_scenario


@pytest.fixture
def dual():
    return dual_target_scenario()


class TestStructure:
    def test_two_targets(self, dual):
        names = [t.name for t in dual.workflow.targets()]
        assert names == ["DW_DETAIL", "DW_MONTHLY"]

    def test_signature_joins_pipelines(self, dual):
        assert state_signature(dual.workflow) == "1.2.3.4.5//1.6.7.8.9"

    def test_source_fans_out(self, dual):
        src = dual.workflow.node_by_id("1")
        assert len(dual.workflow.consumers(src)) == 2

    def test_local_groups_per_pipeline(self, dual):
        groups = [[a.id for a in g] for g in dual.workflow.local_groups()]
        assert groups == [["2", "3", "4"], ["6", "7", "8"]]


class TestOptimization:
    def test_both_pipelines_optimized_and_equivalent(self, dual):
        result = optimize(dual.workflow, algorithm="es")
        assert result.completed
        assert result.best_cost <= result.initial_cost
        report = empirically_equivalent(
            dual.workflow,
            result.best.workflow,
            dual.make_data(seed=3),
            Executor(context=dual.context),
        )
        assert report.equivalent

    def test_detail_pipeline_reorders_filters(self, dual):
        result = optimize(dual.workflow, algorithm="es")
        # σ(NET>=10) (0.4) moves before NN (0.95) in the detail pipeline.
        detail_part = result.best.signature.split("//")[0]
        assert detail_part == "1.2.4.3.5"

    def test_summary_threshold_stays_after_aggregation(self, dual):
        result = optimize(dual.workflow, algorithm="es")
        summary_part = result.best.signature.split("//")[1]
        assert summary_part.index("7") < summary_part.index("8")

    def test_execution_fills_both_targets(self, dual):
        executor = Executor(context=dual.context)
        out = executor.run(dual.workflow, dual.make_data(seed=1))
        assert len(out.targets["DW_DETAIL"]) > 0
        assert len(out.targets["DW_MONTHLY"]) > 0
        for row in out.targets["DW_MONTHLY"]:
            assert row["REVENUE"] >= 100.0
