"""The star-join scenario: transitions and equivalence across a JOIN."""

import pytest

from repro import optimize
from repro.core.transitions import Distribute, Factorize, Swap, shift_backward
from repro.engine import Executor, empirically_equivalent
from repro.workloads import star_join_scenario


@pytest.fixture
def star():
    return star_join_scenario()


class TestStructure:
    def test_workflow_valid(self, star):
        star.workflow.validate()
        star.workflow.propagate_schemas()

    def test_join_output_schema_merges_sides(self, star):
        derived = star.workflow.propagate_schemas()
        join = star.workflow.node_by_id("6")
        out = derived[join].output
        assert {"OID", "CUSTKEY", "NET", "SEGMENT", "BALANCE"} <= out.as_set

    def test_local_groups(self, star):
        groups = [[a.id for a in g] for g in star.workflow.local_groups()]
        assert groups == [["3", "4"], ["5"], ["7"]]


class TestTransitionsAcrossJoin:
    def test_key_check_distributes_over_join(self, star):
        wf = star.workflow
        distributed = Distribute(wf.node_by_id("6"), wf.node_by_id("7")).apply(wf)
        ids = {a.id for a in distributed.activities()}
        assert {"7_1", "7_2"} <= ids

    def test_one_sided_filter_cannot_distribute(self, star):
        """σ(NET) reads an attribute only the fact side provides; cloning
        it into the dimension branch is schema-invalid, so the (paper's
        both-branches) DIS is rejected as a whole."""
        wf = star.workflow
        # Make σ(NET) the join's consumer first (swap with the PK check).
        swapped = Swap(wf.node_by_id("6"), wf.node_by_id("7")).try_apply(wf)
        assert swapped is None  # 6 is binary: Swap refuses
        # Instead shift the PK check out of the way via distribution, then
        # σ(NET) is never adjacent... simpler: try DIS of σ directly after
        # building an adapted state is impossible — assert on a fresh state
        # where σ(NET) follows the join directly.
        from repro.core.activity import Activity
        from repro.core.recordset import RecordSet, RecordSetKind
        from repro.core.schema import Schema
        from repro.core.workflow import ETLWorkflow
        from repro.templates import builtin as t

        wf2 = ETLWorkflow()
        left = wf2.add_node(
            RecordSet("1", "L", Schema(["K", "A"]), RecordSetKind.SOURCE, 10)
        )
        right = wf2.add_node(
            RecordSet("2", "R", Schema(["K", "B"]), RecordSetKind.SOURCE, 10)
        )
        join = wf2.add_node(Activity("3", t.JOIN, {"on": ("K",)}, selectivity=0.1))
        sigma = wf2.add_node(
            Activity(
                "4", t.SELECTION, {"attr": "A", "op": ">=", "value": 1},
                selectivity=0.5,
            )
        )
        dw = wf2.add_node(
            RecordSet("9", "DW", Schema(["K", "A", "B"]), RecordSetKind.TARGET)
        )
        wf2.add_edge(left, join, port=0)
        wf2.add_edge(right, join, port=1)
        wf2.add_edge(join, sigma)
        wf2.add_edge(sigma, dw)
        assert not Distribute(join, sigma).is_applicable(wf2)

    def test_distributed_key_check_equivalent_on_data(self, star):
        wf = star.workflow
        distributed = Distribute(wf.node_by_id("6"), wf.node_by_id("7")).apply(wf)
        report = empirically_equivalent(
            wf, distributed, star.make_data(seed=4), Executor(context=star.context)
        )
        assert report.equivalent

    def test_factorize_back_over_join(self, star):
        wf = star.workflow
        distributed = Distribute(wf.node_by_id("6"), wf.node_by_id("7")).apply(wf)
        join = distributed.node_by_id("6")
        refactorized = Factorize(
            join, distributed.node_by_id("7_1"), distributed.node_by_id("7_2")
        ).apply(distributed)
        from repro.core.signature import state_signature

        assert state_signature(refactorized) == state_signature(wf)

    def test_key_filter_shifts_into_branch(self, star):
        """After DIS, the PK clone on the fact branch pushes down past the
        amount filter and the conversion toward the source."""
        wf = star.workflow
        distributed = Distribute(wf.node_by_id("6"), wf.node_by_id("7")).apply(wf)
        clone = distributed.node_by_id("7_1")
        # PK(CUSTKEY) does not interact with f(AMOUNT->NET) or σ(NET), so
        # two swaps carry it all the way back to the ORDERS source.
        shifted = shift_backward(distributed, clone, distributed.node_by_id("1"))
        assert shifted is not None
        assert len(shifted.swaps) == 2
        assert shifted.workflow.providers(clone) == [
            shifted.workflow.node_by_id("1")
        ]


class TestCrossSubsystem:
    def test_star_join_lints_clean(self, star):
        from repro.core.lint import lint_workflow

        assert lint_workflow(star.workflow) == []

    def test_star_join_physical_plan_memory_sensitivity(self, star):
        from repro.physical import plan_physical

        generous = plan_physical(star.workflow, memory_rows=1e9)
        tight = plan_physical(star.workflow, memory_rows=1)
        join = star.workflow.node_by_id("6")
        assert generous.implementation_of(join).name == "hash_join"
        assert tight.implementation_of(join).name == "sort_merge_join"

    def test_star_join_round_trips_json(self, star):
        from repro.core.signature import state_signature
        from repro.io import dumps, loads

        restored = loads(dumps(star.workflow))
        assert state_signature(restored) == state_signature(star.workflow)


class TestOptimization:
    def test_optimizer_improves_and_stays_equivalent(self, star):
        result = optimize(star.workflow, algorithm="es")
        assert result.completed
        assert result.best_cost <= result.initial_cost
        report = empirically_equivalent(
            star.workflow,
            result.best.workflow,
            star.make_data(seed=2),
            Executor(context=star.context),
        )
        assert report.equivalent

    def test_best_state_distributes_key_check(self, star):
        result = optimize(star.workflow, algorithm="es")
        ids = {a.id for a in result.best.workflow.activities()}
        assert {"7_1", "7_2"} <= ids

    def test_hs_matches_es(self, star):
        es = optimize(star.workflow, algorithm="es")
        hs = optimize(star.workflow, algorithm="hs")
        assert hs.best_cost == pytest.approx(es.best_cost)

    def test_join_rows_correct(self, star):
        executor = Executor(context=star.context)
        data = star.make_data(seed=2)
        out = executor.run(star.workflow, data).targets["FACT_ORDERS"]
        for row in out:
            assert row["SEGMENT"] == "GOLD"
            assert row["NET"] >= 20.0
            assert row["CUSTKEY"] not in (1, 2, 3)
