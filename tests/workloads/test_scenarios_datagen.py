"""Scenario builders and synthetic data."""

import pytest

from repro.core.signature import state_signature
from repro.workloads import (
    fig1_naming,
    fig4_context,
    fig4_states,
    make_generic_rows,
    make_parts1_rows,
    make_parts2_rows,
)
from repro.exceptions import NamingError


class TestFig1Scenario:
    def test_structure_matches_paper(self, fig1):
        assert state_signature(fig1.workflow) == "((1.3)//(2.4.5.6)).7.8.9"

    def test_workflow_is_valid(self, fig1):
        fig1.workflow.validate()
        fig1.workflow.propagate_schemas()

    def test_naming_registry_consistent(self):
        registry = fig1_naming()
        assert registry.reference_for("part key") == "PKEY"
        assert registry.reference_for("per-delivery cost in dollars") == "DCOST"
        # Dollar and euro costs are distinct entities.
        with pytest.raises(NamingError):
            registry.register("X", "per-delivery cost in dollars", "ECOST")


class TestFig4Scenario:
    def test_three_states(self, fig4):
        states, _ = fig4
        assert set(states) == {"initial", "distributed", "factorized"}
        for wf in states.values():
            wf.validate()
            wf.propagate_schemas()

    def test_context_contains_lookup(self):
        context = fig4_context()
        assert "skeys" in context.lookups


class TestDatagen:
    def test_parts1_schema(self):
        rows = make_parts1_rows(20, seed=1)
        assert len(rows) == 20
        assert set(rows[0]) == {"PKEY", "SOURCE", "DATE", "ECOST_M"}

    def test_parts1_null_rate(self):
        rows = make_parts1_rows(500, seed=1, null_rate=0.5)
        nulls = sum(1 for r in rows if r["ECOST_M"] is None)
        assert 150 < nulls < 350

    def test_parts2_dates_are_us_month_firsts(self):
        rows = make_parts2_rows(50, seed=1)
        for row in rows:
            month, day, year = row["DATE"].split("/")
            assert day == "01" and year == "2005"

    def test_generic_rows_schema(self):
        rows = make_generic_rows(10, 1, "S1")
        assert set(rows[0]) == {"KEY", "SRC", "DATE", "V1", "V2", "V3"}
        assert all(r["SRC"] == "S1" for r in rows)

    def test_generic_rows_value_range(self):
        rows = make_generic_rows(100, 2, "S", value_range=(10.0, 20.0))
        for row in rows:
            for attr in ("V2", "V3"):
                assert 10.0 <= row[attr] <= 20.0

    def test_generic_rows_only_v1_nullable(self):
        rows = make_generic_rows(200, 3, "S", null_rate=0.3)
        assert any(r["V1"] is None for r in rows)
        assert all(r["V2"] is not None for r in rows)

    def test_deterministic(self):
        assert make_generic_rows(5, 9, "S") == make_generic_rows(5, 9, "S")
