"""The random workload generator: determinism, size bands, executability."""

import pytest

from repro.engine import Executor
from repro.exceptions import ReproError
from repro.workloads import CATEGORY_SPECS, generate_suite, generate_workload


class TestDeterminism:
    def test_same_seed_same_workflow(self):
        first = generate_workload("small", seed=7)
        second = generate_workload("small", seed=7)
        from repro.core.signature import state_signature

        assert state_signature(first.workflow) == state_signature(second.workflow)
        assert first.activity_count == second.activity_count

    def test_different_seeds_differ(self):
        from repro.core.signature import state_signature

        signatures = {
            state_signature(generate_workload("small", seed=s).workflow)
            for s in range(5)
        }
        assert len(signatures) > 1

    def test_data_factory_deterministic(self):
        workload = generate_workload("tiny", seed=3)
        assert workload.make_data(1) == workload.make_data(1)


class TestSizeBands:
    @pytest.mark.parametrize("category", ["tiny", "small", "medium", "large"])
    def test_activity_counts_near_spec(self, category):
        spec = CATEGORY_SPECS[category]
        for seed in range(4):
            workload = generate_workload(category, seed=seed)
            low, high = spec.activities
            # The generator hits the target within the probabilistic
            # cleansing-flag noise; allow a small margin.
            assert low - 4 <= workload.activity_count <= high + 4

    def test_source_counts_in_spec(self):
        spec = CATEGORY_SPECS["large"]
        for seed in range(4):
            workload = generate_workload("large", seed=seed)
            low, high = spec.sources
            assert low <= len(workload.source_names) <= high

    def test_unknown_category(self):
        with pytest.raises(ReproError, match="unknown category"):
            generate_workload("gigantic")


class TestValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_generated_workflows_are_valid(self, seed):
        workload = generate_workload("small", seed=seed)
        workload.workflow.validate()
        workload.workflow.propagate_schemas()

    @pytest.mark.parametrize("seed", range(3))
    def test_generated_workflows_execute(self, seed):
        workload = generate_workload("tiny", seed=seed)
        executor = Executor(context=workload.context)
        result = executor.run(workload.workflow, workload.make_data(seed, n=40))
        assert "DW" in result.targets

    def test_suite_generation(self):
        suite = generate_suite("tiny", count=3, base_seed=10)
        assert len(suite) == 3
        assert {w.seed for w in suite} == {10, 11, 12}
