"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.cost import ProcessedRowsCostModel
from repro.engine import Executor
from repro.workloads import (
    fig1_workflow,
    fig4_context,
    fig4_states,
    two_branch_scenario,
)


@pytest.fixture
def model():
    return ProcessedRowsCostModel()


@pytest.fixture
def fig1():
    """The Fig. 1 running-example scenario (fresh per test)."""
    return fig1_workflow()


@pytest.fixture
def fig1_executor(fig1):
    return Executor(context=fig1.context)


@pytest.fixture
def two_branch():
    """A compact two-branch scenario sized for exhaustive search."""
    return two_branch_scenario()


@pytest.fixture
def fig4():
    """The three Fig. 4 states plus the engine context they need."""
    return fig4_states(cardinality=8), fig4_context()
