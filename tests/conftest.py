"""Shared fixtures and Hypothesis profiles for the test suite.

Two Hypothesis profiles are pinned here so property runs are reproducible
where it matters:

* ``ci`` — derandomized (fixed seed) with no deadline, for CI: a red run
  is a real regression, never a flaky schedule or a slow runner;
* ``dev`` — the default locally: randomized exploration, no deadline (the
  engine-backed properties routinely outrun the 200 ms default).

Select with ``HYPOTHESIS_PROFILE=ci python -m pytest``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.cost import ProcessedRowsCostModel

settings.register_profile(
    "ci",
    settings(
        derandomize=True,
        deadline=None,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    ),
)
settings.register_profile(
    "dev",
    settings(
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    ),
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
from repro.engine import Executor
from repro.workloads import (
    fig1_workflow,
    fig4_context,
    fig4_states,
    two_branch_scenario,
)


@pytest.fixture
def model():
    return ProcessedRowsCostModel()


@pytest.fixture
def fig1():
    """The Fig. 1 running-example scenario (fresh per test)."""
    return fig1_workflow()


@pytest.fixture
def fig1_executor(fig1):
    return Executor(context=fig1.context)


@pytest.fixture
def two_branch():
    """A compact two-branch scenario sized for exhaustive search."""
    return two_branch_scenario()


@pytest.fixture
def fig4():
    """The three Fig. 4 states plus the engine context they need."""
    return fig4_states(cardinality=8), fig4_context()
