"""White-box tests for HS's phase machinery (Fig. 7 lines 6-8)."""

import pytest

from repro.core.search.heuristic import (
    HSConfig,
    _distributable_in_state,
    _find_distributable,
    _find_homologous,
    _next_binary_downstream,
    _nearest_binary_upstream,
    _root_id,
)
from repro.core.search.state import SearchState
from repro.core.cost import ProcessedRowsCostModel
from repro.core.transitions import Distribute
from repro.workloads import fig1_workflow, fig4_states, two_branch_scenario


class TestRootId:
    @pytest.mark.parametrize(
        "clone_id,root",
        [("8", "8"), ("8_1", "8"), ("8_2", "8"), ("8_1_2", "8"), ("12_1", "12")],
    )
    def test_strips_all_suffixes(self, clone_id, root):
        assert _root_id(clone_id) == root


class TestBinaryNeighbors:
    def test_next_binary_downstream(self, fig1):
        """The whole branch chain is unary, so the union is found even
        from deep inside the branch."""
        wf = fig1.workflow
        union = wf.node_by_id("7")
        assert _next_binary_downstream(wf, wf.node_by_id("4")) is union

    def test_next_binary_from_branch(self, fig1):
        wf = fig1.workflow
        union = wf.node_by_id("7")
        assert _next_binary_downstream(wf, wf.node_by_id("3")) is union
        assert _next_binary_downstream(wf, wf.node_by_id("6")) is union

    def test_next_binary_from_tail_is_none(self, fig1):
        wf = fig1.workflow
        assert _next_binary_downstream(wf, wf.node_by_id("8")) is None

    def test_nearest_binary_upstream(self, fig1):
        wf = fig1.workflow
        union = wf.node_by_id("7")
        assert _nearest_binary_upstream(wf, wf.node_by_id("8")) is union
        assert _nearest_binary_upstream(wf, wf.node_by_id("3")) is None


class TestDiscovery:
    def test_fig4_homologous_sks(self, fig4):
        states, _ = fig4
        wf = states["initial"]
        found = _find_homologous(wf)
        assert len(found) == 1
        first, second, binary = found[0]
        assert {first.id, second.id} == {"3", "4"}
        assert binary.id == "5"

    def test_two_branch_converts_not_homologous_without_mobility(self, two_branch):
        """The converts are homologous *candidates* but non-injective... they
        are injective here, so they do appear — with their union."""
        wf = two_branch_scenario().workflow
        found = _find_homologous(wf)
        pairs = {(f.id, s.id) for f, s, _ in found}
        assert ("3", "4") in pairs

    def test_fig1_distributable(self, fig1):
        found = _find_distributable(fig1.workflow)
        assert [a.id for a in found] == ["8"]

    def test_distributable_in_state_tracks_clones(self, fig1):
        wf = fig1.workflow
        model = ProcessedRowsCostModel()
        distributable = _find_distributable(wf)
        roots = {_root_id(a.id) for a in distributable}
        distributed = Distribute(wf.node_by_id("7"), wf.node_by_id("8")).apply(wf)
        state = SearchState.initial(distributed, model)
        in_state = _distributable_in_state(state, roots)
        assert {a.id for a in in_state} == {"8_1", "8_2"}


class TestConfig:
    def test_defaults(self):
        config = HSConfig()
        assert config.group_cap > 0
        assert config.phase_state_cap > 0
        assert config.phase_iv_cap > 0
        assert config.max_seconds is None
