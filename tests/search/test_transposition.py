"""Transposition cache: memo semantics, disk layer, namespacing."""

from __future__ import annotations

import json

import pytest

from repro.core.cost.estimator import estimate
from repro.core.cost.model import LinearCostModel, ProcessedRowsCostModel
from repro.core.search.transposition import (
    DeferredCostReport,
    TranspositionCache,
    default_cache_dir,
)
from repro.core.signature import workflow_fingerprint
from repro.obs import Recorder, use_recorder
from repro.workloads import fig1_workflow, two_branch_scenario


@pytest.fixture
def workflow():
    wf = fig1_workflow().workflow
    wf.validate()
    wf.propagate_schemas()
    return wf


class TestResolve:
    def test_none_is_memory_only(self):
        cache, owned = TranspositionCache.resolve(None)
        assert owned and cache.directory is None

    def test_false_is_memory_only(self):
        cache, _ = TranspositionCache.resolve(False)
        assert cache.directory is None

    def test_true_uses_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cc"))
        cache, owned = TranspositionCache.resolve(True)
        assert owned and cache.directory == tmp_path / "cc"
        assert default_cache_dir() == tmp_path / "cc"

    def test_path_is_disk_backed(self, tmp_path):
        cache, _ = TranspositionCache.resolve(tmp_path)
        assert cache.directory == tmp_path

    def test_instance_is_shared_not_owned(self):
        shared = TranspositionCache()
        cache, owned = TranspositionCache.resolve(shared)
        assert cache is shared and not owned


class TestCostMemo:
    def test_hit_and_miss_accounting(self, workflow):
        cache = TranspositionCache()
        ns = cache.namespace(workflow, ProcessedRowsCostModel())
        assert ns.get_cost("sig-a") is None
        ns.put_cost("sig-a", 123.5)
        assert ns.get_cost("sig-a") == 123.5
        assert cache.misses == 1
        assert cache.hits == 1

    def test_first_write_wins(self, workflow):
        cache = TranspositionCache()
        ns = cache.namespace(workflow, ProcessedRowsCostModel())
        ns.put_cost("sig", 1.0)
        ns.put_cost("sig", 2.0)
        assert ns.get_cost("sig") == 1.0


class TestNamespacing:
    def test_distinct_workflows_do_not_share(self):
        cache = TranspositionCache()
        model = ProcessedRowsCostModel()
        fig1 = fig1_workflow().workflow
        fig1.validate(), fig1.propagate_schemas()
        other = two_branch_scenario().workflow
        other.validate(), other.propagate_schemas()
        cache.namespace(fig1, model).put_cost("sig", 1.0)
        assert cache.namespace(other, model).get_cost("sig") is None

    def test_distinct_models_do_not_share(self, workflow):
        cache = TranspositionCache()
        cache.namespace(workflow, ProcessedRowsCostModel()).put_cost("s", 1.0)
        assert cache.namespace(workflow, LinearCostModel()).get_cost("s") is None

    def test_fingerprint_stable_across_copies(self, workflow):
        assert workflow_fingerprint(workflow) == workflow_fingerprint(
            workflow.copy()
        )

    def test_fingerprint_differs_for_different_content(self, workflow):
        other = two_branch_scenario().workflow
        other.validate()
        other.propagate_schemas()
        assert workflow_fingerprint(workflow) != workflow_fingerprint(other)


class TestDiskLayer:
    def test_flush_then_reload(self, tmp_path, workflow):
        model = ProcessedRowsCostModel()
        cache = TranspositionCache(tmp_path)
        ns = cache.namespace(workflow, model)
        ns.put_cost("sig-x", 9.25)
        ns.put_group("gk", {"path": [["a", "b"]], "explored": [["s", 1.0]]})
        cache.flush()

        reloaded = TranspositionCache(tmp_path)
        ns2 = reloaded.namespace(workflow, model)
        assert ns2.get_cost("sig-x") == 9.25
        assert ns2.get_group("gk") == {
            "path": [["a", "b"]],
            "explored": [["s", 1.0]],
        }

    def test_corrupt_file_is_a_cold_cache(self, tmp_path, workflow):
        model = ProcessedRowsCostModel()
        cache = TranspositionCache(tmp_path)
        ns = cache.namespace(workflow, model)
        ns.put_cost("sig", 1.0)
        cache.flush()
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json", encoding="utf-8")
        reloaded = TranspositionCache(tmp_path)
        assert reloaded.namespace(workflow, model).get_cost("sig") is None

    def test_unknown_format_version_ignored(self, tmp_path, workflow):
        model = ProcessedRowsCostModel()
        cache = TranspositionCache(tmp_path)
        ns = cache.namespace(workflow, model)
        ns.put_cost("sig", 1.0)
        cache.flush()
        for path in tmp_path.glob("*.json"):
            data = json.loads(path.read_text(encoding="utf-8"))
            data["format_version"] = 999
            path.write_text(json.dumps(data), encoding="utf-8")
        reloaded = TranspositionCache(tmp_path)
        assert reloaded.namespace(workflow, model).get_cost("sig") is None

    def test_memory_cache_flush_is_noop(self, workflow):
        cache = TranspositionCache()
        cache.namespace(workflow, ProcessedRowsCostModel()).put_cost("s", 1.0)
        cache.flush()  # must not raise or write anywhere


class TestMergeOnWrite:
    """Concurrent writers union their entries instead of clobbering."""

    def _pair(self, tmp_path, workflow):
        model = ProcessedRowsCostModel()
        first = TranspositionCache(tmp_path)
        second = TranspositionCache(tmp_path)
        # Both load before either flushes — the racing-writers shape.
        return first.namespace(workflow, model), second.namespace(
            workflow, model
        ), model

    def test_second_writer_keeps_first_writers_entries(
        self, tmp_path, workflow
    ):
        ns1, ns2, model = self._pair(tmp_path, workflow)
        ns1.put_cost("sig-a", 1.0)
        ns1.put_group("gk-a", {"path": [], "explored": []})
        ns2.put_cost("sig-b", 2.0)
        ns1._cache.flush()
        ns2._cache.flush()  # last writer: must merge, not clobber

        reloaded = TranspositionCache(tmp_path).namespace(workflow, model)
        assert reloaded.get_cost("sig-a") == 1.0
        assert reloaded.get_cost("sig-b") == 2.0
        assert reloaded.get_group("gk-a") is not None
        assert ns2._cache.merge_conflicts == 0

    def test_divergent_value_counts_conflict_ours_win(
        self, tmp_path, workflow
    ):
        ns1, ns2, model = self._pair(tmp_path, workflow)
        ns1.put_cost("sig", 1.0)
        ns2.put_cost("sig", 2.0)
        ns1._cache.flush()
        recorder = Recorder()
        with use_recorder(recorder):
            ns2._cache.flush()
        assert ns2._cache.merge_conflicts == 1
        counters = [
            e for e in recorder.events()
            if e["type"] == "counter"
            and e["name"] == "search.transposition.merge_conflicts"
        ]
        assert counters and counters[0]["value"] == 1
        reloaded = TranspositionCache(tmp_path).namespace(workflow, model)
        assert reloaded.get_cost("sig") == 2.0  # the flusher's value won

    def test_dropped_group_is_not_resurrected_by_merge(
        self, tmp_path, workflow
    ):
        model = ProcessedRowsCostModel()
        first = TranspositionCache(tmp_path)
        ns1 = first.namespace(workflow, model)
        ns1.put_group("gk", {"path": [], "explored": []})
        first.flush()

        second = TranspositionCache(tmp_path)
        ns2 = second.namespace(workflow, model)
        assert ns2.get_group("gk") is not None
        ns2.drop_group("gk")
        second.flush()

        reloaded = TranspositionCache(tmp_path).namespace(workflow, model)
        assert reloaded.get_group("gk") is None


class TestDeferredCostReport:
    def test_total_known_breakdown_lazy(self, workflow):
        model = ProcessedRowsCostModel()
        full = estimate(workflow, model)
        deferred = DeferredCostReport(full.total, workflow, model)
        assert deferred.total == full.total
        assert deferred._full is None  # not yet materialized
        assert deferred.node_costs == full.node_costs
        assert deferred._full is not None
        for node in workflow.nodes():
            assert deferred.cost_of(node) == full.cost_of(node)


class TestThreadSafety:
    """Regression: the in-memory maps are shared by daemon worker threads.

    Unsynchronized dict updates can lose writes (and corrupt the
    hit/miss counters) under concurrent get/put; the cache now holds an
    RLock around every in-memory operation.
    """

    def test_two_thread_hammer_loses_no_updates(self, workflow):
        import threading

        cache = TranspositionCache()
        ns = cache.namespace(workflow, ProcessedRowsCostModel())
        per_thread = 2_000
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def hammer(thread_id: int) -> None:
            try:
                barrier.wait(timeout=10.0)
                for i in range(per_thread):
                    signature = f"sig-{thread_id}-{i}"
                    ns.put_cost(signature, float(i))
                    assert ns.get_cost(signature) == float(i)
                    # Contend on shared keys too, both map and counters.
                    ns.put_cost(f"shared-{i % 50}", float(i % 50))
                    ns.get_cost(f"shared-{i % 50}")
                    ns.get_cost(f"missing-{thread_id}-{i}")
                    ns.put_group(
                        f"group-{thread_id}-{i}", {"value": i}
                    )
                    assert ns.get_group(f"group-{thread_id}-{i}") == {
                        "value": i
                    }
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(tid,)) for tid in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors, errors
        # No lost updates: every private key from both threads survived.
        for thread_id in (0, 1):
            for i in range(per_thread):
                assert ns.get_cost(f"sig-{thread_id}-{i}") == float(i)
        # Counter bookkeeping stayed consistent under contention: each
        # loop does 3 hits (own sig, shared, group) and 1 guaranteed miss
        # plus the put-path misses; totals must reflect every operation.
        assert cache.misses >= 2 * per_thread
        assert cache.hits + cache.misses > 0

    def test_concurrent_namespace_creation_is_single(self, workflow):
        import threading

        cache = TranspositionCache()
        model = ProcessedRowsCostModel()
        barrier = threading.Barrier(4)
        spaces: list = []

        def make() -> None:
            barrier.wait(timeout=10.0)
            spaces.append(cache.namespace(workflow, model))

        threads = [threading.Thread(target=make) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(spaces) == 4
        assert len({id(ns) for ns in spaces}) == 1

    def test_single_thread_behaviour_unchanged(self, workflow):
        cache = TranspositionCache()
        ns = cache.namespace(workflow, ProcessedRowsCostModel())
        assert ns.get_cost("sig") is None
        ns.put_cost("sig", 42.0)
        assert ns.get_cost("sig") == 42.0
        assert cache.hits == 1 and cache.misses == 1
