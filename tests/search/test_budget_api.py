"""The unified SearchBudget surface and the legacy-kwarg deprecation shims."""

from __future__ import annotations

import os
import warnings

import pytest

from repro import HSConfig, ReproError, SearchBudget, optimize
from repro.core.search.budget import coalesce_budget
from repro.workloads import fig1_workflow


class TestSearchBudget:
    def test_defaults(self):
        budget = SearchBudget()
        assert budget.max_states is None
        assert budget.max_seconds is None
        assert budget.jobs == 1
        assert budget.cache is None

    def test_validation(self):
        with pytest.raises(ReproError):
            SearchBudget(max_states=0)
        with pytest.raises(ReproError):
            SearchBudget(max_seconds=-1.0)

    def test_resolved_jobs(self):
        assert SearchBudget(jobs=3).resolved_jobs() == 3
        assert SearchBudget(jobs=0).resolved_jobs() == (os.cpu_count() or 1)
        assert SearchBudget(jobs=-1).resolved_jobs() == (os.cpu_count() or 1)

    def test_coalesce_rejects_both_spellings(self):
        with pytest.raises(ReproError):
            coalesce_budget(SearchBudget(max_states=5), max_states=5)

    def test_coalesce_builds_budget_from_legacy(self):
        budget = coalesce_budget(None, max_states=7, max_seconds=1.5)
        assert budget.max_states == 7
        assert budget.max_seconds == 1.5


class TestBudgetAcceptedEverywhere:
    @pytest.mark.parametrize("algorithm", ["es", "hs", "greedy", "sa"])
    def test_all_four_algorithms_take_budget(self, algorithm):
        result = optimize(
            fig1_workflow().workflow,
            algorithm=algorithm,
            budget=SearchBudget(max_states=40),
        )
        assert result.visited_states <= 40
        assert result.jobs == 1
        assert result.cache_hits >= 0
        assert result.best.cost <= result.initial.cost

    def test_budget_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            optimize(
                fig1_workflow().workflow,
                algorithm="es",
                budget=SearchBudget(max_states=10),
            )

    def test_budget_plus_legacy_kwarg_is_an_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ReproError):
                optimize(
                    fig1_workflow().workflow,
                    algorithm="es",
                    budget=SearchBudget(max_states=10),
                    max_states=10,
                )


class TestDeprecationShims:
    def test_legacy_max_states_still_works_and_warns_once(self):
        with pytest.warns(DeprecationWarning) as caught:
            result = optimize(
                fig1_workflow().workflow, algorithm="es", max_states=100
            )
        assert result.best.cost <= result.initial.cost
        deprecations = [
            w for w in caught if w.category is DeprecationWarning
        ]
        assert len(deprecations) == 1
        assert "budget=SearchBudget" in str(deprecations[0].message)

    def test_legacy_hsconfig_still_works_and_warns_once(self):
        with pytest.warns(DeprecationWarning) as caught:
            result = optimize(
                fig1_workflow().workflow,
                algorithm="hs",
                config=HSConfig(group_cap=16),
            )
        assert result.algorithm == "HS"
        assert result.best.cost <= result.initial.cost
        deprecations = [
            w for w in caught if w.category is DeprecationWarning
        ]
        assert len(deprecations) == 1

    def test_legacy_max_seconds_maps_to_budget(self):
        with pytest.warns(DeprecationWarning):
            result = optimize(
                fig1_workflow().workflow, algorithm="sa", max_seconds=0.0
            )
        assert not result.completed

    def test_direct_algorithm_calls_stay_silent(self):
        # Only the optimize() facade nags; the algorithm functions keep
        # their historical signatures without warnings.
        from repro import exhaustive_search, heuristic_search

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            exhaustive_search(fig1_workflow().workflow, max_states=50)
            heuristic_search(
                fig1_workflow().workflow, config=HSConfig(group_cap=8)
            )


class TestUniformResultFields:
    @pytest.mark.parametrize("algorithm", ["es", "hs", "greedy", "sa"])
    def test_every_algorithm_populates_the_same_fields(self, algorithm):
        result = optimize(fig1_workflow().workflow, algorithm=algorithm)
        assert result.visited == result.visited_states > 0
        assert result.elapsed == result.elapsed_seconds >= 0.0
        assert result.completed is True
        assert result.jobs == 1
        assert result.cache_hits == 0
        summary = result.summary()
        assert "jobs=1" in summary
        assert "cache hits=0" in summary
        assert "%" in summary
