"""The differential cost-oracle suite (ISSUE 6).

Locks in the incremental delta-costing of the search hot path: a
delta-maintained :class:`~repro.core.cost.estimator.CostReport` must equal
a from-scratch :func:`~repro.core.cost.estimator.estimate` *exactly* —
``==`` on the total, the per-node costs, and the cardinalities, no epsilon
— at every state along arbitrary transition chains.  Exactness is by
design: totals are :func:`math.fsum`-rounded (order-independent) and dirty
propagation only stops on bit-identical cardinalities, so any inequality
is a real bookkeeping bug, not float noise.

Three layers:

* a Hypothesis property walking random SWA/FAC/DIS/MER/SPL chains
  (``HYPOTHESIS_PROFILE=ci`` runs 500 examples, the dev default stays
  light);
* one pinned regression case per transition kind;
* the ``repro.core.flags`` debug modes round-tripping through
  :meth:`SearchState.try_successor` without changing the outcome.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import flags
from repro.core.cost import (
    LinearCostModel,
    ProcessedRowsCostModel,
    estimate,
    estimate_incremental,
)
from repro.core.search.state import SearchState
from repro.fuzz.chain import check_delta_cost, fuzz_candidates
from repro.workloads import generate_workload

_CI = os.environ.get("HYPOTHESIS_PROFILE") == "ci"
_CHAIN_SETTINGS = settings(
    max_examples=500 if _CI else 40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_MODELS = [ProcessedRowsCostModel(), LinearCostModel()]


def _workflow(category, seed):
    return generate_workload(category, seed=seed).workflow


def _assert_reports_equal(delta, full):
    """The exact-equality contract, spelled out member by member."""
    assert delta.total == full.total
    assert delta.node_costs == full.node_costs
    assert delta.cardinalities == full.cardinalities
    # The whole point of the delta path: never more work than a full pass.
    assert delta.recosted_nodes <= full.recosted_nodes


def _walk(workflow, model, choices):
    """Apply one transition per choice, delta-costing and checking each."""
    current = workflow
    report = estimate(current, model)
    applied = 0
    for choice in choices:
        candidates = fuzz_candidates(current)
        if not candidates:
            break
        step = None
        for offset in range(len(candidates)):
            transition = candidates[(choice + offset) % len(candidates)]
            successor = transition.try_apply_fast(current)
            if successor is not None:
                step = (transition, successor)
                break
        if step is None:
            break
        transition, successor = step
        delta = estimate_incremental(
            successor, model, report, transition.affected_nodes()
        )
        _assert_reports_equal(delta, estimate(successor, model))
        current, report = successor, delta
        applied += 1
    return applied


@st.composite
def chain_case(draw):
    seed = draw(st.integers(0, 150))
    category = draw(st.sampled_from(["tiny", "small"]))
    model = draw(st.sampled_from(_MODELS))
    choices = draw(st.lists(st.integers(0, 10_000), min_size=1, max_size=6))
    return seed, category, model, choices


class TestChainProperty:
    @given(chain_case())
    @_CHAIN_SETTINGS
    def test_delta_report_equals_full_recost_along_chains(self, case):
        seed, category, model, choices = case
        _walk(_workflow(category, seed), model, choices)

    @given(st.integers(0, 150))
    @_CHAIN_SETTINGS
    def test_fuzz_delta_oracle_agrees_with_direct_comparison(self, seed):
        """``check_delta_cost`` (the fuzz oracle) finds nothing on a

        healthy tree — the fuzzer-facing wrapper and the direct
        assertion are the same check."""
        model = ProcessedRowsCostModel()
        workflow = _workflow("tiny", seed)
        report = estimate(workflow, model)
        for transition in fuzz_candidates(workflow):
            successor = transition.try_apply_fast(workflow)
            if successor is None:
                continue
            _, violation = check_delta_cost(
                report, transition, successor, model
            )
            assert violation is None


def _first_applicable(workflow, mnemonic):
    for transition in fuzz_candidates(workflow):
        if transition.mnemonic != mnemonic:
            continue
        successor = transition.try_apply_fast(workflow)
        if successor is not None:
            return transition, successor
    return None


class TestPerKindRegression:
    """One pinned delta-vs-full case per transition kind.

    The workload seeds are chosen so each kind is actually applicable
    (asserted — a generator change that removes the candidate must fail
    loudly, not silently skip the regression case).
    """

    @pytest.mark.parametrize(
        "mnemonic, category, seed",
        [
            ("SWA", "tiny", 0),
            ("FAC", "tiny", 1),
            ("DIS", "tiny", 0),
            ("MER", "tiny", 0),
        ],
    )
    def test_single_step_delta_equals_full(self, mnemonic, category, seed):
        model = ProcessedRowsCostModel()
        workflow = _workflow(category, seed)
        found = _first_applicable(workflow, mnemonic)
        assert found is not None, f"no applicable {mnemonic} on {category}/{seed}"
        transition, successor = found
        delta = estimate_incremental(
            successor, model, estimate(workflow, model),
            transition.affected_nodes(),
        )
        _assert_reports_equal(delta, estimate(successor, model))

    def test_spl_after_mer_delta_equals_full(self):
        model = ProcessedRowsCostModel()
        workflow = _workflow("tiny", 0)
        merge, merged = _first_applicable(workflow, "MER")
        merged_report = estimate_incremental(
            merged, model, estimate(workflow, model), merge.affected_nodes()
        )
        _assert_reports_equal(merged_report, estimate(merged, model))
        found = _first_applicable(merged, "SPL")
        assert found is not None, "merged composite must admit a split"
        split, unmerged = found
        delta = estimate_incremental(
            unmerged, model, merged_report, split.affected_nodes()
        )
        _assert_reports_equal(delta, estimate(unmerged, model))


class TestDebugFlags:
    """REPRO_FULL_RECOST / REPRO_COST_ORACLE change nothing but speed."""

    def _successors(self, workflow, model):
        state = SearchState.initial(workflow, model)
        out = []
        for transition in fuzz_candidates(workflow):
            successor = state.try_successor(transition, model)
            if successor is not None:
                out.append(
                    (
                        transition.describe(),
                        successor.signature,
                        successor.report.total,
                        sorted(
                            (n.id, c)
                            for n, c in successor.report.node_costs.items()
                        ),
                    )
                )
        return out

    @pytest.mark.parametrize("flag_setter", [
        flags.set_full_recost,
        flags.set_cost_oracle,
    ])
    def test_flag_round_trip_preserves_successors(self, flag_setter):
        model = ProcessedRowsCostModel()
        workflow = _workflow("tiny", 3)
        baseline = self._successors(workflow, model)
        assert baseline, "tiny/3 must admit transitions"
        previous = flag_setter(True)
        try:
            assert self._successors(workflow, model) == baseline
        finally:
            flag_setter(previous)

    def test_try_successor_report_is_exact(self):
        model = ProcessedRowsCostModel()
        workflow = _workflow("small", 0)
        state = SearchState.initial(workflow, model)
        checked = 0
        for transition in fuzz_candidates(workflow):
            successor = state.try_successor(transition, model)
            if successor is None:
                continue
            _assert_reports_equal(
                successor.report, estimate(successor.workflow, model)
            )
            checked += 1
        assert checked > 0
