"""Simulated annealing extension: determinism, quality, equivalence."""

import pytest

from repro.core.search import annealing_search, heuristic_search
from repro.engine import Executor, empirically_equivalent
from repro.workloads import generate_workload


class TestAnnealing:
    def test_never_worse_than_initial(self, fig1):
        result = annealing_search(fig1.workflow, seed=3)
        assert result.best_cost <= result.initial_cost
        assert result.algorithm == "SA"

    def test_deterministic_per_seed(self, two_branch):
        first = annealing_search(two_branch.workflow, seed=7, steps=300)
        second = annealing_search(two_branch.workflow, seed=7, steps=300)
        assert first.best.signature == second.best.signature
        assert first.visited_states == second.visited_states

    def test_different_seeds_may_differ(self, two_branch):
        results = {
            annealing_search(two_branch.workflow, seed=s, steps=50).best.signature
            for s in range(6)
        }
        # Not a hard guarantee, but with 6 seeds and 50 steps the walk
        # should not collapse to a single endpoint *and* all endpoints are
        # valid states.
        assert len(results) >= 1

    def test_finds_fig1_optimum(self, fig1):
        hs = heuristic_search(fig1.workflow)
        sa = annealing_search(fig1.workflow, seed=1)
        assert sa.best_cost == pytest.approx(hs.best_cost)

    def test_result_equivalent_on_data(self, fig1):
        result = annealing_search(fig1.workflow, seed=5)
        report = empirically_equivalent(
            fig1.workflow,
            result.best.workflow,
            fig1.make_data(seed=1),
            Executor(context=fig1.context),
        )
        assert report.equivalent

    def test_time_budget(self, fig1):
        result = annealing_search(fig1.workflow, seed=1, max_seconds=0.0)
        assert not result.completed
        assert result.best_cost <= result.initial_cost

    def test_quality_reasonable_on_generated(self):
        workload = generate_workload("small", seed=2)
        hs = heuristic_search(workload.workflow)
        sa = annealing_search(workload.workflow, seed=2, steps=1500)
        # SA should land in HS's ballpark (within 25 % of its cost).
        assert sa.best_cost <= hs.best_cost * 1.25

    def test_facade_alias(self, fig1):
        from repro import optimize

        assert optimize(fig1.workflow, algorithm="sa").algorithm == "SA"
