"""ES: exhaustive exploration, budgets, optimality on small spaces."""

import pytest

from repro.core.search import exhaustive_search
from repro.engine import Executor, empirically_equivalent


class TestExhaustive:
    def test_finds_optimum_on_two_branch(self, two_branch, model):
        result = exhaustive_search(two_branch.workflow, model)
        assert result.completed
        assert result.best_cost < result.initial_cost
        assert result.algorithm == "ES"

    def test_best_state_is_equivalent(self, two_branch):
        result = exhaustive_search(two_branch.workflow)
        report = empirically_equivalent(
            two_branch.workflow,
            result.best.workflow,
            two_branch.make_data(seed=9),
            Executor(context=two_branch.context),
        )
        assert report.equivalent

    def test_fig1_space_contains_fig2_shape(self, fig1):
        """ES reaches the Fig. 2 design: σ distributed, γ before A2E."""
        result = exhaustive_search(fig1.workflow)
        assert result.completed
        assert result.best.signature == "((1.8_1.3)//(2.4.6.8_2.5)).7.9"

    def test_max_states_budget(self, two_branch):
        result = exhaustive_search(two_branch.workflow, max_states=5)
        assert not result.completed
        assert result.visited_states <= 5

    def test_max_seconds_budget(self, two_branch):
        result = exhaustive_search(two_branch.workflow, max_seconds=0.0)
        assert not result.completed

    def test_budgeted_run_still_reports_best_so_far(self, two_branch):
        result = exhaustive_search(two_branch.workflow, max_states=5)
        assert result.best_cost <= result.initial_cost

    def test_never_worse_than_initial(self, fig1):
        result = exhaustive_search(fig1.workflow)
        assert result.best_cost <= result.initial_cost

    def test_improvement_percent(self, two_branch):
        result = exhaustive_search(two_branch.workflow)
        expected = 100.0 * (result.initial_cost - result.best_cost) / result.initial_cost
        assert result.improvement_percent == pytest.approx(expected)

    def test_visited_states_deduplicated(self, fig1):
        """Visiting the same signature twice is impossible by construction:
        run twice and check determinism as a proxy."""
        first = exhaustive_search(fig1.workflow)
        second = exhaustive_search(fig1.workflow)
        assert first.visited_states == second.visited_states
        assert first.best.signature == second.best.signature
