"""Lineage replay with hostile node ids.

The bugfix contract: :class:`LineageStep` carries its bound node ids
structurally as ``(mnemonic, targets)``, so :func:`replay_lineage`
rebinds transitions exactly even when ids contain the description
syntax's own delimiters (``,``/``(``/``)``).  String parsing survives
only as the legacy fallback for pre-structured payloads — and misparses
hostile ids loudly, never silently.
"""

from __future__ import annotations

import pytest

from repro.core.activity import Activity
from repro.core.cost.model import ProcessedRowsCostModel
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.search.state import SearchState
from repro.core.transitions import Swap
from repro.core.transitions.enumerate import candidate_transitions
from repro.core.workflow import ETLWorkflow
from repro.exceptions import ReproError
from repro.obs import replay_lineage
from repro.templates import builtin as t

#: Ids deliberately built from the describe() syntax's delimiters.
HOSTILE_FIRST = "σ(V2, >=40)"
HOSTILE_SECOND = "nn,(V1)"


def _filter_chain(first_id: str, second_id: str) -> ETLWorkflow:
    """source -> selection -> not_null -> target; the adjacent filter
    pair admits a SWA whose description embeds both ids verbatim."""
    schema = Schema(["KEY", "V1", "V2"])
    wf = ETLWorkflow()
    src = wf.add_node(
        RecordSet("src", "SRC", schema, RecordSetKind.SOURCE, 100)
    )
    first = wf.add_node(
        Activity(
            first_id,
            t.SELECTION,
            {"attr": "V2", "op": ">=", "value": 40.0},
            selectivity=0.6,
        )
    )
    second = wf.add_node(
        Activity(
            second_id, t.NOT_NULL, {"attr": "V1"}, selectivity=0.95
        )
    )
    dw = wf.add_node(RecordSet("dw", "DW", schema, RecordSetKind.TARGET))
    wf.add_edge(src, first)
    wf.add_edge(first, second)
    wf.add_edge(second, dw)
    return wf


def _swap_state(wf: ETLWorkflow):
    model = ProcessedRowsCostModel()
    initial = SearchState.initial(wf, model)
    swaps = [
        transition
        for transition in candidate_transitions(initial.workflow)
        if isinstance(transition, Swap)
    ]
    assert swaps, "adjacent filter pair must admit a swap"
    state = initial.try_successor(swaps[0], model)
    assert state is not None
    return initial, state


class TestStructuredReplay:
    def test_hostile_ids_replay_exactly(self):
        initial, state = _swap_state(
            _filter_chain(HOSTILE_FIRST, HOSTILE_SECOND)
        )
        assert all(step.targets for step in state.lineage)
        replay = replay_lineage(initial.workflow, state.lineage)
        assert replay.signature == state.signature
        assert replay.cost == pytest.approx(state.cost)

    def test_hostile_ids_survive_dict_round_trip(self):
        # Serialized steps (to_dict) keep the structured payload, so a
        # lineage loaded back from JSON replays without parsing.
        initial, state = _swap_state(
            _filter_chain(HOSTILE_FIRST, HOSTILE_SECOND)
        )
        dicts = [step.to_dict() for step in state.lineage]
        assert all(dict_step["targets"] for dict_step in dicts)
        replay = replay_lineage(initial.workflow, dicts)
        assert replay.signature == state.signature


class TestLegacyFallback:
    def test_raw_strings_still_replay_for_clean_ids(self):
        initial, state = _swap_state(_filter_chain("5", "6"))
        raw = [step.transition for step in state.lineage]
        replay = replay_lineage(initial.workflow, raw)
        assert replay.signature == state.signature

    def test_raw_strings_misparse_hostile_ids_loudly(self):
        # The documented limitation of the legacy parser: delimiters in
        # ids shred the argument list -> ReproError, not silent rebinding.
        initial, state = _swap_state(
            _filter_chain(HOSTILE_FIRST, HOSTILE_SECOND)
        )
        raw = [step.transition for step in state.lineage]
        with pytest.raises(ReproError):
            replay_lineage(initial.workflow, raw)
