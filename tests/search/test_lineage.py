"""Provenance lineage: the winning chain replays to the reported best.

The acceptance contract of the observability layer: for every algorithm,
``OptimizationResult.lineage`` replayed through the transition system
from the initial state reproduces the reported best state and cost, and
parallel runs ship lineages byte-identical to their serial twins.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.search import SearchBudget
from repro.core.search.parallel import run_search
from repro.obs import (
    LineageMismatch,
    lineage_mix,
    replay_lineage,
    verify_lineage,
)
from repro.workloads import fig1_workflow


def _workflow():
    return fig1_workflow().workflow


ALGORITHMS = [
    pytest.param("es", {"budget": SearchBudget(max_states=300)}, id="es"),
    pytest.param("hs", {}, id="hs"),
    pytest.param("hs-greedy", {}, id="hs-greedy"),
    pytest.param("sa", {"budget": SearchBudget()}, id="sa"),
    # The pruning knobs must not break provenance: a beamed / bounded /
    # dominance-pruned winner still replays from S0.
    pytest.param(
        "hs",
        {"budget": SearchBudget(beam_width=4)},
        id="hs-beam",
    ),
    pytest.param(
        "hs",
        {"budget": SearchBudget(prune_dominated=True, bound=True)},
        id="hs-pruned",
    ),
    pytest.param(
        "es",
        {
            "budget": SearchBudget(
                max_states=300, prune_dominated=True, bound=True
            )
        },
        id="es-pruned",
    ),
]


class TestReplay:
    @pytest.mark.parametrize("algorithm, kwargs", ALGORITHMS)
    def test_lineage_replays_to_best(self, algorithm, kwargs):
        result = run_search(algorithm, _workflow(), **kwargs)
        replay = verify_lineage(result)
        assert replay.signature == result.best.signature
        assert replay.cost == pytest.approx(result.best_cost)
        assert len(replay.steps) == len(result.lineage)

    @pytest.mark.parametrize("algorithm, kwargs", ALGORITHMS)
    def test_mix_accounts_for_every_step(self, algorithm, kwargs):
        result = run_search(algorithm, _workflow(), **kwargs)
        mix = result.transition_mix()
        assert sum(mix.values()) == len(result.lineage)
        assert mix == lineage_mix(result.lineage)
        # The serialized dict form carries the same mix.
        assert lineage_mix(result.lineage_dicts()) == mix

    def test_replay_accepts_serialized_lineage(self):
        result = run_search("hs", _workflow())
        replay = replay_lineage(
            result.initial.workflow, result.lineage_dicts()
        )
        assert replay.signature == result.best.signature

    def test_tampered_lineage_raises(self):
        result = run_search("hs", _workflow())
        assert result.lineage, "fig1 must admit improving transitions"
        truncated = dataclasses.replace(
            result, lineage=result.lineage[:-1]
        )
        with pytest.raises(LineageMismatch):
            verify_lineage(truncated)


class TestDeterminism:
    def test_parallel_hs_lineage_identical_to_serial(self):
        serial = run_search("hs", _workflow(), budget=SearchBudget(jobs=1))
        parallel = run_search("hs", _workflow(), budget=SearchBudget(jobs=2))
        assert parallel.lineage == serial.lineage
        assert parallel.lineage_dicts() == serial.lineage_dicts()

    def test_parallel_beam_lineage_identical_to_serial(self):
        serial = run_search(
            "hs", _workflow(), budget=SearchBudget(jobs=1, beam_width=4)
        )
        parallel = run_search(
            "hs", _workflow(), budget=SearchBudget(jobs=2, beam_width=4)
        )
        assert parallel.lineage == serial.lineage

    @pytest.mark.parametrize("algorithm", ["es", "sa"])
    def test_parallel_lineage_replays(self, algorithm):
        result = run_search(
            algorithm,
            _workflow(),
            budget=SearchBudget(max_states=300, jobs=2),
        )
        verify_lineage(result)


class TestMergeConstraints:
    def test_constraint_steps_appear_in_lineage(self):
        result = run_search(
            "hs", _workflow(), merge_constraints=(("4", "5"),)
        )
        mix = result.transition_mix()
        assert mix.get("MER") == 1  # pre-processing merge
        assert mix.get("SPL") == 1  # post-processing split
        verify_lineage(result)


class TestSummary:
    def test_summary_reports_transition_mix(self):
        result = run_search("hs", _workflow())
        summary = result.summary()
        assert "transition mix:" in summary
        assert f"lineage: {len(result.lineage)} step(s)" in summary
        # Every mnemonic in the mix shows with its count, e.g. "SWA:3".
        for mnemonic, count in result.transition_mix().items():
            assert f"{mnemonic}:{count}" in summary
