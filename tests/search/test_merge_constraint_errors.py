"""Merge-constraint validation in HS."""

import pytest

from repro.core.search import heuristic_search
from repro.exceptions import ReproError, TransitionError, WorkflowError


class TestMergeConstraintErrors:
    def test_non_adjacent_pair_rejected(self, fig1):
        with pytest.raises(TransitionError, match="not adjacent"):
            heuristic_search(fig1.workflow, merge_constraints=(("4", "6"),))

    def test_unknown_activity_rejected(self, fig1):
        with pytest.raises(WorkflowError, match="no node"):
            heuristic_search(fig1.workflow, merge_constraints=(("4", "404"),))

    def test_recordset_in_constraint_rejected(self, fig1):
        with pytest.raises(ReproError):
            heuristic_search(fig1.workflow, merge_constraints=(("1", "3"),))

    def test_chained_constraints_build_triple_package(self, fig1):
        result = heuristic_search(
            fig1.workflow, merge_constraints=(("4", "5"), ("4+5", "6"))
        )
        # The whole branch is one opaque package, so nothing can reorder
        # inside it; the only remaining improvement is distributing σ.
        assert result.best_cost <= result.initial_cost
        # And the final state is fully split back.
        from repro.core.activity import CompositeActivity

        assert not any(
            isinstance(a, CompositeActivity)
            for a in result.best.workflow.activities()
        )

    def test_binary_activity_in_constraint_rejected(self, fig1):
        with pytest.raises(TransitionError, match="not unary"):
            heuristic_search(fig1.workflow, merge_constraints=(("7", "8"),))
