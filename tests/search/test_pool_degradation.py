"""Degradation accounting for :class:`WorkerPool`.

The bugfix contract: exceptions raised *by a task* propagate to the
caller unchanged (never masked by the serial fallback), while genuine
infrastructure failures — unpicklable payload, unstartable pool, broken
worker — degrade loudly: a ``RuntimeWarning`` once per pool, a
``search.pool_degraded`` counter bump per degraded call, and results
identical to the pooled path.  The degraded search path stays
byte-identical to serial, telemetry included.
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro import SearchBudget, heuristic_search
from repro.core.search.parallel import WorkerPool
from repro.obs import Recorder, use_recorder
from repro.workloads import generate_workload


def _square(value: int) -> int:
    return value * value


def _boom(value: int) -> int:
    raise ValueError(f"task exploded on {value}")


def _exit_unless_parent(parent_pid: int) -> int:
    # In a forked worker the pid differs -> hard-kill the worker, which
    # surfaces to the parent as BrokenProcessPool.  In the fallback
    # (parent process) the task completes normally.
    if os.getpid() != parent_pid:
        os._exit(1)
    return parent_pid


def _pool_degraded_events(recorder: Recorder) -> list[dict]:
    return [
        event
        for event in recorder.events()
        if event["type"] == "counter"
        and event["name"] == "search.pool_degraded"
    ]


def _no_fork(self) -> None:
    raise OSError("fork refused")


class TestTaskErrorsPropagate:
    def test_pooled_task_exception_is_not_masked(self):
        # A ValueError raised inside a worker must reach the caller as-is
        # — no RuntimeWarning, no degradation counter, no serial rerun.
        recorder = Recorder()
        with use_recorder(recorder):
            with WorkerPool(2) as pool:
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    with pytest.raises(ValueError, match="task exploded"):
                        pool.map(_boom, [1, 2, 3])
        assert _pool_degraded_events(recorder) == []

    def test_inline_task_exception_propagates(self):
        with pytest.raises(ValueError, match="task exploded on 7"):
            WorkerPool(1).map(_boom, [7])


class TestPicklabilityDegradation:
    def test_lambda_degrades_with_warning_and_counter(self):
        recorder = Recorder()
        with use_recorder(recorder):
            with WorkerPool(2) as pool:
                with pytest.warns(RuntimeWarning, match="not picklable"):
                    assert pool.map(lambda v: v + 1, [1, 2, 3]) == [2, 3, 4]
                # The warning fires once per pool; the counter keeps
                # counting per degraded call.
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    assert pool.map(lambda v: v * 2, [2, 3]) == [4, 6]
        events = _pool_degraded_events(recorder)
        assert len(events) == 1
        assert events[0]["value"] == 2

    def test_picklable_payload_does_not_degrade(self):
        recorder = Recorder()
        with use_recorder(recorder):
            with WorkerPool(2) as pool:
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    assert pool.map(_square, [3, 4]) == [9, 16]
        assert _pool_degraded_events(recorder) == []


class TestInfrastructureDegradation:
    def test_pool_start_failure_degrades(self, monkeypatch):
        monkeypatch.setattr(WorkerPool, "_ensure", _no_fork)
        recorder = Recorder()
        with use_recorder(recorder):
            with WorkerPool(2) as pool:
                with pytest.warns(RuntimeWarning, match="failed to start"):
                    assert pool.map(_square, [2, 3, 4]) == [4, 9, 16]
        events = _pool_degraded_events(recorder)
        assert len(events) == 1
        assert events[0]["value"] == 1

    def test_broken_worker_falls_back_idempotently(self):
        # Workers hard-exit mid-task -> BrokenProcessPool.  The fallback
        # recomputes only unfinished slots in-process and still returns
        # every result, in order.
        parent = os.getpid()
        recorder = Recorder()
        with use_recorder(recorder):
            with WorkerPool(2) as pool:
                with pytest.warns(RuntimeWarning, match="pool broke mid-run"):
                    results = pool.map(_exit_unless_parent, [parent] * 3)
        assert results == [parent] * 3
        assert len(_pool_degraded_events(recorder)) == 1


class TestDegradedSearchDeterminism:
    """jobs=2 with a dead pool must equal jobs=1 — results AND telemetry,
    modulo the explicit ``search.pool_degraded`` accounting."""

    @staticmethod
    def _span_names(recorder: Recorder) -> list[str]:
        return sorted(
            event["name"]
            for event in recorder.events()
            if event["type"] == "span"
        )

    @staticmethod
    def _counters(recorder: Recorder) -> dict:
        return {
            (event["name"], tuple(sorted(event["tags"].items()))): event[
                "value"
            ]
            for event in recorder.events()
            if event["type"] == "counter"
        }

    def test_degraded_jobs2_matches_serial_with_accounting(self, monkeypatch):
        serial_recorder = Recorder()
        with use_recorder(serial_recorder):
            serial = heuristic_search(
                generate_workload("small", seed=0).workflow.copy(),
                budget=SearchBudget(jobs=1),
            )

        monkeypatch.setattr(WorkerPool, "_ensure", _no_fork)
        degraded_recorder = Recorder()
        with use_recorder(degraded_recorder):
            with pytest.warns(RuntimeWarning, match="degraded to serial"):
                degraded = heuristic_search(
                    generate_workload("small", seed=0).workflow.copy(),
                    budget=SearchBudget(jobs=2),
                )

        assert degraded.best.signature == serial.best.signature
        assert degraded.best.cost == serial.best.cost
        assert degraded.visited_states == serial.visited_states

        assert self._span_names(degraded_recorder) == self._span_names(
            serial_recorder
        )
        serial_counters = self._counters(serial_recorder)
        degraded_counters = self._counters(degraded_recorder)
        degraded_key = ("search.pool_degraded", ())
        assert degraded_counters.pop(degraded_key) >= 1
        assert degraded_counters == serial_counters

    def test_two_degraded_runs_record_identical_telemetry(self, monkeypatch):
        monkeypatch.setattr(WorkerPool, "_ensure", _no_fork)

        def run():
            recorder = Recorder()
            with use_recorder(recorder):
                with pytest.warns(RuntimeWarning, match="degraded"):
                    result = heuristic_search(
                        generate_workload("small", seed=0).workflow.copy(),
                        budget=SearchBudget(jobs=2),
                    )
            return result, recorder

        first, first_recorder = run()
        second, second_recorder = run()
        assert first.best.signature == second.best.signature
        assert first.visited_states == second.visited_states
        assert self._span_names(first_recorder) == self._span_names(
            second_recorder
        )
        assert self._counters(first_recorder) == self._counters(
            second_recorder
        )
