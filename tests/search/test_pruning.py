"""Soundness and determinism of the search-pruning knobs (ISSUE 6).

Three claims, each tested where it is actually provable:

* **Invariance** — on state spaces ES *completes*, dominance pruning and
  branch-and-bound must return the exact optimum the unpruned run finds
  (bitwise-equal cost).  Completed spaces are essential: under a
  truncated budget the traversal order legitimately changes best-so-far,
  so comparing truncated runs tests nothing.
* **Reproduction** — with every knob off (or trivially large), the
  pruned code paths must reproduce the classic algorithms byte for byte.
* **Determinism** — a beam run is a pure function of its inputs: two
  runs agree, and a parallel run agrees with its serial twin.

Plus the observability contract: pruning work shows up on the
``search.pruned_dominated`` / ``search.bnb_cutoffs`` counters.
"""

from __future__ import annotations

import pytest

from repro.core.search import SearchBudget
from repro.core.search.exhaustive import exhaustive_search
from repro.core.search.parallel import run_search
from repro.obs import Recorder, use_recorder
from repro.workloads import generate_workload

#: Tiny-category seeds whose full state space ES exhausts in well under a
#: second each (seeds 0/8/9 do not complete within reasonable budgets).
_COMPLETED_TINY_SEEDS = (1, 2, 5, 6, 7)
_TINY_BUDGET = 60_000

_PRUNING_MODES = [
    pytest.param({"prune_dominated": True}, id="dominance"),
    pytest.param({"bound": True}, id="branch-and-bound"),
    pytest.param({"prune_dominated": True, "bound": True}, id="both"),
]


def _workflow(category, seed):
    return generate_workload(category, seed=seed).workflow


def _counters(recorder):
    totals: dict[str, float] = {}
    for event in recorder.events():
        if event["type"] == "counter":
            totals[event["name"]] = totals.get(event["name"], 0) + event["value"]
    return totals


class TestExhaustiveInvariance:
    """Pruned ES finds the same optimum as unpruned ES — exactly."""

    @pytest.fixture(scope="class")
    def references(self):
        out = {}
        for seed in _COMPLETED_TINY_SEEDS:
            result = exhaustive_search(
                _workflow("tiny", seed),
                budget=SearchBudget(max_states=_TINY_BUDGET),
            )
            assert result.completed, f"tiny/{seed} must exhaust its space"
            out[seed] = result
        return out

    @pytest.mark.parametrize("seed", _COMPLETED_TINY_SEEDS)
    @pytest.mark.parametrize("knobs", _PRUNING_MODES)
    def test_pruned_best_cost_is_bitwise_identical(
        self, references, seed, knobs
    ):
        base = references[seed]
        pruned = exhaustive_search(
            _workflow("tiny", seed),
            budget=SearchBudget(max_states=_TINY_BUDGET, **knobs),
        )
        assert pruned.completed
        assert pruned.best_cost == base.best_cost  # exact, no approx
        assert pruned.best.signature == base.best.signature
        assert pruned.visited_states <= base.visited_states

    @pytest.mark.parametrize("seed", _COMPLETED_TINY_SEEDS)
    def test_dominance_actually_shrinks_the_space(self, references, seed):
        pruned = exhaustive_search(
            _workflow("tiny", seed),
            budget=SearchBudget(max_states=_TINY_BUDGET, prune_dominated=True),
        )
        # Swap-permuted orderings collapse into dominance classes; on
        # every completed tiny space that is a large constant factor.
        assert pruned.visited_states < references[seed].visited_states

    def test_parallel_pruned_es_matches_serial(self):
        serial = exhaustive_search(
            _workflow("tiny", 2),
            budget=SearchBudget(
                max_states=_TINY_BUDGET, prune_dominated=True, bound=True
            ),
        )
        parallel = exhaustive_search(
            _workflow("tiny", 2),
            budget=SearchBudget(
                max_states=_TINY_BUDGET,
                prune_dominated=True,
                bound=True,
                jobs=2,
            ),
        )
        assert parallel.completed and serial.completed
        assert parallel.best_cost == serial.best_cost
        assert parallel.best.signature == serial.best.signature


class TestHeuristicPruning:
    """HS's group-local B&B / dominance never change the answer."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("knobs", _PRUNING_MODES)
    def test_hs_best_cost_preserved(self, seed, knobs):
        base = run_search("hs", _workflow("small", seed))
        pruned = run_search(
            "hs", _workflow("small", seed), budget=SearchBudget(**knobs)
        )
        assert pruned.best_cost == base.best_cost
        assert pruned.best.signature == base.best.signature


class TestBeam:
    def test_no_beam_and_huge_beam_are_byte_identical(self):
        """``beam_width=None`` is the classic HS; a beam wider than any

        frontier must reproduce it exactly (the truncation never fires)."""
        base = run_search("hs", _workflow("small", 0))
        explicit_none = run_search(
            "hs", _workflow("small", 0), budget=SearchBudget(beam_width=None)
        )
        huge = run_search(
            "hs", _workflow("small", 0), budget=SearchBudget(beam_width=10**9)
        )
        for twin in (explicit_none, huge):
            assert twin.visited_states == base.visited_states
            assert twin.best_cost == base.best_cost
            assert twin.lineage == base.lineage

    def test_beam_is_deterministic_across_runs(self):
        first = run_search(
            "hs", _workflow("small", 0), budget=SearchBudget(beam_width=4)
        )
        second = run_search(
            "hs", _workflow("small", 0), budget=SearchBudget(beam_width=4)
        )
        assert first.visited_states == second.visited_states
        assert first.best_cost == second.best_cost
        assert first.lineage == second.lineage

    def test_beam_parallel_matches_serial(self):
        serial = run_search(
            "hs",
            _workflow("small", 0),
            budget=SearchBudget(beam_width=4, jobs=1),
        )
        parallel = run_search(
            "hs",
            _workflow("small", 0),
            budget=SearchBudget(beam_width=4, jobs=2),
        )
        assert parallel.visited_states == serial.visited_states
        assert parallel.best_cost == serial.best_cost
        assert parallel.lineage == serial.lineage

    def test_beam_still_finds_an_improvement(self):
        result = run_search(
            "hs", _workflow("small", 0), budget=SearchBudget(beam_width=4)
        )
        assert result.best_cost < result.initial_cost

    def test_beam_width_validation(self):
        with pytest.raises(Exception):
            SearchBudget(beam_width=0)


class TestCounters:
    def test_dominance_pruning_is_counted(self):
        recorder = Recorder()
        with use_recorder(recorder):
            exhaustive_search(
                _workflow("tiny", 1),
                budget=SearchBudget(
                    max_states=_TINY_BUDGET, prune_dominated=True
                ),
            )
        counters = _counters(recorder)
        assert counters.get("search.pruned_dominated", 0) > 0
        # The delta-costing counter rides along on every search.
        assert counters.get("search.delta_recost_nodes", 0) > 0

    def test_bnb_cutoffs_are_counted(self):
        recorder = Recorder()
        with use_recorder(recorder):
            run_search(
                "hs", _workflow("small", 0), budget=SearchBudget(bound=True)
            )
        counters = _counters(recorder)
        assert counters.get("search.bnb_cutoffs", 0) > 0

    def test_no_pruning_counters_when_knobs_off(self):
        recorder = Recorder()
        with use_recorder(recorder):
            run_search("hs", _workflow("small", 0))
        counters = _counters(recorder)
        assert "search.pruned_dominated" not in counters
        assert "search.bnb_cutoffs" not in counters
