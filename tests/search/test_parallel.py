"""Parallel == serial determinism, the worker pool, and the batch driver.

The tentpole contract: for any jobs value, HS returns a byte-identical
best state and visited count, because group explorations are hermetic and
their outcomes are merged deterministically in group order by the main
process.  Warm transposition-cache runs replay the same streams and agree
too.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    SearchBudget,
    annealing_search,
    exhaustive_search,
    heuristic_search,
    optimize_many,
)
from repro.core.search.parallel import WorkerPool
from repro.fuzz import FuzzConfig, run_fuzz
from repro.obs import Recorder, use_recorder
from repro.workloads import fig1_workflow, generate_workload


def _square(value: int) -> int:
    return value * value


class TestWorkerPool:
    def test_map_preserves_order(self):
        with WorkerPool(2) as pool:
            assert pool.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_single_job_runs_inline(self):
        pool = WorkerPool(1)
        assert pool.map(_square, [2, 3]) == [4, 9]
        assert pool._executor is None  # never forked

    def test_unpicklable_task_falls_back_to_serial(self):
        with WorkerPool(2) as pool:
            with pytest.warns(RuntimeWarning, match="not picklable"):
                assert pool.map(lambda v: v + 1, [1, 2, 3]) == [2, 3, 4]


class TestHSDeterminism:
    @pytest.mark.parametrize("seed", [0, 2])
    def test_jobs4_matches_jobs1_on_generated_workloads(self, seed):
        workload = generate_workload("small", seed=seed)
        serial = heuristic_search(
            workload.workflow.copy(), budget=SearchBudget(jobs=1)
        )
        workload = generate_workload("small", seed=seed)
        parallel = heuristic_search(
            workload.workflow.copy(), budget=SearchBudget(jobs=4)
        )
        assert parallel.best.signature == serial.best.signature
        assert parallel.best.cost == serial.best.cost
        assert parallel.visited_states == serial.visited_states
        assert serial.jobs == 1 and parallel.jobs == 4

    def test_greedy_jobs4_matches_jobs1(self):
        workload = generate_workload("small", seed=0)
        serial = heuristic_search(workload.workflow.copy(), greedy=True)
        workload = generate_workload("small", seed=0)
        parallel = heuristic_search(
            workload.workflow.copy(), greedy=True, budget=SearchBudget(jobs=4)
        )
        assert parallel.best.signature == serial.best.signature
        assert parallel.visited_states == serial.visited_states


class TestESParallel:
    def test_completed_wave_run_matches_serial(self):
        serial = exhaustive_search(fig1_workflow().workflow)
        parallel = exhaustive_search(
            fig1_workflow().workflow, budget=SearchBudget(jobs=4)
        )
        assert serial.completed and parallel.completed
        assert parallel.best.signature == serial.best.signature
        assert parallel.best.cost == serial.best.cost
        assert parallel.visited_states == serial.visited_states

    def test_max_states_truncates(self):
        result = exhaustive_search(
            fig1_workflow().workflow, budget=SearchBudget(max_states=5, jobs=2)
        )
        assert not result.completed


class TestSAMultiChain:
    def test_portfolio_never_worse_than_serial(self):
        serial = annealing_search(fig1_workflow().workflow, seed=7, steps=150)
        portfolio = annealing_search(
            fig1_workflow().workflow,
            seed=7,
            steps=150,
            budget=SearchBudget(jobs=3),
        )
        assert portfolio.best.cost <= serial.best.cost
        assert portfolio.jobs == 3
        assert portfolio.visited_states >= serial.visited_states


class TestTelemetryDeterminism:
    """Telemetry is side-band only: jobs=N stays byte-identical to serial
    with a recorder installed, and recorded aggregates agree across runs."""

    @staticmethod
    def _run(jobs: int, recorder):
        workload = generate_workload("small", seed=0)
        with use_recorder(recorder):
            return heuristic_search(
                workload.workflow.copy(), budget=SearchBudget(jobs=jobs)
            )

    def test_jobs2_matches_jobs1_with_telemetry_enabled(self):
        plain = self._run(1, None)
        serial_recorder, parallel_recorder = Recorder(), Recorder()
        serial = self._run(1, serial_recorder)
        parallel = self._run(2, parallel_recorder)

        # Optimizer output is identical across jobs and telemetry on/off.
        for result in (serial, parallel):
            assert result.best.signature == plain.best.signature
            assert result.best.cost == plain.best.cost
            assert result.visited_states == plain.visited_states

        def spans(recorder):
            return [e for e in recorder.events() if e["type"] == "span"]

        def counters(recorder):
            return {
                (e["name"], tuple(sorted(e["tags"].items()))): e["value"]
                for e in recorder.events()
                if e["type"] == "counter"
            }

        assert spans(serial_recorder) and spans(parallel_recorder)
        # Worker span buffers are shipped back, so parallel runs record the
        # same phase/group structure and the same deterministic counts.
        def names(recorder):
            return sorted(s["name"] for s in spans(recorder))

        assert names(parallel_recorder) == names(serial_recorder)
        assert counters(parallel_recorder) == counters(serial_recorder)

    def test_es_waves_record_spans_with_identical_output(self):
        recorder = Recorder()
        with use_recorder(recorder):
            traced = exhaustive_search(
                fig1_workflow().workflow, budget=SearchBudget(jobs=2)
            )
        plain = exhaustive_search(fig1_workflow().workflow)
        assert traced.best.signature == plain.best.signature
        assert traced.visited_states == plain.visited_states
        names = {e["name"] for e in recorder.events() if e["type"] == "span"}
        assert "search.es.wave" in names
        assert "search.es.expand" in names


class TestWarmCache:
    def test_warm_run_replays_identically_with_hits(self, tmp_path):
        workload = generate_workload("small", seed=0)
        cold = heuristic_search(
            workload.workflow.copy(), budget=SearchBudget(cache=tmp_path)
        )
        workload = generate_workload("small", seed=0)
        warm = heuristic_search(
            workload.workflow.copy(), budget=SearchBudget(cache=tmp_path)
        )
        assert cold.cache_hits == 0
        assert warm.cache_hits > 0
        assert warm.best.signature == cold.best.signature
        assert warm.best.cost == cold.best.cost
        assert warm.visited_states == cold.visited_states
        assert warm.elapsed_seconds < cold.elapsed_seconds

    def test_parallel_warm_run_agrees_too(self, tmp_path):
        workload = generate_workload("small", seed=2)
        cold = heuristic_search(
            workload.workflow.copy(), budget=SearchBudget(jobs=4, cache=tmp_path)
        )
        workload = generate_workload("small", seed=2)
        warm = heuristic_search(
            workload.workflow.copy(), budget=SearchBudget(jobs=4, cache=tmp_path)
        )
        assert warm.cache_hits > 0
        assert warm.best.signature == cold.best.signature
        assert warm.visited_states == cold.visited_states


class TestOptimizeMany:
    def test_batch_shares_cache_across_runs(self):
        workflows = [fig1_workflow().workflow, fig1_workflow().workflow]
        first, second = optimize_many(workflows, algorithm="hs")
        assert second.cache_hits > 0
        assert second.best.signature == first.best.signature
        assert second.visited_states == first.visited_states

    def test_batch_accepts_jobs(self):
        workflows = [fig1_workflow().workflow]
        (result,) = optimize_many(
            workflows, algorithm="es", budget=SearchBudget(jobs=2)
        )
        assert result.completed
        assert result.jobs == 2


class TestFuzzParallelPath:
    def test_parallel_fuzz_matches_serial_report(self):
        config = FuzzConfig(categories=("tiny",), chain_length=4)
        serial = run_fuzz(config, seeds=4, jobs=1)
        parallel = run_fuzz(config, seeds=4, jobs=2)
        assert parallel.ok == serial.ok
        assert parallel.seeds_run == serial.seeds_run
        assert parallel.states_checked == serial.states_checked
        assert parallel.transitions_applied == serial.transitions_applied


class TestOptimizeManyKnobs:
    """Regression: the batch driver must forward *every* budget knob.

    optimize_many once rebuilt the shared budget field by field and
    silently dropped the PR 6 pruning knobs (beam_width / prune_dominated
    / bound), so batch runs searched a different space than the same
    budget passed to a per-workflow call.
    """

    def test_batch_honours_pruning_knobs(self):
        budget = SearchBudget(beam_width=1, prune_dominated=True, bound=True)
        workload = generate_workload("small", seed=0)
        direct = heuristic_search(workload.workflow.copy(), budget=budget)
        unknobbed = heuristic_search(
            generate_workload("small", seed=0).workflow.copy(),
            budget=SearchBudget(),
        )
        # The knobs must actually bite on this workload, or the equality
        # below would pass vacuously.
        assert direct.visited_states != unknobbed.visited_states
        (batch,) = optimize_many(
            [generate_workload("small", seed=0).workflow], budget=budget
        )
        assert batch.visited_states == direct.visited_states
        assert batch.best.cost == direct.best.cost
        assert batch.best.signature == direct.best.signature

    def test_batch_equals_per_workflow_runs(self):
        budget = SearchBudget(max_states=500, beam_width=2)
        workflows = [
            generate_workload("tiny", seed=seed).workflow for seed in range(3)
        ]
        batch = optimize_many(
            [wf.copy() for wf in workflows], algorithm="hs", budget=budget
        )
        for workflow, result in zip(workflows, batch):
            direct = heuristic_search(workflow.copy(), budget=budget)
            assert result.best.cost == direct.best.cost
            assert result.best.signature == direct.best.signature


class TestThreadedParentStartMethod:
    """Regression: forking a multi-threaded parent can deadlock workers.

    A forked child inherits the parent's lock states but not the threads
    that would release them; when the daemon's worker threads create
    pools, the pool must switch to forkserver/spawn.
    """

    def test_single_threaded_parent_prefers_fork(self):
        from multiprocessing import get_all_start_methods

        if "fork" not in get_all_start_methods():
            pytest.skip("platform has no fork")
        if threading.active_count() > 1:
            pytest.skip("test runner is already multi-threaded")
        assert WorkerPool._start_method() == "fork"

    def test_multithreaded_parent_avoids_fork(self):
        stop = threading.Event()
        keeper = threading.Thread(target=stop.wait, daemon=True)
        keeper.start()
        try:
            assert WorkerPool._start_method() in ("forkserver", "spawn")
        finally:
            stop.set()
            keeper.join(timeout=5.0)

    def test_pool_works_from_a_threaded_parent(self):
        stop = threading.Event()
        keeper = threading.Thread(target=stop.wait, daemon=True)
        keeper.start()
        try:
            with WorkerPool(2) as pool:
                assert pool.map(_square, [3, 1, 2]) == [9, 1, 4]
        finally:
            stop.set()
            keeper.join(timeout=5.0)

    def test_search_from_a_threaded_parent_matches_serial(self):
        workload = generate_workload("tiny", seed=0)
        serial = heuristic_search(
            workload.workflow.copy(), budget=SearchBudget(jobs=1)
        )
        results: list = []

        def run() -> None:
            results.append(
                heuristic_search(
                    generate_workload("tiny", seed=0).workflow,
                    budget=SearchBudget(jobs=2),
                )
            )

        worker = threading.Thread(target=run)
        worker.start()
        worker.join(timeout=120.0)
        assert results, "threaded search did not finish"
        assert results[0].best.signature == serial.best.signature
        assert results[0].best.cost == serial.best.cost
