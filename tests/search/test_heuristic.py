"""HS and HS-Greedy: phases, merge constraints, budgets, quality."""

import pytest

from repro.core.activity import CompositeActivity
from repro.core.search import (
    HSConfig,
    exhaustive_search,
    greedy_search,
    heuristic_search,
)
from repro.engine import Executor, empirically_equivalent
from repro.workloads import generate_workload


class TestHeuristicSearch:
    def test_matches_exhaustive_on_fig1(self, fig1):
        es = exhaustive_search(fig1.workflow)
        hs = heuristic_search(fig1.workflow)
        assert hs.best_cost == pytest.approx(es.best_cost)

    def test_matches_exhaustive_on_two_branch(self, two_branch):
        es = exhaustive_search(two_branch.workflow)
        hs = heuristic_search(two_branch.workflow)
        assert hs.best_cost == pytest.approx(es.best_cost)

    def test_visits_fewer_states_than_es(self, two_branch):
        es = exhaustive_search(two_branch.workflow)
        hs = heuristic_search(two_branch.workflow)
        assert hs.visited_states <= es.visited_states

    def test_best_state_is_equivalent(self, fig1):
        result = heuristic_search(fig1.workflow)
        report = empirically_equivalent(
            fig1.workflow,
            result.best.workflow,
            fig1.make_data(seed=21),
            Executor(context=fig1.context),
        )
        assert report.equivalent

    def test_never_worse_than_initial(self, fig1, two_branch):
        for scenario in (fig1, two_branch):
            result = heuristic_search(scenario.workflow)
            assert result.best_cost <= result.initial_cost

    def test_deterministic(self, two_branch):
        first = heuristic_search(two_branch.workflow)
        second = heuristic_search(two_branch.workflow)
        assert first.best.signature == second.best.signature
        assert first.visited_states == second.visited_states

    def test_time_budget_returns_best_so_far(self, two_branch):
        config = HSConfig(max_seconds=0.0)
        result = heuristic_search(two_branch.workflow, config=config)
        assert not result.completed
        assert result.best_cost <= result.initial_cost

    def test_no_composites_in_final_state(self, fig1):
        result = heuristic_search(
            fig1.workflow, merge_constraints=(("4", "5"),)
        )
        assert not any(
            isinstance(a, CompositeActivity)
            for a in result.best.workflow.activities()
        )

    def test_merge_constraint_keeps_pair_together(self, fig1):
        """With 5 and 6 merged, γ cannot be swapped before A2E, so the best
        state keeps the 5.6 order."""
        free = heuristic_search(fig1.workflow)
        constrained = heuristic_search(
            fig1.workflow, merge_constraints=(("5", "6"),)
        )
        # γ (6) precedes A2E (5) in the free optimum; the constraint pins
        # the original 5-before-6 order. Each id occurs once per signature.
        assert free.best.signature.index("6") < free.best.signature.index("5")
        assert constrained.best.signature.index("5") < constrained.best.signature.index("6")
        assert constrained.best_cost >= free.best_cost

    def test_reported_initial_is_unmerged(self, fig1):
        result = heuristic_search(fig1.workflow, merge_constraints=(("4", "5"),))
        assert result.initial.signature == "((1.3)//(2.4.5.6)).7.8.9"


class TestGreedy:
    def test_greedy_algorithm_label(self, fig1):
        assert greedy_search(fig1.workflow).algorithm == "HS-Greedy"

    def test_greedy_visits_fewer_states_than_hs(self):
        workload = generate_workload("small", seed=4)
        hs = heuristic_search(workload.workflow)
        greedy = greedy_search(workload.workflow)
        assert greedy.visited_states < hs.visited_states

    def test_greedy_quality_at_most_hs(self):
        workload = generate_workload("small", seed=4)
        hs = heuristic_search(workload.workflow)
        greedy = greedy_search(workload.workflow)
        assert greedy.best_cost >= hs.best_cost - 1e-9

    def test_greedy_equivalent_on_data(self, two_branch):
        result = greedy_search(two_branch.workflow)
        report = empirically_equivalent(
            two_branch.workflow,
            result.best.workflow,
            two_branch.make_data(seed=2),
            Executor(context=two_branch.context),
        )
        assert report.equivalent

    def test_greedy_never_worse_than_initial(self, fig1):
        result = greedy_search(fig1.workflow)
        assert result.best_cost <= result.initial_cost


class TestOptimizeFacade:
    def test_algorithm_aliases(self, fig1):
        from repro import optimize

        assert optimize(fig1.workflow, algorithm="ES").algorithm == "ES"
        assert optimize(fig1.workflow, algorithm="hs").algorithm == "HS"
        assert (
            optimize(fig1.workflow, algorithm="HS-Greedy").algorithm == "HS-Greedy"
        )

    def test_unknown_algorithm(self, fig1):
        from repro import ReproError, optimize

        with pytest.raises(ReproError, match="unknown algorithm"):
            optimize(fig1.workflow, algorithm="quantum")

    def test_kwargs_forwarded(self, fig1):
        from repro import optimize

        with pytest.warns(DeprecationWarning):
            result = optimize(fig1.workflow, algorithm="es", max_states=3)
        assert not result.completed

    def test_summary_mentions_algorithm(self, fig1):
        from repro import optimize

        summary = optimize(fig1.workflow).summary()
        assert "HS" in summary and "%" in summary
