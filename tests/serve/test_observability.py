"""Serve-plane observability: metrics exposition, tracing, exemplars, top.

Three planes under test against a real daemon:

* the metrics plane — the ``metrics`` op and the plain-HTTP
  ``--metrics-port`` endpoint both serve well-formed Prometheus text with
  live request histograms;
* the tracing plane — every served request carries one ``trace_id`` from
  the envelope through the daemon recorder, across the worker-process
  boundary, into a single reassemblable span tree;
* the exemplar plane — the daemon retains bounded rings of the slowest
  and most recently failed requests with their full span trees.

Observability must never change answers: the trace test re-checks that a
served ``jobs=2`` result is byte-identical to a direct optimize.
"""

from __future__ import annotations

import re
import urllib.error
import urllib.request

import pytest

from repro import SearchBudget, optimize
from repro.obs import CONTENT_TYPE, Recorder, filter_trace, render_trace, run_top
from repro.serve import (
    BackgroundServer,
    ExemplarStore,
    ServeConfig,
    ServeError,
)
from repro.serve.protocol import encode, result_to_dict
from repro.workloads import generate_workload

BUDGET = {"max_states": 300}


@pytest.fixture(scope="module")
def server():
    config = ServeConfig(
        workers=2,
        max_jobs=2,
        queue_size=8,
        memo_capacity=64,
        metrics_port=0,
        exemplar_capacity=4,
    )
    with BackgroundServer(config) as background:
        yield background


def _workflow(seed: int = 0):
    return generate_workload("tiny", seed=seed).workflow


def _optimize_once(server, seed=0, algorithm="hs", budget=BUDGET):
    with server.client() as client:
        return client.optimize(_workflow(seed=seed), algorithm, budget=budget)


class TestMetricsOp:
    def test_exposition_is_well_formed_with_live_histograms(self, server):
        _optimize_once(server, seed=10)
        with server.client() as client:
            reply = client.request({"op": "metrics"})
            text = client.metrics()
        assert reply["content_type"] == CONTENT_TYPE
        sample = re.compile(
            r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)"
        )
        names = set()
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# TYPE "):
                continue
            assert not line.startswith("#"), line
            match = sample.fullmatch(line)
            assert match, f"malformed sample line: {line!r}"
            names.add(match.group(1))
        assert "repro_serve_request_latency_seconds_count" in names
        assert "repro_serve_uptime_seconds" in names
        assert "repro_serve_queue_depth" in names
        assert "repro_serve_memo_hit_rate" in names
        count = re.search(
            r"^repro_serve_request_latency_seconds_count (\d+)$",
            text,
            re.MULTILINE,
        )
        assert count and int(count.group(1)) >= 1

    def test_stats_carries_histogram_summaries(self, server):
        _optimize_once(server, seed=11)
        with server.client() as client:
            stats = client.stats()
        row = stats["histograms"]["serve.request_latency_seconds"]
        assert row["count"] >= 1
        assert row["p50"] is not None and row["p99"] >= row["p50"]


class TestMetricsHttp:
    def test_get_metrics_serves_the_exposition(self, server):
        _optimize_once(server, seed=12)
        host, port = server.server.metrics_address
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=10
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == CONTENT_TYPE
            body = response.read().decode("utf-8")
        assert "repro_serve_request_latency_seconds_count" in body

    def test_other_paths_get_404(self, server):
        host, port = server.server.metrics_address
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://{host}:{port}/nope", timeout=10
            )
        assert excinfo.value.code == 404


class TestExemplarStoreUnit:
    def _entry(self, latency, trace="t"):
        return {
            "trace_id": trace,
            "latency_seconds": latency,
            "spans": [{"name": "serve.request"}],
        }

    def test_slow_ring_keeps_the_n_slowest(self):
        store = ExemplarStore(capacity=3)
        for latency in (0.1, 0.5, 0.3, 0.9, 0.2, 0.7):
            store.record(self._entry(latency))
        snapshot = store.snapshot()
        kept = [e["latency_seconds"] for e in snapshot["slowest"]]
        assert kept == [0.9, 0.7, 0.5]  # sorted slowest-first
        assert snapshot["capacity"] == 3

    def test_failed_ring_keeps_the_most_recent(self):
        store = ExemplarStore(capacity=2)
        for index in range(4):
            store.record(
                self._entry(0.1, trace=f"t{index}"), failed=True
            )
        failed = store.snapshot()["failed"]
        assert [e["trace_id"] for e in failed] == ["t2", "t3"]

    def test_span_trees_are_capped(self):
        store = ExemplarStore(capacity=1)
        entry = self._entry(1.0)
        entry["spans"] = [{"name": f"s{i}"} for i in range(600)]
        store.record(entry)
        (kept,) = store.snapshot()["slowest"]
        assert len(kept["spans"]) == 512
        assert kept["spans_truncated"] == 88

    def test_snapshot_copies_do_not_alias_the_rings(self):
        store = ExemplarStore(capacity=1)
        store.record(self._entry(1.0))
        snapshot = store.snapshot()
        snapshot["slowest"][0]["trace_id"] = "mutated"
        assert store.snapshot()["slowest"][0]["trace_id"] == "t"


class TestExemplarsEndToEnd:
    def test_served_request_lands_in_the_slow_ring(self, server):
        reply = _optimize_once(server, seed=13)
        with server.client() as client:
            snapshot = client.exemplars()
        entries = {e["trace_id"]: e for e in snapshot["slowest"]}
        entry = entries[reply["trace_id"]]
        assert entry["ok"] is True
        assert entry["tenant"] == "default"
        assert entry["algorithm"] == "hs"
        assert entry["latency_seconds"] > 0
        assert entry["budget"]["max_states"] == 300
        roots = [s for s in entry["spans"] if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["serve.request"]

    def test_failed_request_lands_in_the_failed_ring(self, server):
        with server.client() as client:
            with pytest.raises(ServeError):
                client.optimize(
                    _workflow(seed=14), "hs",
                    budget={"max_states": 300, "bogus": 1},
                )
            snapshot = client.exemplars()
        # Admission-time rejections never ran a request; only failures
        # inside the worker land in the ring, so provoke one of those:
        # an activity the engine cannot cost is caught mid-request.
        assert isinstance(snapshot["failed"], list)


class TestTraceEndToEnd:
    def test_one_trace_id_spans_workers_and_shards(self, server):
        """The acceptance demo: one served optimize with worker processes
        plus a sharded engine run compose a single span tree under one
        trace id, with byte-identical results throughout."""
        budget = {"max_states": 300, "jobs": 2}
        reply = _optimize_once(server, seed=0, algorithm="es", budget=budget)
        trace_id = reply["trace_id"]
        assert trace_id

        # Byte-identity first: observability never changes the answer.
        direct = optimize(
            _workflow(seed=0), "es",
            budget=SearchBudget(max_states=300, jobs=2),
        )
        expected = result_to_dict(direct)
        served = reply["result"]
        for field in (
            "best_cost",
            "best_signature",
            "best_workflow",
            "initial_cost",
            "lineage",
            "visited_states",
            "completed",
        ):
            assert served[field] == expected[field], field
        # Byte-identical on the wire (cache_hits may differ: the daemon's
        # transposition cache is shared across requests by design).
        assert encode(
            {k: served[k] for k in ("best_workflow", "lineage")}
        ) == encode({k: expected[k] for k in ("best_workflow", "lineage")})

        with server.client() as client:
            snapshot = client.exemplars()
        (entry,) = [
            e for e in snapshot["slowest"] if e["trace_id"] == trace_id
        ]
        spans = entry["spans"]

        # Single reassemblable tree: exactly one root, every parent
        # resolves, every span stamped with the request's trace id.
        by_id = {s["span_id"]: s for s in spans}
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["serve.request"]
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] in by_id, span["name"]
            assert span["tags"]["trace"] == trace_id, span["name"]
        names = {s["name"] for s in spans}
        assert {"serve.request", "serve.queue_wait", "serve.search"} <= names

        # Worker-process spans crossed the pool boundary: their ids are
        # absorb-namespaced and they still carry the trace id.
        worker_spans = [
            s for s in spans if re.match(r"w\d+:", s["span_id"])
        ]
        assert worker_spans, "no worker spans shipped back"
        assert any(s["name"] == "search.es.expand" for s in worker_spans)

        # Engine shards join the same trace: a sharded run performed
        # under the request's trace id tags its shard spans with it.
        # (two_branch is the known-partitionable scenario shape; jobs=1
        # keeps the shards in-process, byte-identical by construction.)
        from repro.engine import ExecutionBudget, Executor, execute_partitioned
        from repro.obs import use_recorder
        from repro.workloads.scenarios import two_branch_scenario

        scenario = two_branch_scenario()
        recorder = Recorder()
        with use_recorder(recorder), recorder.trace(trace_id):
            execute_partitioned(
                Executor(context=scenario.context),
                scenario.workflow, scenario.make_data(0, n=120),
                ExecutionBudget(batch_size=32), shards=2, jobs=1,
            )
        engine_events = recorder.events()
        shard_spans = [
            e for e in engine_events
            if e.get("type") == "span" and e["name"] == "engine.shard"
        ]
        assert len(shard_spans) == 2
        assert all(s["tags"]["trace"] == trace_id for s in shard_spans)
        assert {s["tags"]["shard"] for s in shard_spans} == {0, 1}

        # The combined stream filters back to one request's tree.
        combined = spans + engine_events
        mine = filter_trace(combined, trace_id)
        assert {"serve.request", "engine.shard"} <= {
            e["name"] for e in mine if e.get("type") == "span"
        }
        rendered = render_trace(mine)
        assert "serve.request" in rendered
        assert "engine.shard" in rendered

    def test_memo_hits_get_their_own_trace_id(self, server):
        wf = _workflow(seed=15)
        with server.client() as client:
            cold = client.optimize(wf.copy(), "hs", budget=BUDGET)
            warm = client.optimize(wf.copy(), "hs", budget=BUDGET)
        assert warm["served_from"] == "memo"
        assert warm["trace_id"] and warm["trace_id"] != cold["trace_id"]


class TestTopLive:
    def test_one_screen_from_a_real_daemon(self, server):
        _optimize_once(server, seed=16)
        screens: list[str] = []
        with server.client() as client:
            rendered = run_top(
                client, interval=0.0, iterations=1,
                show_exemplars=True, write=screens.append,
            )
        assert rendered == 1
        (screen,) = screens
        assert "repro serve" in screen
        assert "req/s" in screen
        (row,) = [
            line for line in screen.splitlines()
            if line.startswith("serve.request_latency_seconds")
        ]
        # Live p50/p99 from the daemon's histogram: real numbers, no
        # placeholder dashes.
        assert "—" not in row
        assert "slowest requests" in screen

    def test_cli_top_over_tcp(self, server, capsys):
        from repro.cli import main

        _optimize_once(server, seed=17)
        host, port = server.server.address
        assert main(
            ["top", "--host", host, "--port", str(port),
             "--iterations", "1", "--no-clear"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro serve" in out
        assert "serve.request_latency_seconds" in out
