"""Wire protocol codecs: framing, budget/model/workflow validation."""

from __future__ import annotations

import json

import pytest

from repro import SearchBudget, optimize
from repro.serve.protocol import (
    MODELS,
    ProtocolError,
    budget_from_dict,
    budget_to_dict,
    decode,
    encode,
    model_key,
    resolve_model,
    result_to_dict,
    workflow_from_request,
)
from repro.workloads import fig1_workflow


class TestFraming:
    def test_encode_is_one_newline_terminated_line(self):
        line = encode({"op": "ping", "id": 7})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_encode_is_canonical(self):
        # Sorted keys + compact separators: equal payloads are byte-equal.
        a = encode({"b": 1, "a": [2, 3]})
        b = encode({"a": [2, 3], "b": 1})
        assert a == b
        assert b" " not in a

    def test_round_trip(self):
        message = {"op": "optimize", "id": 3, "budget": {"max_states": 10}}
        assert decode(encode(message)) == message

    def test_decode_accepts_str_and_bytes(self):
        assert decode('{"op":"ping"}') == decode(b'{"op":"ping"}')

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode(b"[1,2,3]\n")


class TestBudgetCodec:
    def test_none_is_default_budget(self):
        assert budget_from_dict(None) == SearchBudget()

    def test_round_trip_keeps_every_knob(self):
        budget = SearchBudget(
            max_states=100,
            max_seconds=1.5,
            jobs=2,
            beam_width=4,
            prune_dominated=True,
            bound=True,
        )
        assert budget_from_dict(budget_to_dict(budget)) == budget

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="max_statez"):
            budget_from_dict({"max_statez": 100})

    def test_cache_not_settable_over_the_wire(self):
        with pytest.raises(ProtocolError, match="cache"):
            budget_from_dict({"cache": "/tmp/evil"})

    def test_invalid_value_rejected(self):
        with pytest.raises(ProtocolError, match="invalid budget"):
            budget_from_dict({"max_states": 0})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            budget_from_dict([1, 2])


class TestModels:
    def test_default_is_processed_rows(self):
        assert type(resolve_model(None)) is MODELS["processed_rows"]
        assert model_key(None) == "processed_rows"

    def test_named_models_resolve(self):
        for name, cls in MODELS.items():
            assert type(resolve_model(name)) is cls
            assert model_key(name) == name

    def test_unknown_model_rejected(self):
        with pytest.raises(ProtocolError, match="unknown cost model"):
            resolve_model("quadratic")


class TestWorkflowCodec:
    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="workflow object"):
            workflow_from_request("fig1")

    def test_rejects_invalid_document(self):
        with pytest.raises(ProtocolError, match="invalid workflow"):
            workflow_from_request({"activities": "nope"})


class TestResultCodec:
    def test_result_dict_is_json_and_covers_the_guarantee(self):
        result = optimize(
            fig1_workflow().workflow, "hs", budget=SearchBudget(max_states=50)
        )
        payload = result_to_dict(result)
        # The wire payload must be plain JSON (the memo stores it as-is).
        json.dumps(payload)
        assert payload["best_cost"] == result.best.cost
        assert payload["best_signature"] == result.best.signature
        assert payload["lineage"] == result.lineage_dicts()
        assert payload["visited_states"] == result.visited_states
        assert payload["algorithm"] == result.algorithm
