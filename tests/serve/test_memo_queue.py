"""Unit coverage for the result memo and the admission queue."""

from __future__ import annotations

import threading

import pytest

from repro import SearchBudget
from repro.serve.memo import ResultMemo, memo_key
from repro.serve.queue import AdmissionError, Job, JobQueue, TenantPolicy


def _job(tenant: str = "acme") -> Job:
    return Job(tenant=tenant, payload={}, run=lambda job, pool: None)


class TestMemoKey:
    def test_jobs_is_excluded(self):
        # jobs=N is byte-identical to serial, so any worker count answers.
        serial = memo_key("fp", "processed_rows", "hs", SearchBudget(jobs=1))
        parallel = memo_key("fp", "processed_rows", "hs", SearchBudget(jobs=8))
        assert serial == parallel

    @pytest.mark.parametrize(
        "knob",
        [
            {"max_states": 10},
            {"max_seconds": 1.0},
            {"beam_width": 2},
            {"prune_dominated": True},
            {"bound": True},
        ],
    )
    def test_every_outcome_knob_is_included(self, knob):
        base = memo_key("fp", "processed_rows", "hs", SearchBudget())
        varied = memo_key("fp", "processed_rows", "hs", SearchBudget(**knob))
        assert base != varied

    def test_algorithm_is_case_insensitive(self):
        budget = SearchBudget()
        assert memo_key("fp", "m", "HS", budget) == memo_key(
            "fp", "m", "hs", budget
        )

    def test_fingerprint_and_model_distinguish(self):
        budget = SearchBudget()
        assert memo_key("a", "m", "hs", budget) != memo_key(
            "b", "m", "hs", budget
        )
        assert memo_key("a", "m", "hs", budget) != memo_key(
            "a", "n", "hs", budget
        )


class TestResultMemo:
    def test_get_put_and_stats(self):
        memo = ResultMemo(capacity=4)
        assert memo.get("k") is None
        memo.put("k", {"best_cost": 1.0})
        assert memo.get("k") == {"best_cost": 1.0}
        stats = memo.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction(self):
        memo = ResultMemo(capacity=2)
        memo.put("a", {"v": 1})
        memo.put("b", {"v": 2})
        memo.get("a")  # bump a most-recently-used
        memo.put("c", {"v": 3})  # evicts b, not a
        assert memo.get("b") is None
        assert memo.get("a") == {"v": 1}
        assert memo.get("c") == {"v": 3}
        assert len(memo) == 2

    def test_first_write_wins(self):
        # A racing double-compute produced the same deterministic value;
        # the incumbent stays.
        memo = ResultMemo(capacity=2)
        memo.put("k", {"v": "first"})
        memo.put("k", {"v": "second"})
        assert memo.get("k") == {"v": "first"}

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultMemo(capacity=0)


class TestTenantPolicy:
    def test_clamp_floors_stopping_criteria(self):
        policy = TenantPolicy(max_states=100, max_seconds=2.0)
        effective = policy.clamp(
            SearchBudget(max_states=10_000, max_seconds=60.0), max_jobs=4
        )
        assert effective.max_states == 100
        assert effective.max_seconds == 2.0

    def test_clamp_keeps_tighter_request(self):
        policy = TenantPolicy(max_states=100)
        effective = policy.clamp(SearchBudget(max_states=5), max_jobs=4)
        assert effective.max_states == 5

    def test_unbounded_request_gets_the_ceiling(self):
        policy = TenantPolicy(max_states=100, max_seconds=2.0)
        effective = policy.clamp(SearchBudget(), max_jobs=4)
        assert effective.max_states == 100
        assert effective.max_seconds == 2.0

    def test_jobs_capped_by_server(self):
        effective = TenantPolicy().clamp(SearchBudget(jobs=64), max_jobs=2)
        assert effective.jobs == 2

    def test_cache_is_stripped(self):
        effective = TenantPolicy().clamp(
            SearchBudget(cache="/tmp/somewhere"), max_jobs=1
        )
        assert effective.cache is None

    def test_pruning_knobs_survive_the_clamp(self):
        requested = SearchBudget(
            beam_width=3, prune_dominated=True, bound=True
        )
        effective = TenantPolicy(max_states=50).clamp(requested, max_jobs=1)
        assert effective.beam_width == 3
        assert effective.prune_dominated and effective.bound


class TestJobQueue:
    def test_fifo_and_task_done(self):
        queue = JobQueue(capacity=4, policy=TenantPolicy())
        first, second = _job(), _job()
        queue.submit(first)
        queue.submit(second)
        assert queue.depth() == 2
        assert queue.next_job(timeout=0.1) is first
        assert queue.next_job(timeout=0.1) is second
        assert queue.inflight() == {"acme": 2}
        queue.task_done(first)
        queue.task_done(second)
        assert queue.inflight() == {}

    def test_queue_full_rejects(self):
        queue = JobQueue(capacity=1, policy=TenantPolicy())
        queue.submit(_job("a"))
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(_job("b"))
        assert excinfo.value.code == "queue-full"
        assert queue.stats()["rejected_full"] == 1

    def test_tenant_limit_rejects(self):
        queue = JobQueue(capacity=8, policy=TenantPolicy(max_inflight=1))
        queue.submit(_job("acme"))
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(_job("acme"))
        assert excinfo.value.code == "tenant-limit"
        # Another tenant still gets in.
        queue.submit(_job("other"))
        assert queue.stats()["rejected_tenant"] == 1

    def test_tenant_limit_counts_running_jobs(self):
        # A job popped by a worker still holds its tenant slot until
        # task_done releases it.
        queue = JobQueue(capacity=8, policy=TenantPolicy(max_inflight=1))
        job = _job("acme")
        queue.submit(job)
        assert queue.next_job(timeout=0.1) is job
        with pytest.raises(AdmissionError):
            queue.submit(_job("acme"))
        queue.task_done(job)
        queue.submit(_job("acme"))

    def test_close_rejects_and_wakes_waiters(self):
        queue = JobQueue(capacity=4, policy=TenantPolicy())
        woke: list[object] = []
        waiter = threading.Thread(
            target=lambda: woke.append(queue.next_job(timeout=10.0))
        )
        waiter.start()
        queue.close()
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert woke == [None]
        assert queue.closed
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(_job())
        assert excinfo.value.code == "shutting-down"

    def test_next_job_timeout_returns_none(self):
        queue = JobQueue(capacity=4, policy=TenantPolicy())
        assert queue.next_job(timeout=0.01) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            JobQueue(capacity=0, policy=TenantPolicy())
