"""End-to-end daemon coverage: determinism, memo, admission, streaming.

The serving guarantee under test: a served result is byte-identical to a
direct :func:`repro.optimize` call with the same budget — the daemon's
warm caches and memo change latency, never the answer.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import SearchBudget, optimize
from repro.io.json_io import workflow_to_dict
from repro.serve import (
    BackgroundServer,
    ServeClient,
    ServeConfig,
    ServeError,
    TenantPolicy,
)
from repro.serve.protocol import decode, encode, result_to_dict
from repro.workloads import fig1_workflow, generate_workload

BUDGET = {"max_states": 300}


@pytest.fixture(scope="module")
def server():
    config = ServeConfig(workers=2, queue_size=8, memo_capacity=64)
    with BackgroundServer(config) as background:
        yield background


def _workflow(seed: int = 0):
    return generate_workload("tiny", seed=seed).workflow


class TestDeterminism:
    def test_served_equals_direct_optimize(self, server):
        """Cost, plan and lineage match a direct in-process run exactly."""
        direct = optimize(
            _workflow(), "hs", budget=SearchBudget(max_states=300)
        )
        with server.client() as client:
            reply = client.optimize(_workflow(), "hs", budget=BUDGET)
        served = reply["result"]
        expected = result_to_dict(direct)
        for field in (
            "best_cost",
            "best_signature",
            "best_workflow",
            "initial_cost",
            "initial_signature",
            "lineage",
            "visited_states",
            "transition_mix",
            "completed",
        ):
            assert served[field] == expected[field], field
        # Byte-identical on the wire, not merely ==.
        assert encode(
            {k: served[k] for k in ("best_workflow", "lineage")}
        ) == encode({k: expected[k] for k in ("best_workflow", "lineage")})

    def test_memo_hit_replays_identically(self, server):
        wf = _workflow(seed=1)
        with server.client() as client:
            cold = client.optimize(wf.copy(), "hs", budget=BUDGET)
            warm = client.optimize(wf.copy(), "hs", budget=BUDGET)
        assert cold["served_from"] == "search"
        assert warm["served_from"] == "memo"
        assert warm["result"] == cold["result"]

    def test_jobs_do_not_change_the_answer_or_the_memo_key(self, server):
        wf = _workflow(seed=2)
        with server.client() as client:
            serial = client.optimize(
                wf.copy(), "hs", budget={**BUDGET, "jobs": 1}
            )
            parallel = client.optimize(
                wf.copy(), "hs", budget={**BUDGET, "jobs": 4}
            )
        # jobs is excluded from the memo key: the second request hits.
        assert parallel["served_from"] == "memo"
        assert parallel["result"] == serial["result"]


class TestMemoLatency:
    def test_repeat_request_is_an_order_of_magnitude_faster(self, server):
        wf = generate_workload("small", seed=5).workflow
        with server.client() as client:
            started = time.perf_counter()
            cold = client.optimize(wf.copy(), "hs", budget={"max_states": 800})
            cold_latency = time.perf_counter() - started
            started = time.perf_counter()
            warm = client.optimize(wf.copy(), "hs", budget={"max_states": 800})
            warm_latency = time.perf_counter() - started
        assert cold["served_from"] == "search"
        assert warm["served_from"] == "memo"
        assert warm["cache_hits"] > 0
        assert warm_latency < cold_latency / 10, (
            f"memo hit took {warm_latency:.4f}s vs cold {cold_latency:.4f}s"
        )

    def test_envelope_reports_latency_and_hits(self, server):
        with server.client() as client:
            reply = client.optimize(_workflow(seed=3), "hs", budget=BUDGET)
        assert reply["latency_seconds"] >= 0
        assert reply["cache_hits"] >= 0
        assert len(reply["fingerprint"]) == 24
        assert reply["budget"]["max_states"] == BUDGET["max_states"]


class TestStreaming:
    def test_progress_events_arrive_before_the_result(self, server):
        events: list[dict] = []
        with server.client() as client:
            reply = client.optimize(
                _workflow(seed=4),
                "hs",
                budget=BUDGET,
                on_event=events.append,
            )
        assert reply["ok"]
        stages = [event["event"] for event in events]
        assert "queued" in stages
        assert "started" in stages
        # search.* telemetry spans are forwarded as progress events.
        assert any(stage == "progress" for stage in stages)
        assert all(event["id"] == reply["id"] for event in events)


class TestOps:
    def test_ping(self, server):
        with server.client() as client:
            assert client.ping()

    def test_status_shape(self, server):
        with server.client() as client:
            status = client.status()
        assert status["workers"] == 2
        assert status["protocol_version"] == 1
        assert status["uptime_seconds"] >= 0
        assert "queue" in status

    def test_stats_counts_memo_and_transposition(self, server):
        with server.client() as client:
            wf = _workflow(seed=6)
            client.optimize(wf.copy(), "hs", budget=BUDGET)
            client.optimize(wf.copy(), "hs", budget=BUDGET)
            stats = client.stats()
        assert stats["memo"]["hits"] >= 1
        assert stats["memo"]["entries"] >= 1
        assert "transposition" in stats
        assert stats["tenants"]["default"] >= 2

    def test_bad_requests_keep_the_connection_usable(self, server):
        with server.client() as client:
            sock = client._socket
            sock.sendall(b"this is not json\n")
            reply = decode(client._reader.readline())
            assert reply["code"] == "bad-request"
            sock.sendall(encode({"op": "frobnicate", "id": 1}))
            reply = decode(client._reader.readline())
            assert reply["code"] == "bad-request"
            # The stream did not desync: a real request still answers.
            assert client.ping()

    def test_unknown_budget_field_is_bad_request(self, server):
        with server.client() as client:
            with pytest.raises(ServeError) as excinfo:
                client.optimize(
                    _workflow(), "hs", budget={"max_statez": 100}
                )
            assert excinfo.value.code == "bad-request"

    def test_unknown_algorithm_is_bad_request(self, server):
        with server.client() as client:
            with pytest.raises(ServeError) as excinfo:
                client.optimize(_workflow(), "simplex", budget=BUDGET)
            assert excinfo.value.code == "bad-request"


class TestAdmission:
    def test_tenant_inflight_limit_rejects_the_second_request(self):
        config = ServeConfig(
            workers=1, queue_size=8, tenant=TenantPolicy(max_inflight=1)
        )
        # One slow job occupies the tenant slot; the second submit on the
        # same connection must bounce with tenant-limit while the first
        # still answers correctly.
        document = workflow_to_dict(generate_workload("small", seed=7).workflow)
        with BackgroundServer(config) as background:
            host, port = background.address
            with socket.create_connection((host, port), timeout=60) as sock:
                reader = sock.makefile("rb")
                for rid in (1, 2):
                    sock.sendall(
                        encode(
                            {
                                "op": "optimize",
                                "id": rid,
                                "workflow": document,
                                "algorithm": "hs",
                                "budget": {"max_states": 4000},
                            }
                        )
                    )
                replies = {}
                while len(replies) < 2:
                    line = reader.readline()
                    assert line, "daemon closed the connection"
                    message = decode(line)
                    if "event" in message:
                        continue
                    replies[message["id"]] = message
        assert replies[1]["ok"] is True
        assert replies[2]["ok"] is False
        assert replies[2]["code"] == "tenant-limit"

    def test_tenant_budget_ceiling_clamps_the_search(self):
        config = ServeConfig(
            workers=1, tenant=TenantPolicy(max_states=50)
        )
        with BackgroundServer(config) as background:
            with background.client() as client:
                reply = client.optimize(
                    generate_workload("small", seed=8).workflow,
                    "hs",
                    budget={"max_states": 100_000},
                )
        assert reply["result"]["visited_states"] <= 50
        assert reply["budget"]["max_states"] == 50


class TestShutdown:
    def test_shutdown_op_stops_the_daemon(self):
        with BackgroundServer(ServeConfig(workers=1)) as background:
            with background.client() as client:
                client.optimize(_workflow(), "hs", budget=BUDGET)
                reply = client.shutdown()
                assert reply["stopping"] is True
            background._thread.join(timeout=30.0)
            assert not background._thread.is_alive()


class TestConcurrency:
    def test_many_clients_many_workflows(self):
        """4 threads × distinct workflows: every answer matches direct."""
        config = ServeConfig(workers=2, queue_size=32)
        seeds = list(range(4))
        direct = {
            seed: result_to_dict(
                optimize(
                    _workflow(seed=seed),
                    "hs",
                    budget=SearchBudget(max_states=300),
                )
            )
            for seed in seeds
        }
        failures: list[str] = []
        with BackgroundServer(config) as background:

            def hammer(seed: int) -> None:
                try:
                    with ServeClient(background.address) as client:
                        for _ in range(3):
                            reply = client.optimize(
                                _workflow(seed=seed), "hs", budget=BUDGET
                            )
                            for field in ("best_cost", "best_signature"):
                                if reply["result"][field] != direct[seed][field]:
                                    failures.append(
                                        f"seed {seed}: {field} diverged"
                                    )
                except Exception as exc:  # surfaced after join
                    failures.append(f"seed {seed}: {exc!r}")

            threads = [
                threading.Thread(target=hammer, args=(seed,))
                for seed in seeds
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            with background.client() as client:
                stats = client.stats()
        assert not failures, failures
        # 3 repeats per seed: at least the repeats hit the memo.
        assert stats["memo"]["hits"] >= len(seeds) * 2


class TestFig1:
    def test_paper_workflow_round_trips(self, server):
        """The paper's running example serves with its known improvement."""
        direct = optimize(
            fig1_workflow().workflow, "hs", budget=SearchBudget(max_states=300)
        )
        with server.client() as client:
            reply = client.optimize(
                fig1_workflow().workflow, "hs", budget=BUDGET
            )
        assert reply["result"]["best_cost"] == direct.best.cost
        assert reply["result"]["improvement_percent"] == pytest.approx(
            direct.improvement_percent
        )
