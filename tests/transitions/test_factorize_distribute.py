"""FAC and DIS: homologous detection, surgery, round-trips, applicability."""

import pytest

from repro.core.signature import state_signature
from repro.core.transitions import Distribute, Factorize, homologous
from repro.engine import Executor, empirically_equivalent
from repro.exceptions import TransitionError


class TestHomologous:
    def test_fig4_surrogate_keys_are_homologous(self, fig4):
        states, _ = fig4
        wf = states["initial"]
        assert homologous(wf, wf.node_by_id("3"), wf.node_by_id("4"))

    def test_activity_not_homologous_with_itself(self, fig4):
        states, _ = fig4
        wf = states["initial"]
        sk = wf.node_by_id("3")
        assert not homologous(wf, sk, sk)

    def test_different_semantics_not_homologous(self, two_branch):
        wf = two_branch.workflow
        # σ(V2>=40) vs NN(V1): different templates.
        assert not homologous(wf, wf.node_by_id("5"), wf.node_by_id("6"))

    def test_converts_across_branches_homologous(self, two_branch):
        wf = two_branch.workflow
        assert homologous(wf, wf.node_by_id("3"), wf.node_by_id("4"))


class TestDistribute:
    def test_distribute_selection_over_union(self, fig1):
        wf = fig1.workflow
        union, sigma = wf.node_by_id("7"), wf.node_by_id("8")
        distributed = Distribute(union, sigma).apply(wf)
        clone_ids = {a.id for a in distributed.activities()}
        assert "8_1" in clone_ids and "8_2" in clone_ids
        assert "8" not in clone_ids
        assert state_signature(distributed) == "((1.3.8_1)//(2.4.5.6.8_2)).7.9"

    def test_distribute_preserves_output(self, fig1):
        wf = fig1.workflow
        distributed = Distribute(wf.node_by_id("7"), wf.node_by_id("8")).apply(wf)
        report = empirically_equivalent(
            wf, distributed, fig1.make_data(seed=3), Executor(context=fig1.context)
        )
        assert report.equivalent

    def test_aggregation_never_distributes(self, fig4, fig1):
        wf = fig1.workflow
        union = wf.node_by_id("7")
        gamma = wf.node_by_id("6")
        with pytest.raises(TransitionError):
            Distribute(union, gamma).check(wf)

    def test_distribute_requires_adjacency(self, fig1):
        wf = fig1.workflow
        union = wf.node_by_id("7")
        # γ (6) is a provider, not the consumer, of the union.
        with pytest.raises(TransitionError):
            Distribute(union, wf.node_by_id("6")).check(wf)

    def test_distribute_requires_binary(self, fig1):
        wf = fig1.workflow
        with pytest.raises(TransitionError, match="not binary"):
            Distribute(wf.node_by_id("6"), wf.node_by_id("8")).check(wf)

    def test_affected_nodes_after_apply(self, fig1):
        wf = fig1.workflow
        transition = Distribute(wf.node_by_id("7"), wf.node_by_id("8"))
        transition.apply(wf)
        affected_ids = {n.id for n in transition.affected_nodes()}
        assert affected_ids == {"7", "8_1", "8_2"}


class TestFactorize:
    def test_factorize_fig4_surrogate_keys(self, fig4):
        states, _ = fig4
        wf = states["initial"]
        factorized = Factorize(
            wf.node_by_id("5"), wf.node_by_id("3"), wf.node_by_id("4")
        ).apply(wf)
        ids = {a.id for a in factorized.activities()}
        assert "3" in ids and "4" not in ids
        # One SK remains, placed after the union.
        union = factorized.node_by_id("5")
        (follower,) = factorized.consumers(union)
        assert follower.name == "SK"

    def test_factorize_requires_homologous(self, two_branch):
        wf = two_branch.workflow
        union = wf.node_by_id("7")
        # σ(V2) and convert2 are the direct providers but not homologous.
        with pytest.raises(TransitionError, match="not homologous"):
            Factorize(union, wf.node_by_id("5"), wf.node_by_id("4")).check(wf)

    def test_factorize_requires_adjacency(self, two_branch):
        wf = two_branch.workflow
        union = wf.node_by_id("7")
        with pytest.raises(TransitionError, match="not adjacent"):
            Factorize(union, wf.node_by_id("3"), wf.node_by_id("4")).check(wf)

    def test_factorize_preserves_output(self, fig4):
        states, context = fig4
        from repro.workloads.datagen import make_generic_rows

        wf = states["initial"]
        factorized = Factorize(
            wf.node_by_id("5"), wf.node_by_id("3"), wf.node_by_id("4")
        ).apply(wf)
        data = {
            "R1": [
                {"KEY": i, "SRC": "R1", "VAL": float(10 * i)} for i in range(8)
            ],
            "R2": [
                {"KEY": 100 + i, "SRC": "R2", "VAL": float(7 * i)} for i in range(8)
            ],
        }
        report = empirically_equivalent(
            wf, factorized, data, Executor(context=context)
        )
        assert report.equivalent


class TestRoundTrip:
    def test_fac_of_dis_restores_signature(self, fig1):
        """FAC(DIS(S)) carries the same signature as S (clone-id recovery)."""
        wf = fig1.workflow
        union = wf.node_by_id("7")
        distributed = Distribute(union, wf.node_by_id("8")).apply(wf)
        union_in_new = distributed.node_by_id("7")
        factorized = Factorize(
            union_in_new,
            distributed.node_by_id("8_1"),
            distributed.node_by_id("8_2"),
        ).apply(distributed)
        assert state_signature(factorized) == state_signature(wf)

    def test_dis_of_fac_restores_signature(self, fig4):
        states, _ = fig4
        wf = states["distributed"]
        union = wf.node_by_id("5")
        factorized = Factorize(
            union, wf.node_by_id("3"), wf.node_by_id("4")
        ).apply(wf)
        # Distribute the merged SK back into the branches.
        merged_sk = factorized.consumers(factorized.node_by_id("5"))[0]
        redistributed = Distribute(
            factorized.node_by_id("5"), merged_sk
        ).apply(factorized)
        # The clone ids differ from the original 3/4, but the shape matches.
        assert state_signature(redistributed).count("SK") == 0  # ids, not names
        assert len(list(redistributed.activities())) == len(list(wf.activities()))
