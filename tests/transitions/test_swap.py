"""SWA behaviour: legal swaps, graph surgery, Fig. 1/2 cases."""

import pytest

from repro.core.signature import state_signature
from repro.core.transitions import Swap
from repro.engine import Executor, empirically_equivalent
from repro.exceptions import TransitionError


class TestMechanics:
    def test_swap_rewires_chain(self, fig1):
        wf = fig1.workflow
        a2e, gamma = wf.node_by_id("5"), wf.node_by_id("6")
        swapped = Swap(a2e, gamma).apply(wf)
        assert swapped.providers(a2e) == [gamma]
        assert swapped.consumers(gamma) == [a2e]
        # The original state is untouched.
        assert wf.consumers(a2e) == [gamma]

    def test_swap_is_undone_by_reverse_swap(self, fig1):
        wf = fig1.workflow
        a2e, gamma = wf.node_by_id("5"), wf.node_by_id("6")
        swapped = Swap(a2e, gamma).apply(wf)
        restored = Swap(gamma, a2e).apply(swapped)
        assert state_signature(restored) == state_signature(wf)

    def test_describe(self, fig1):
        wf = fig1.workflow
        swap = Swap(wf.node_by_id("5"), wf.node_by_id("6"))
        assert swap.describe() == "SWA(5,6)"

    def test_affected_nodes(self, fig1):
        wf = fig1.workflow
        swap = Swap(wf.node_by_id("5"), wf.node_by_id("6"))
        assert {n.id for n in swap.affected_nodes()} == {"5", "6"}


class TestPaperCases:
    def test_aggregation_swaps_before_date_function(self, fig1):
        """The introduction's positive case: γ may precede A2E (Fig. 2)."""
        wf = fig1.workflow
        swap = Swap(wf.node_by_id("5"), wf.node_by_id("6"))
        assert swap.is_applicable(wf)

    def test_swapped_aggregation_still_equivalent_on_data(self, fig1):
        wf = fig1.workflow
        swapped = Swap(wf.node_by_id("5"), wf.node_by_id("6")).apply(wf)
        report = empirically_equivalent(
            wf, swapped, fig1.make_data(seed=11), Executor(context=fig1.context)
        )
        assert report.equivalent

    def test_selection_cannot_precede_generator(self, fig1):
        """Fig. 5: σ(€) must not be pushed before $2E — condition (3).

        In the Fig. 1 state the selection (8) is not adjacent to $2E (4),
        so we exercise the condition on the adjacent aggregation instead:
        σ(ECOST_M) reads the attribute γ generates.
        """
        wf = fig1.workflow
        # Make σ adjacent to γ by distributing it first.
        from repro.core.transitions import Distribute

        distributed = Distribute(wf.node_by_id("7"), wf.node_by_id("8")).apply(wf)
        sigma_clone = distributed.node_by_id("8_2")
        gamma = distributed.node_by_id("6")
        assert distributed.consumers(gamma) == [sigma_clone]
        # Swapping σ before γ must be rejected.
        assert not Swap(gamma, sigma_clone).is_applicable(distributed)

    def test_not_null_pushes_toward_source(self, two_branch):
        """Ordinary relational-style push-down keeps working."""
        wf = two_branch.workflow
        nn = wf.node_by_id("6")       # NN(V1)
        convert = wf.node_by_id("4")  # f(V1->W1) after NN in branch 2
        # NN before convert is the initial layout; the reverse swap is legal
        # too because NN only reads V1 which convert consumes... it is NOT:
        # convert drops V1, so NN after convert must be rejected.
        assert not Swap(nn, convert).is_applicable(wf)


class TestStructuralRejections:
    def test_non_adjacent_pair_rejected(self, fig1):
        wf = fig1.workflow
        with pytest.raises(TransitionError, match="adjacent"):
            Swap(wf.node_by_id("4"), wf.node_by_id("6")).check(wf)

    def test_wrong_direction_rejected(self, fig1):
        wf = fig1.workflow
        with pytest.raises(TransitionError, match="adjacent"):
            Swap(wf.node_by_id("6"), wf.node_by_id("5")).check(wf)

    def test_binary_activity_rejected(self, fig1):
        wf = fig1.workflow
        with pytest.raises(TransitionError, match="not unary"):
            Swap(wf.node_by_id("7"), wf.node_by_id("8")).check(wf)

    def test_activity_from_other_state_rejected(self, fig1, two_branch):
        with pytest.raises(TransitionError, match="not in state"):
            Swap(
                two_branch.workflow.node_by_id("5"),
                two_branch.workflow.node_by_id("6"),
            ).check(fig1.workflow)

    def test_try_apply_returns_none_when_rejected(self, fig1):
        wf = fig1.workflow
        assert Swap(wf.node_by_id("4"), wf.node_by_id("6")).try_apply(wf) is None
