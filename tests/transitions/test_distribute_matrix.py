"""The FAC/DIS applicability matrix, validated against the engine.

DESIGN.md declares which unary templates move across which binary ones
(filters across everything, injective functions across union/difference/
intersection, plain functions across union only, aggregations never).
This suite builds a micro-state per combination and checks two things:

* applicability matches the declared matrix;
* every *allowed* move is semantics-preserving on concrete data —
  including data engineered to contain cross-branch duplicates, the case
  where unsound moves across difference/intersection would show up.
"""

import pytest

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.transitions import Distribute, Factorize
from repro.core.workflow import ETLWorkflow
from repro.engine import (
    EngineContext,
    Executor,
    default_scalar_functions,
    empirically_equivalent,
)
from repro.templates import builtin as t

SCHEMA = Schema(["K", "V", "W"])


def _movable(kind: str, activity_id: str) -> Activity:
    """One unary activity of the requested family."""
    if kind == "selection":
        return Activity(
            activity_id,
            t.SELECTION,
            {"attr": "V", "op": ">=", "value": 5.0},
            selectivity=0.5,
        )
    if kind == "not_null":
        return Activity(activity_id, t.NOT_NULL, {"attr": "V"}, selectivity=0.9)
    if kind == "pk_check":
        return Activity(
            activity_id,
            t.PK_CHECK,
            {"key_attrs": ("K",), "reference": "blocked"},
            selectivity=0.9,
        )
    if kind == "injective_function":
        return Activity(
            activity_id,
            t.FUNCTION_APPLY,
            {
                "function": "shift_up",
                "inputs": ("V",),
                "output": "V2",
                "injective": True,
            },
        )
    if kind == "plain_function":
        return Activity(
            activity_id,
            t.FUNCTION_APPLY,
            {"function": "collapse_sign", "inputs": ("V",), "output": "V2"},
        )
    if kind == "surrogate_key":
        return Activity(
            activity_id,
            t.SURROGATE_KEY,
            {"key_attr": "K", "skey_attr": "SK", "lookup": "keys"},
        )
    if kind == "aggregation":
        return Activity(
            activity_id,
            t.AGGREGATION,
            {"group_by": ("K",), "measure": "V", "agg": "sum", "output": "VS"},
            selectivity=0.5,
        )
    raise AssertionError(kind)


def _binary(kind: str) -> Activity:
    if kind == "union":
        return Activity("5", t.UNION, {})
    if kind == "difference":
        return Activity("5", t.DIFFERENCE, {})
    if kind == "intersection":
        return Activity("5", t.INTERSECTION, {})
    if kind == "join":
        return Activity("5", t.JOIN, {"on": ("K",)}, selectivity=0.05)
    raise AssertionError(kind)


def _target_schema(binary_kind: str, movable: Activity) -> Schema:
    base = SCHEMA
    if binary_kind == "join":
        base = Schema(["K", "V", "W", "V_R", "W_R"])
    return movable.derive_output((base,))


def _join_right_schema() -> Schema:
    return Schema(["K", "V_R", "W_R"])


def _state_with_movable_after_binary(binary_kind: str, movable_kind: str):
    """sources -> binary -> movable -> target (the DIS starting shape)."""
    wf = ETLWorkflow()
    left_schema = SCHEMA
    right_schema = _join_right_schema() if binary_kind == "join" else SCHEMA
    s1 = wf.add_node(RecordSet("1", "L", left_schema, RecordSetKind.SOURCE, 20))
    s2 = wf.add_node(RecordSet("2", "R", right_schema, RecordSetKind.SOURCE, 20))
    binary = wf.add_node(_binary(binary_kind))
    movable = _movable(movable_kind, "6")
    wf.add_node(movable)
    wf.add_edge(s1, binary, port=0)
    wf.add_edge(s2, binary, port=1)
    wf.add_edge(binary, movable)
    target = wf.add_node(
        RecordSet("9", "DW", _target_schema(binary_kind, movable), RecordSetKind.TARGET)
    )
    wf.add_edge(movable, target)
    return wf, binary, movable


#: The declared matrix: does <movable> distribute over <binary>?
EXPECTED = {
    ("selection", "union"): True,
    ("selection", "difference"): True,
    ("selection", "intersection"): True,
    ("not_null", "union"): True,
    ("not_null", "difference"): True,
    ("not_null", "intersection"): True,
    ("not_null", "join"): False,  # reads V, absent on the right side
    ("injective_function", "join"): False,
    ("pk_check", "union"): True,
    ("pk_check", "difference"): True,
    ("pk_check", "intersection"): True,
    ("injective_function", "union"): True,
    ("injective_function", "difference"): True,
    ("injective_function", "intersection"): True,
    ("plain_function", "union"): True,
    ("plain_function", "difference"): False,
    ("plain_function", "intersection"): False,
    ("surrogate_key", "union"): True,
    ("surrogate_key", "difference"): True,
    ("surrogate_key", "intersection"): True,
    ("aggregation", "union"): False,
    ("aggregation", "difference"): False,
    ("aggregation", "intersection"): False,
    ("aggregation", "join"): False,
    # Functionality on one side only never survives a join clone; key-based
    # filters do.
    ("selection", "join"): False,  # reads V, absent on the right side
    ("pk_check", "join"): True,   # reads K, present on both sides
    ("plain_function", "join"): False,
    ("surrogate_key", "join"): False,  # generates SK on both sides
}


def _context() -> EngineContext:
    functions = default_scalar_functions()
    functions["collapse_sign"] = lambda v: abs(v) if v is not None else None
    context = EngineContext(scalar_functions=functions)
    context.references["blocked"] = frozenset({(1,), (7,)})
    context.lookups["keys"] = lambda key: 1000 + key
    return context


def _data(binary_kind: str) -> dict:
    """Rows with deliberate cross-branch duplicates and sign collisions."""
    left = [
        {"K": k, "V": float(v), "W": float(w)}
        for k, v, w in [
            (1, 10, 0), (2, -10, 1), (2, 10, 1), (3, 4, 2),
            (4, 8, 3), (4, 8, 3), (5, -8, 4), (7, 6, 5),
        ]
    ]
    if binary_kind == "join":
        right = [
            {"K": k, "V_R": float(v), "W_R": float(w)}
            for k, v, w in [(1, 1, 1), (2, 2, 2), (2, 3, 3), (5, 5, 5)]
        ]
    else:
        right = [
            {"K": k, "V": float(v), "W": float(w)}
            for k, v, w in [
                (2, 10, 1), (4, 8, 3), (5, -8, 4), (6, 2, 6), (7, 6, 5),
            ]
        ]
    return {"L": left, "R": right}


@pytest.mark.parametrize(
    "movable_kind,binary_kind",
    sorted(EXPECTED),
)
def test_distribute_matrix(movable_kind, binary_kind):
    wf, binary, movable = _state_with_movable_after_binary(
        binary_kind, movable_kind
    )
    transition = Distribute(binary, movable)
    successor = transition.try_apply(wf)
    expected = EXPECTED[(movable_kind, binary_kind)]
    assert (successor is not None) == expected, (movable_kind, binary_kind)
    if successor is None:
        return
    report = empirically_equivalent(
        wf, successor, _data(binary_kind), Executor(context=_context())
    )
    assert report.equivalent, (movable_kind, binary_kind, report.differences)


@pytest.mark.parametrize(
    "movable_kind,binary_kind",
    sorted(key for key, allowed in EXPECTED.items() if allowed),
)
def test_factorize_matrix_round_trip(movable_kind, binary_kind):
    """For every allowed DIS, FAC restores the original state exactly."""
    wf, binary, movable = _state_with_movable_after_binary(
        binary_kind, movable_kind
    )
    distributed = Distribute(binary, movable).apply(wf)
    clones = sorted(
        (a for a in distributed.activities() if a.id.startswith("6_")),
        key=lambda a: a.id,
    )
    assert len(clones) == 2
    refactorized = Factorize(
        distributed.node_by_id("5"), clones[0], clones[1]
    ).apply(distributed)
    from repro.core.signature import state_signature

    assert state_signature(refactorized) == state_signature(wf)
    report = empirically_equivalent(
        wf, refactorized, _data(binary_kind), Executor(context=_context())
    )
    assert report.equivalent
