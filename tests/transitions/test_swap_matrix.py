"""The SWA applicability matrix, engine-verified.

For ordered pairs of unary activities (a1 feeding a2), checks that the
swap's applicability matches the documented rules and that every allowed
swap preserves the target multiset on data containing NULLs, duplicate
keys, and boundary values.
"""

import pytest

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.transitions import Swap
from repro.core.workflow import ETLWorkflow
from repro.engine import (
    EngineContext,
    Executor,
    default_scalar_functions,
    empirically_equivalent,
)
from repro.templates import builtin as t

SCHEMA = Schema(["K", "D", "V", "W"])


def _make(kind: str, activity_id: str) -> Activity:
    factories = {
        "sel_v": lambda: Activity(
            activity_id, t.SELECTION, {"attr": "V", "op": ">=", "value": 5.0},
            selectivity=0.5,
        ),
        "sel_w": lambda: Activity(
            activity_id, t.SELECTION, {"attr": "W", "op": "<=", "value": 8.0},
            selectivity=0.5,
        ),
        "nn_v": lambda: Activity(
            activity_id, t.NOT_NULL, {"attr": "V"}, selectivity=0.9
        ),
        "range_v": lambda: Activity(
            activity_id, t.RANGE_CHECK, {"attr": "V", "low": 0.0, "high": 9.0},
            selectivity=0.7,
        ),
        "pk": lambda: Activity(
            activity_id, t.PK_CHECK, {"key_attrs": ("K",), "reference": "ref"},
            selectivity=0.9,
        ),
        "gen_from_v": lambda: Activity(
            activity_id,
            t.FUNCTION_APPLY,
            {"function": "shift_up", "inputs": ("V",), "output": "V2"},
        ),
        "sel_v2": lambda: Activity(
            activity_id,
            t.SELECTION,
            {"attr": "V2", "op": ">=", "value": 1002.0},
            selectivity=0.5,
        ),
        "proj_w": lambda: Activity(
            activity_id, t.PROJECTION, {"attrs": ("W",)}
        ),
        "sk": lambda: Activity(
            activity_id,
            t.SURROGATE_KEY,
            {"key_attr": "K", "skey_attr": "SK", "lookup": "keys"},
        ),
        "gamma": lambda: Activity(
            activity_id,
            t.AGGREGATION,
            {"group_by": ("K", "D"), "measure": "V", "agg": "sum", "output": "VS"},
            selectivity=0.5,
        ),
        "inplace_d": lambda: Activity(
            activity_id,
            t.FUNCTION_APPLY,
            {
                "function": "negate",
                "inputs": ("D",),
                "output": "D",
                "injective": True,
            },
        ),
        "distinct_kd": lambda: Activity(
            activity_id, t.DISTINCT, {"group_by": ("K", "D")}, selectivity=0.8
        ),
    }
    return factories[kind]()


#: (first, second) -> swap allowed?
EXPECTED = {
    # filters commute freely
    ("sel_v", "sel_w"): True,
    ("sel_v", "nn_v"): True,
    ("nn_v", "range_v"): True,
    ("pk", "sel_v"): True,
    # a filter never jumps ahead of the function generating its attribute
    ("gen_from_v", "sel_v2"): False,
    # ...but an independent filter passes the generator fine
    ("gen_from_v", "sel_w"): True,
    # projection: blocked when the dropped attribute is read downstream
    ("sel_w", "proj_w"): False,
    ("sel_v", "proj_w"): True,
    # surrogate keys commute with independent filters
    ("sk", "sel_v"): True,
    ("sel_v", "sk"): True,
    # aggregation crossings: filters on groupers only
    ("pk", "gamma"): True,          # K is a group-by attribute
    ("sel_v", "gamma"): False,      # V is the measure
    ("inplace_d", "gamma"): True,   # injective in-place on a grouper
    ("gamma", "distinct_kd"): False,  # two grouping activities never swap
    # in-place transform vs filter on the same attribute: blocked
    ("inplace_d", "sel_v"): True,   # disjoint attrs: fine
    ("sel_v", "inplace_d"): True,
}


def _state(first_kind: str, second_kind: str):
    wf = ETLWorkflow()
    src = wf.add_node(RecordSet("1", "S", SCHEMA, RecordSetKind.SOURCE, 50))
    first = wf.add_node(_make(first_kind, "2"))
    second = wf.add_node(_make(second_kind, "3"))
    wf.add_edge(src, first)
    wf.add_edge(first, second)
    out_schema = second.derive_output(
        (first.derive_output((SCHEMA,)),)
    )
    dw = wf.add_node(RecordSet("9", "DW", out_schema, RecordSetKind.TARGET))
    wf.add_edge(second, dw)
    wf.validate()
    wf.propagate_schemas()
    return wf, first, second


def _context() -> EngineContext:
    context = EngineContext(scalar_functions=default_scalar_functions())
    context.references["ref"] = frozenset({(1,), (4,)})
    context.lookups["keys"] = lambda key: 1000 + key
    return context


def _data() -> dict:
    rows = []
    values = [
        (1, 2.0, None, 1.0), (2, 2.0, 5.0, 8.0), (2, 3.0, 7.0, 9.0),
        (3, 2.0, 5.0, 8.0), (3, 2.0, 5.0, 8.0), (4, 1.0, 0.0, 0.0),
        (5, 4.0, 9.0, 3.0), (6, 4.0, 2.0, 12.0),
    ]
    for k, d, v, w in values:
        rows.append({"K": k, "D": d, "V": v, "W": w})
    return {"S": rows}


@pytest.mark.parametrize("first_kind,second_kind", sorted(EXPECTED))
def test_swap_matrix(first_kind, second_kind):
    wf, first, second = _state(first_kind, second_kind)
    swap = Swap(first, second)
    successor = swap.try_apply(wf)
    expected = EXPECTED[(first_kind, second_kind)]
    assert (successor is not None) == expected, (first_kind, second_kind)
    if successor is None:
        return
    report = empirically_equivalent(
        wf, successor, _data(), Executor(context=_context())
    )
    assert report.equivalent, (first_kind, second_kind, report.differences)


@pytest.mark.parametrize(
    "first_kind,second_kind",
    sorted(key for key, allowed in EXPECTED.items() if allowed),
)
def test_swap_matrix_round_trip(first_kind, second_kind):
    """Swapping back restores the original signature."""
    from repro.core.signature import state_signature

    wf, first, second = _state(first_kind, second_kind)
    swapped = Swap(first, second).apply(wf)
    restored = Swap(second, first).apply(swapped)
    assert state_signature(restored) == state_signature(wf)
