"""MER and SPL: packaging, unpackaging, constraints."""

import pytest

from repro.core.activity import CompositeActivity
from repro.core.signature import state_signature
from repro.core.transitions import Merge, Split, Swap, split_fully
from repro.engine import Executor, empirically_equivalent
from repro.exceptions import TransitionError


class TestMerge:
    def test_merge_produces_composite(self, fig1):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        package = merged.node_by_id("4+5")
        assert isinstance(package, CompositeActivity)
        assert [c.id for c in package.components] == ["4", "5"]

    def test_merge_requires_adjacency(self, fig1):
        wf = fig1.workflow
        with pytest.raises(TransitionError, match="not adjacent"):
            Merge(wf.node_by_id("4"), wf.node_by_id("6")).check(wf)

    def test_merge_rejects_binary(self, fig1):
        wf = fig1.workflow
        with pytest.raises(TransitionError, match="not unary"):
            Merge(wf.node_by_id("7"), wf.node_by_id("8")).check(wf)

    def test_merge_preserves_execution(self, fig1):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        report = empirically_equivalent(
            wf, merged, fig1.make_data(seed=5), Executor(context=fig1.context)
        )
        assert report.equivalent

    def test_merged_package_is_opaque_to_swaps(self, fig1):
        """A third activity cannot come between merged activities: the only
        swaps involving the package move it as a whole."""
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        package = merged.node_by_id("4+5")
        gamma = merged.node_by_id("6")
        swap = Swap(package, gamma)
        # The package may or may not be swappable with γ as a unit — but
        # nothing can be inserted inside it.  Here the A2E component is an
        # injective in-place function on a grouper and $2E generates the
        # measure, so the package cannot cross γ (the measure would vanish).
        assert not swap.is_applicable(merged)

    def test_merge_then_merge_flattens(self, fig1):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        merged2 = Merge(
            merged.node_by_id("4+5"), merged.node_by_id("6")
        ).apply(merged)
        package = merged2.node_by_id("4+5+6")
        assert [c.id for c in package.components] == ["4", "5", "6"]


class TestSplit:
    def test_split_restores_pair(self, fig1):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        restored = Split(merged.node_by_id("4+5")).apply(merged)
        assert state_signature(restored) == state_signature(wf)

    def test_split_three_way_package(self, fig1):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        merged = Merge(
            merged.node_by_id("4+5"), merged.node_by_id("6")
        ).apply(merged)
        split_once = Split(merged.node_by_id("4+5+6")).apply(merged)
        ids = {a.id for a in split_once.activities()}
        assert "4" in ids and "5+6" in ids

    def test_split_requires_composite(self, fig1):
        wf = fig1.workflow
        with pytest.raises(TransitionError):
            Split(wf.node_by_id("4")).check(wf)

    def test_split_fully(self, fig1):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        merged = Merge(
            merged.node_by_id("4+5"), merged.node_by_id("6")
        ).apply(merged)
        restored = split_fully(merged)
        assert state_signature(restored) == state_signature(wf)
        assert not any(
            isinstance(a, CompositeActivity) for a in restored.activities()
        )

    def test_split_fully_noop_without_composites(self, fig1):
        wf = fig1.workflow
        assert split_fully(wf) is wf
