"""Enumeration well-formedness on generated workloads."""

import pytest

from repro.core.transitions import (
    Distribute,
    Factorize,
    Swap,
    candidate_transitions,
    homologous,
)
from repro.workloads import generate_workload


@pytest.mark.parametrize("seed", range(5))
class TestCandidateWellFormedness:
    def test_candidates_reference_state_nodes(self, seed):
        workload = generate_workload("small", seed=seed)
        wf = workload.workflow
        for transition in candidate_transitions(wf):
            for node in _referenced(transition):
                assert node in wf

    def test_swap_candidates_are_adjacent(self, seed):
        workload = generate_workload("small", seed=seed)
        wf = workload.workflow
        for transition in candidate_transitions(wf):
            if isinstance(transition, Swap):
                assert wf.consumers(transition.first) == [transition.second]

    def test_factorize_candidates_are_homologous(self, seed):
        workload = generate_workload("small", seed=seed)
        wf = workload.workflow
        for transition in candidate_transitions(wf):
            if isinstance(transition, Factorize):
                assert homologous(wf, transition.first, transition.second)

    def test_distribute_candidates_follow_their_binary(self, seed):
        workload = generate_workload("small", seed=seed)
        wf = workload.workflow
        for transition in candidate_transitions(wf):
            if isinstance(transition, Distribute):
                assert wf.consumers(transition.binary) == [transition.activity]

    def test_enumeration_is_deterministic(self, seed):
        workload = generate_workload("small", seed=seed)
        first = [t.describe() for t in candidate_transitions(workload.workflow)]
        second = [t.describe() for t in candidate_transitions(workload.workflow)]
        assert first == second


def _referenced(transition):
    if isinstance(transition, Swap):
        return (transition.first, transition.second)
    if isinstance(transition, Factorize):
        return (transition.binary, transition.first, transition.second)
    if isinstance(transition, Distribute):
        return (transition.binary, transition.activity)
    return ()
