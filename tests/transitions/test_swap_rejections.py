"""Fig. 5 / Fig. 6 micro-states: the paper's two swap-rejection cases.

Both conditions surface as schema-propagation failures in this library
(states are validated by regenerating all schemata from the sources), so
the tests assert that ``is_applicable`` is False and that ``apply`` raises
with a diagnostic.
"""

import pytest

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.transitions import Swap
from repro.core.workflow import ETLWorkflow
from repro.exceptions import TransitionError
from repro.templates import builtin as t


def _chain(*nodes):
    wf = ETLWorkflow()
    for node in nodes:
        wf.add_node(node)
    for provider, consumer in zip(nodes, nodes[1:]):
        wf.add_edge(provider, consumer)
    wf.validate()
    wf.propagate_schemas()
    return wf


def fig5_state():
    """src(DCOST) -> $2E(DCOST->ECOST) -> σ(ECOST) -> dw."""
    src = RecordSet("1", "S", Schema(["PKEY", "DCOST"]), RecordSetKind.SOURCE, 10)
    dollars = Activity(
        "2",
        t.FUNCTION_APPLY,
        {"function": "dollar_to_euro", "inputs": ("DCOST",), "output": "ECOST"},
        name="$2E",
    )
    sigma = Activity(
        "3",
        t.SELECTION,
        {"attr": "ECOST", "op": ">=", "value": 100.0},
        selectivity=0.5,
        name="σ(ECOST)",
    )
    dw = RecordSet("4", "DW", Schema(["PKEY", "ECOST"]), RecordSetKind.TARGET)
    return _chain(src, dollars, sigma, dw), dollars, sigma


def fig6_state():
    """src(A,D) -> σ(D) -> πout(D) -> dw(A)."""
    src = RecordSet("1", "S", Schema(["A", "D"]), RecordSetKind.SOURCE, 10)
    sigma = Activity(
        "2",
        t.SELECTION,
        {"attr": "D", "op": ">=", "value": 1.0},
        selectivity=0.5,
        name="σ(D)",
    )
    projection = Activity("3", t.PROJECTION, {"attrs": ("D",)}, name="PIout(D)")
    dw = RecordSet("4", "DW", Schema(["A"]), RecordSetKind.TARGET)
    return _chain(src, sigma, projection, dw), sigma, projection


class TestFig5Condition3:
    """σ(€) may not be pushed before the $2E transformation."""

    def test_rejected(self):
        wf, dollars, sigma = fig5_state()
        assert not Swap(dollars, sigma).is_applicable(wf)

    def test_apply_raises_with_diagnostic(self):
        wf, dollars, sigma = fig5_state()
        with pytest.raises(TransitionError, match="invalid state"):
            Swap(dollars, sigma).apply(wf)

    def test_guard_depends_on_naming(self):
        """With distinct reference names the guard fires; an (incorrectly)
        shared name would not trip condition (3) — which is exactly why the
        naming principle of section 3.1 exists.  Here we verify the sound
        behaviour: distinct names block the swap."""
        wf, dollars, sigma = fig5_state()
        assert sigma.functionality.as_set == {"ECOST"}
        assert dollars.generated.as_set == {"ECOST"}


class TestFig6Condition4:
    """A projected-out attribute may not be demanded downstream."""

    def test_rejected(self):
        wf, sigma, projection = fig6_state()
        assert not Swap(sigma, projection).is_applicable(wf)

    def test_apply_raises(self):
        wf, sigma, projection = fig6_state()
        with pytest.raises(TransitionError):
            Swap(sigma, projection).apply(wf)

    def test_projection_swaps_with_independent_activity(self):
        """πout(D) freely swaps past a filter that does not touch D."""
        src = RecordSet("1", "S", Schema(["A", "D"]), RecordSetKind.SOURCE, 10)
        nn = Activity("2", t.NOT_NULL, {"attr": "A"}, selectivity=0.9)
        projection = Activity("3", t.PROJECTION, {"attrs": ("D",)})
        dw = RecordSet("4", "DW", Schema(["A"]), RecordSetKind.TARGET)
        wf = _chain(src, nn, projection, dw)
        assert Swap(nn, projection).is_applicable(wf)


class TestSemanticGuard:
    """The conservative strengthening documented in DESIGN.md."""

    def _state_with(self, first, second, attrs=("K", "D", "V")):
        src = RecordSet("1", "S", Schema(attrs), RecordSetKind.SOURCE, 10)
        dw_attrs = self._final_schema(attrs, [first, second])
        dw = RecordSet("4", "DW", Schema(dw_attrs), RecordSetKind.TARGET)
        return _chain(src, first, second, dw)

    @staticmethod
    def _final_schema(attrs, activities):
        schema = Schema(attrs)
        for activity in activities:
            schema = activity.derive_output((schema,))
        return schema.attrs

    def _gamma(self, activity_id="3"):
        return Activity(
            activity_id,
            t.AGGREGATION,
            {"group_by": ("K", "D"), "measure": "V", "agg": "sum", "output": "VM"},
            selectivity=0.3,
        )

    def _in_place(self, activity_id, attr="D", injective=True):
        return Activity(
            activity_id,
            t.FUNCTION_APPLY,
            {
                "function": "shift_up",
                "inputs": (attr,),
                "output": attr,
                "injective": injective,
            },
        )

    def test_filter_on_grouper_crosses_aggregation(self):
        sigma = Activity(
            "2", t.SELECTION, {"attr": "D", "op": ">=", "value": 1.0}, selectivity=0.5
        )
        wf = self._state_with(sigma, self._gamma("3"))
        assert Swap(sigma, self._find(wf, "3")).is_applicable(wf)

    def test_filter_on_measure_cannot_cross_aggregation(self):
        sigma = Activity(
            "2", t.SELECTION, {"attr": "V", "op": ">=", "value": 1.0}, selectivity=0.5
        )
        wf = self._state_with(sigma, self._gamma("3"))
        assert not Swap(sigma, self._find(wf, "3")).is_applicable(wf)

    def test_injective_in_place_function_crosses_aggregation(self):
        func = self._in_place("2", "D", injective=True)
        wf = self._state_with(func, self._gamma("3"))
        assert Swap(func, self._find(wf, "3")).is_applicable(wf)

    def test_non_injective_in_place_function_blocked(self):
        func = self._in_place("2", "D", injective=False)
        wf = self._state_with(func, self._gamma("3"))
        assert not Swap(func, self._find(wf, "3")).is_applicable(wf)

    def test_two_aggregations_never_swap(self):
        first = Activity(
            "2",
            t.AGGREGATION,
            {"group_by": ("K", "D"), "measure": "V", "agg": "sum", "output": "VM"},
            selectivity=0.5,
        )
        second = Activity(
            "3",
            t.AGGREGATION,
            {"group_by": ("K", "D"), "measure": "VM", "agg": "max", "output": "VMM"},
            selectivity=0.5,
        )
        wf = self._state_with(first, second)
        with pytest.raises(TransitionError, match="never swap"):
            Swap(first, second).check(wf)

    def test_in_place_pair_on_same_attr_blocked(self):
        first = self._in_place("2", "D")
        second = self._in_place("3", "D")
        wf = self._state_with(first, second)
        assert not Swap(first, second).is_applicable(wf)

    def test_in_place_pair_on_different_attrs_allowed(self):
        first = self._in_place("2", "D")
        second = self._in_place("3", "V")
        wf = self._state_with(first, second)
        assert Swap(first, second).is_applicable(wf)

    def test_filter_and_in_place_on_same_attr_blocked(self):
        sigma = Activity(
            "2", t.SELECTION, {"attr": "D", "op": ">=", "value": 1.0}, selectivity=0.5
        )
        func = self._in_place("3", "D")
        wf = self._state_with(sigma, func)
        assert not Swap(sigma, func).is_applicable(wf)

    @staticmethod
    def _find(workflow, node_id):
        return workflow.node_by_id(node_id)


class TestCustomTemplateGuard:
    """The semantic guard must recognize *custom* in-place templates too
    (regression: it used to key off the builtin template name)."""

    @staticmethod
    def _custom_in_place_template():
        from repro.core.schema import EMPTY_SCHEMA
        from repro.templates.base import (
            ActivityKind,
            ActivityTemplate,
            CostShape,
            SchemaPlan,
        )

        def plan(params):
            return SchemaPlan(
                functionality_per_input=(Schema([params["attr"]]),),
                generated=EMPTY_SCHEMA,
                projected_out=EMPTY_SCHEMA,
            )

        return ActivityTemplate(
            name="custom_scrubber",
            kind=ActivityKind.FUNCTION,
            arity=1,
            cost_shape=CostShape.LINEAR,
            param_names=("attr",),
            planner=plan,
        )

    def test_filter_blocked_against_custom_in_place(self):
        template = self._custom_in_place_template()
        src = RecordSet("1", "S", Schema(["A", "B"]), RecordSetKind.SOURCE, 10)
        scrub = Activity("2", template, {"attr": "A"})
        nn = Activity("3", t.NOT_NULL, {"attr": "A"}, selectivity=0.9)
        dw = RecordSet("4", "DW", Schema(["A", "B"]), RecordSetKind.TARGET)
        wf = _chain(src, scrub, nn, dw)
        assert not Swap(scrub, nn).is_applicable(wf)

    def test_filter_allowed_on_disjoint_attr(self):
        template = self._custom_in_place_template()
        src = RecordSet("1", "S", Schema(["A", "B"]), RecordSetKind.SOURCE, 10)
        scrub = Activity("2", template, {"attr": "A"})
        nn = Activity("3", t.NOT_NULL, {"attr": "B"}, selectivity=0.9)
        dw = RecordSet("4", "DW", Schema(["A", "B"]), RecordSetKind.TARGET)
        wf = _chain(src, scrub, nn, dw)
        assert Swap(scrub, nn).is_applicable(wf)
