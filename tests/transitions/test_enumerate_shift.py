"""Transition enumeration and the ShiftFrw/ShiftBkw helpers."""

from repro.core.transitions import (
    Distribute,
    Factorize,
    Swap,
    candidate_transitions,
    shift_backward,
    shift_forward,
    successor_states,
)


class TestEnumeration:
    def test_fig1_candidates(self, fig1):
        wf = fig1.workflow
        candidates = list(candidate_transitions(wf))
        kinds = [type(c) for c in candidates]
        # Two adjacent unary pairs inside the {4,5,6} group, and the
        # distributable σ(8) after the union.
        assert kinds.count(Swap) == 2
        assert kinds.count(Distribute) == 1
        assert kinds.count(Factorize) == 0

    def test_fig4_initial_candidates(self, fig4):
        states, _ = fig4
        candidates = list(candidate_transitions(states["initial"]))
        # SK/SK are homologous and adjacent to the union; σ follows it.
        assert any(isinstance(c, Factorize) for c in candidates)
        assert any(isinstance(c, Distribute) for c in candidates)

    def test_successor_states_are_valid(self, fig1):
        for transition, successor in successor_states(fig1.workflow):
            successor.validate()
            successor.propagate_schemas()

    def test_successors_deterministic_order(self, fig1):
        first = [t.describe() for t, _ in successor_states(fig1.workflow)]
        second = [t.describe() for t, _ in successor_states(fig1.workflow)]
        assert first == second

    def test_inapplicable_candidates_filtered(self, fig1):
        wf = fig1.workflow
        candidates = [t.describe() for t in candidate_transitions(wf)]
        applied = [t.describe() for t, _ in successor_states(wf)]
        # SWA(5,6) survives; SWA(4,5) is legal too (independent attrs).
        assert set(applied) <= set(candidates)


class TestShift:
    def test_shift_forward_already_adjacent(self, fig1):
        wf = fig1.workflow
        gamma, union = wf.node_by_id("6"), wf.node_by_id("7")
        result = shift_forward(wf, gamma, union)
        assert result is not None
        assert result.intermediates == []

    def test_shift_forward_moves_activity(self, fig1):
        wf = fig1.workflow
        dollars, union = wf.node_by_id("4"), wf.node_by_id("7")
        # $2E cannot reach the union: the aggregation needs ECOST.
        assert shift_forward(wf, dollars, union) is None

    def test_shift_forward_convert_reaches_union(self, two_branch):
        wf = two_branch.workflow
        convert, union = wf.node_by_id("3"), wf.node_by_id("7")
        result = shift_forward(wf, convert, union)
        assert result is not None
        assert len(result.intermediates) == 1  # swapped past σ(V2)
        assert result.workflow.consumers(convert) == [union]

    def test_shift_forward_blocked_by_consumed_attr(self, two_branch):
        """NN(V1) cannot pass the convert that consumes V1."""
        wf = two_branch.workflow
        nn, union = wf.node_by_id("6"), wf.node_by_id("7")
        assert shift_forward(wf, nn, union) is None

    def test_shift_backward_to_union(self, fig1):
        wf = fig1.workflow
        sigma, union = wf.node_by_id("8"), wf.node_by_id("7")
        result = shift_backward(wf, sigma, union)
        assert result is not None
        assert result.intermediates == []
        assert result.workflow.providers(sigma) == [union]

    def test_shift_backward_blocked(self, fig1):
        wf = fig1.workflow
        # Distribute σ first so the clone sits after γ in branch 2.
        distributed = Distribute(wf.node_by_id("7"), wf.node_by_id("8")).apply(wf)
        clone = distributed.node_by_id("8_2")
        # It cannot be pulled back before the aggregation's branch start
        # ($2E): the aggregation generates its functionality attribute.
        dollars = distributed.node_by_id("4")
        assert shift_backward(distributed, clone, dollars) is None

    def test_shift_intermediates_are_valid_states(self, two_branch):
        wf = two_branch.workflow
        convert, union = wf.node_by_id("3"), wf.node_by_id("7")
        result = shift_forward(wf, convert, union)
        for intermediate in result.intermediates:
            intermediate.validate()
            intermediate.propagate_schemas()
