"""Reject-stream collection and EXPLAIN rendering."""

import pytest

from repro.core.transitions import Merge
from repro.io import explain


class TestRejects:
    def test_rejects_collected_per_filter(self, fig1, fig1_executor):
        data = fig1.make_data(seed=1, n1=100, n2=100)
        result = fig1_executor.run(
            fig1.workflow, data, collect_rejects=True
        )
        # NN(3) drops the null-cost rows; σ(8) drops below-threshold rows.
        assert set(result.rejects) == {"3", "8"}
        for row in result.rejects["3"]:
            assert row["ECOST_M"] is None
        for row in result.rejects["8"]:
            assert row["ECOST_M"] is None or row["ECOST_M"] < 100.0

    def test_rejects_empty_when_disabled(self, fig1, fig1_executor):
        result = fig1_executor.run(fig1.workflow, fig1.make_data(seed=1))
        assert result.rejects == {}

    def test_reject_counts_balance(self, fig1, fig1_executor):
        data = fig1.make_data(seed=2, n1=80, n2=80)
        result = fig1_executor.run(fig1.workflow, data, collect_rejects=True)
        stats = result.stats
        for activity_id, dropped in result.rejects.items():
            processed = stats.rows_processed[activity_id]
            produced = stats.rows_output[activity_id]
            assert len(dropped) == processed - produced

    def test_all_filter_composite_reports_rejects(self, fig1, fig1_executor):
        """A package of two filters reports one combined reject stream."""
        wf = fig1.workflow
        # Merge σ(8) with nothing adjacent that's a filter; instead merge
        # the branch-1 NN(3) after distributing σ.
        from repro.core.transitions import Distribute

        distributed = Distribute(wf.node_by_id("7"), wf.node_by_id("8")).apply(wf)
        merged = Merge(
            distributed.node_by_id("3"), distributed.node_by_id("8_1")
        ).apply(distributed)
        data = fig1.make_data(seed=3, n1=60, n2=60)
        result = fig1_executor.run(merged, data, collect_rejects=True)
        assert "3+8_1" in result.rejects

    def test_mixed_composite_not_reported(self, fig1, fig1_executor):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        data = fig1.make_data(seed=3, n1=40, n2=40)
        result = fig1_executor.run(merged, data, collect_rejects=True)
        assert "4+5" not in result.rejects


class TestExplain:
    def test_lists_all_nodes(self, fig1):
        text = explain(fig1.workflow)
        for node in fig1.workflow.nodes():
            assert f"[{node.id}]" in text

    def test_shows_total(self, fig1, model):
        from repro.core.cost import estimate

        text = explain(fig1.workflow, model)
        expected = estimate(fig1.workflow, model).total
        assert f"{expected:,.0f}" in text

    def test_percentages_identify_dominant_activity(self, fig1):
        text = explain(fig1.workflow)
        gamma_line = next(
            line for line in text.splitlines() if "γSUM" in line
        )
        assert gamma_line.rstrip().endswith("76")

    def test_default_model(self, fig1):
        assert explain(fig1.workflow)  # runs without an explicit model
