"""Executor: running workflows end-to-end on data, stats, error handling."""

import pytest

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.transitions import Merge
from repro.core.workflow import ETLWorkflow
from repro.engine import Executor, as_multiset, freeze_row
from repro.exceptions import ExecutionError
from repro.templates import builtin as t


class TestFig1Execution:
    def test_targets_populated(self, fig1, fig1_executor):
        result = fig1_executor.run(fig1.workflow, fig1.make_data(seed=1))
        assert set(result.targets) == {"DW"}
        assert len(result.targets["DW"]) > 0

    def test_target_rows_match_schema(self, fig1, fig1_executor):
        result = fig1_executor.run(fig1.workflow, fig1.make_data(seed=1))
        for row in result.targets["DW"]:
            assert set(row) == {"PKEY", "SOURCE", "DATE", "ECOST_M"}

    def test_threshold_enforced(self, fig1, fig1_executor):
        result = fig1_executor.run(fig1.workflow, fig1.make_data(seed=1))
        assert all(row["ECOST_M"] >= 100.0 for row in result.targets["DW"])

    def test_stats_counts_rows(self, fig1, fig1_executor):
        data = fig1.make_data(seed=1, n1=50, n2=100)
        result = fig1_executor.run(fig1.workflow, data)
        stats = result.stats
        assert stats.rows_processed["3"] == 50   # NN sees all of PARTS1
        assert stats.rows_processed["4"] == 100  # $2E sees all of PARTS2
        assert stats.total_rows_processed > 0
        assert stats.rows_output["3"] <= 50

    def test_missing_source_data(self, fig1, fig1_executor):
        with pytest.raises(ExecutionError, match="no data supplied"):
            fig1_executor.run(fig1.workflow, {"PARTS1": []})

    def test_schema_checked_at_boundary(self, fig1, fig1_executor):
        bad = {"PARTS1": [{"WRONG": 1}], "PARTS2": []}
        with pytest.raises(ExecutionError, match="does not match schema"):
            fig1_executor.run(fig1.workflow, bad)

    def test_schema_check_can_be_disabled_for_matching_rows(self, fig1, fig1_executor):
        data = fig1.make_data(seed=1, n1=5, n2=5)
        result = fig1_executor.run(fig1.workflow, data, check_schemas=False)
        assert "DW" in result.targets


class TestCompositeExecution:
    def test_merged_activities_execute_in_order(self, fig1, fig1_executor):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        data = fig1.make_data(seed=2)
        plain = fig1_executor.run(wf, data)
        packaged = fig1_executor.run(merged, data)
        assert as_multiset(plain.targets["DW"]) == as_multiset(
            packaged.targets["DW"]
        )

    def test_component_stats_recorded(self, fig1, fig1_executor):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        result = fig1_executor.run(merged, fig1.make_data(seed=2, n1=10, n2=20))
        # Components are recorded under their own ids.
        assert result.stats.rows_processed["4"] == 20
        assert result.stats.rows_processed["5"] == 20


class TestIntermediateRecordsets:
    def test_staging_table_passes_data_through(self):
        wf = ETLWorkflow()
        schema = Schema(["A"])
        src = wf.add_node(RecordSet("1", "S", schema, RecordSetKind.SOURCE, 2))
        nn = wf.add_node(Activity("2", t.NOT_NULL, {"attr": "A"}))
        stage = wf.add_node(RecordSet("3", "STAGE", schema))
        nn2 = wf.add_node(Activity("4", t.NOT_NULL, {"attr": "A"}))
        dw = wf.add_node(RecordSet("5", "DW", schema, RecordSetKind.TARGET))
        wf.add_edge(src, nn)
        wf.add_edge(nn, stage)
        wf.add_edge(stage, nn2)
        wf.add_edge(nn2, dw)
        result = Executor().run(wf, {"S": [{"A": 1}, {"A": None}]})
        assert result.targets["DW"] == [{"A": 1}]


class TestRowHelpers:
    def test_freeze_row_is_order_insensitive(self):
        assert freeze_row({"A": 1, "B": 2}) == freeze_row({"B": 2, "A": 1})

    def test_freeze_row_unhashable(self):
        with pytest.raises(ExecutionError, match="unhashable"):
            freeze_row({"A": [1, 2]})

    def test_as_multiset_counts_duplicates(self):
        bag = as_multiset([{"A": 1}, {"A": 1}])
        assert bag[freeze_row({"A": 1})] == 2
