"""The public :class:`Batch` type, chunking helpers, and columnar spill.

Covers the API-surface contract of the columnar redesign: dual row/column
storage with lazy conversion both ways, the ``iter_batches`` / ``rebatch``
helpers that accept either representation and always yield ``Batch``,
the pickle-framed columnar spill format round-trip, and the one-warning
deprecation shims for the old row-list helper spellings.
"""

import warnings

import pytest

from repro.engine import (
    Batch,
    ExecutionBudget,
    Executor,
    ResidentLedger,
    SpillableRowBuffer,
    iter_batches,
    rebatch,
)
from repro.exceptions import ExecutionError


ROWS = [{"A": i, "B": str(i)} for i in range(5)]


class TestBatchConstruction:
    def test_from_rows_round_trip(self):
        batch = Batch.from_rows(ROWS)
        assert batch.num_rows == len(batch) == 5
        assert batch.to_rows() == ROWS
        assert list(batch.rows()) == ROWS
        assert list(batch) == ROWS

    def test_from_rows_keeps_row_objects(self):
        batch = Batch.from_rows(ROWS)
        assert batch.to_rows()[0] is ROWS[0]
        assert batch.row_at(3) is ROWS[3]

    def test_from_rows_on_a_batch_is_identity(self):
        batch = Batch.from_rows(ROWS)
        assert Batch.from_rows(batch) is batch

    def test_from_columns_round_trip(self):
        columns = {"A": [0, 1, 2], "B": ["x", "y", "z"]}
        batch = Batch.from_columns(columns, 3)
        assert batch.num_rows == 3
        assert batch.columns is columns  # not copied
        assert batch.to_rows() == [
            {"A": 0, "B": "x"},
            {"A": 1, "B": "y"},
            {"A": 2, "B": "z"},
        ]
        assert batch.row_at(1) == {"A": 1, "B": "y"}
        assert batch.schema == ("A", "B")

    def test_lazy_column_build_from_rows(self):
        batch = Batch.from_rows(ROWS)
        columns = batch.columns
        assert columns["A"] == [0, 1, 2, 3, 4]
        assert columns["B"] == ["0", "1", "2", "3", "4"]
        assert batch.columns_or_none() is columns

    def test_ragged_rows_have_no_columns(self):
        ragged = Batch.from_rows([{"A": 1}, {"A": 2, "B": 3}])
        assert ragged.columns_or_none() is None
        with pytest.raises(ExecutionError, match="differing attribute"):
            _ = ragged.columns
        # The row adapter still works bit-identically.
        assert ragged.to_rows() == [{"A": 1}, {"A": 2, "B": 3}]

    def test_missing_attribute_has_no_columns(self):
        ragged = Batch.from_rows([{"A": 1, "B": 2}, {"A": 3, "C": 4}])
        assert ragged.columns_or_none() is None

    def test_empty_and_bool(self):
        assert not Batch.from_rows([])
        assert Batch.from_rows([{"A": 1}])
        assert Batch.from_columns({}, 0).num_rows == 0


class TestBatchSlicing:
    def test_slice_and_select_columnar(self):
        batch = Batch.from_columns({"A": list(range(6))}, 6)
        assert batch.slice(2, 4).to_rows() == [{"A": 2}, {"A": 3}]
        assert batch.select([0, 5]).to_rows() == [{"A": 0}, {"A": 5}]

    def test_slice_row_backed(self):
        batch = Batch.from_rows(ROWS)
        assert batch.slice(1, 3).to_rows() == ROWS[1:3]

    def test_concat_mixed_layouts(self):
        left = Batch.from_columns({"A": [1, 2]}, 2)
        right = Batch.from_rows([{"A": 3}])
        merged = Batch.concat([left, right])
        assert merged.to_rows() == [{"A": 1}, {"A": 2}, {"A": 3}]


class TestChunkingHelpers:
    def test_iter_batches_accepts_rows_and_batches(self):
        for source in (ROWS, Batch.from_rows(ROWS)):
            chunks = list(iter_batches(source, 2))
            assert all(isinstance(chunk, Batch) for chunk in chunks)
            assert [chunk.num_rows for chunk in chunks] == [2, 2, 1]
            assert [
                row for chunk in chunks for row in chunk.to_rows()
            ] == ROWS

    def test_rebatch_accepts_iterables_and_batches(self):
        for source in (iter(ROWS), Batch.from_rows(ROWS)):
            chunks = list(rebatch(source, 3))
            assert all(isinstance(chunk, Batch) for chunk in chunks)
            assert [chunk.num_rows for chunk in chunks] == [3, 2]

    def test_row_helper_shims_warn_once(self):
        import repro.engine.batches as batches_module

        batches_module._warned_row_helpers.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            helper = batches_module.iter_row_batches
            chunks = list(helper(ROWS, 2))
        assert [len(chunk) for chunk in chunks] == [2, 2, 1]
        assert all(isinstance(chunk, list) for chunk in chunks)
        shim_warnings = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(shim_warnings) == 1
        with warnings.catch_warnings(record=True) as again:
            warnings.simplefilter("always")
            _ = batches_module.iter_row_batches
        assert not again  # one warning per process, not per import

    def test_unknown_attribute_still_raises(self):
        import repro.engine.batches as batches_module

        with pytest.raises(AttributeError):
            _ = batches_module.no_such_helper


class TestColumnarSpill:
    def _buffer(self, tmp_path, limit=4):
        ledger = ResidentLedger(limit=limit)
        return ledger, SpillableRowBuffer(
            ledger, "node", spill_dir=str(tmp_path)
        )

    def test_round_trip_preserves_order(self, tmp_path):
        _, buffer = self._buffer(tmp_path)
        rows = [{"A": i, "B": i * i} for i in range(20)]
        for start in range(0, 20, 5):
            buffer.extend(Batch.from_rows(rows[start : start + 5]))
        assert buffer.spilled
        assert list(buffer.rows()) == rows
        buffer.close()

    def test_spill_frames_are_columnar(self, tmp_path):
        import pickle

        _, buffer = self._buffer(tmp_path)
        clean = [{"A": i} for i in range(10)]
        for start in range(0, 10, 5):
            buffer.extend(Batch.from_rows(clean[start : start + 5]))
        buffer._flush()
        ragged = Batch.from_rows([{"A": 1}, {"B": 2}])
        buffer.extend(ragged)
        buffer._flush()
        kinds = []
        with open(buffer._spill_path, "rb") as handle:
            while True:
                try:
                    frame = pickle.load(handle)
                except EOFError:
                    break
                kinds.append(frame[0])
        assert "c" in kinds  # clean pieces spill as column blocks
        assert "r" in kinds  # ragged pieces fall back to row frames
        assert list(buffer.rows()) == clean + [{"A": 1}, {"B": 2}]
        buffer.close()

    def test_rebatching_yields_batches(self, tmp_path):
        _, buffer = self._buffer(tmp_path)
        rows = [{"A": i} for i in range(11)]
        for start in range(0, 11, 3):
            buffer.extend(rows[start : start + 3])
        chunks = list(buffer.batches(4))
        assert all(isinstance(chunk, Batch) for chunk in chunks)
        assert [chunk.num_rows for chunk in chunks] == [4, 4, 3]
        assert [
            row for chunk in chunks for row in chunk.to_rows()
        ] == rows
        buffer.close()

    def test_spill_under_budget_via_engine(self, tmp_path):
        # End-to-end: a streaming run with a tight resident-row budget
        # spills through the columnar format and still matches the
        # materializing run.
        from repro.workloads import generate_workload

        workload = generate_workload("small", seed=3)
        data = workload.make_data(3)
        executor = Executor(context=workload.context)
        base = executor.run(workload.workflow, data)
        streamed = executor.run(
            workload.workflow,
            data,
            budget=ExecutionBudget(
                batch_size=8,
                max_resident_rows=32,
                spill_dir=str(tmp_path),
            ),
        )
        assert streamed.targets == base.targets
        assert streamed.streaming is not None
        assert streamed.streaming.peak_resident_rows <= 32
