"""The regularized executor ``run()`` facade and the public surface.

All three executors accept the same ``(workflow, data, *, budget=...,
recorder=..., ...)`` keyword shape; the historical positional forms keep
working but warn once per method, and clashing positional + keyword
spellings raise like a normal Python signature would.
"""

import warnings

import pytest

import repro.engine.executor as executor_module
from repro.engine import (
    CheckpointingExecutor,
    CheckpointStore,
    ExecutionBudget,
    Executor,
    TracingExecutor,
)
from repro.obs.telemetry import Recorder
from repro.workloads import generate_workload


@pytest.fixture
def tiny():
    workload = generate_workload("tiny", seed=7)
    return workload, workload.make_data(7, n=20)


def _executor(workload, cls=Executor):
    return cls(context=workload.context)


class TestKeywordShape:
    def test_all_executors_share_the_keyword_shape(self, tiny):
        workload, data = tiny
        budget = ExecutionBudget(batch_size=4)
        for cls in (Executor, TracingExecutor, CheckpointingExecutor):
            result = _executor(workload, cls).run(
                workload.workflow, data, check_schemas=True, budget=budget
            )
            assert result.targets

    def test_recorder_keyword_routes_telemetry(self, tiny):
        workload, data = tiny
        recorder = Recorder()
        _executor(workload, TracingExecutor).run(
            workload.workflow,
            data,
            budget=ExecutionBudget(batch_size=8),
            recorder=recorder,
        )
        names = {event.get("name") for event in recorder.events()}
        assert "engine.run" in names

    def test_recorder_keyword_on_checkpointing_run(self, tiny):
        workload, data = tiny
        recorder = Recorder()
        result = _executor(workload, CheckpointingExecutor).run(
            workload.workflow,
            data,
            checkpoints=CheckpointStore(),
            recorder=recorder,
        )
        assert result.targets


class TestLegacyPositionalForms:
    def test_positional_run_warns_once_and_still_works(self, tiny):
        workload, data = tiny
        executor = _executor(workload)
        executor_module._warned_positional.discard("Executor.run")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = executor.run(workload.workflow, data, True, True)
            repeat = executor.run(workload.workflow, data, True, True)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "check_schemas=" in str(deprecations[0].message)
        modern = executor.run(
            workload.workflow, data, check_schemas=True, collect_rejects=True
        )
        assert legacy.targets == repeat.targets == modern.targets
        assert legacy.rejects == modern.rejects

    def test_positional_budget_still_streams(self, tiny):
        workload, data = tiny
        executor = _executor(workload)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = executor.run(
                workload.workflow,
                data,
                True,
                False,
                ExecutionBudget(batch_size=4),
            )
        assert result.streaming is not None
        assert result.streaming.batch_size == 4

    def test_checkpointing_legacy_positional_order(self, tiny):
        workload, data = tiny
        executor = _executor(workload, CheckpointingExecutor)
        store = CheckpointStore()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # Historical order: check_schemas, checkpoints, ...
            result = executor.run(workload.workflow, data, True, store)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert store.completed_nodes
        assert result.targets

    def test_positional_and_keyword_clash_raises(self, tiny):
        workload, data = tiny
        executor = _executor(workload)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="multiple values"):
                executor.run(
                    workload.workflow, data, True, check_schemas=False
                )

    def test_too_many_positionals_raise(self, tiny):
        workload, data = tiny
        executor = _executor(workload)
        with pytest.raises(TypeError, match="positional"):
            executor.run(workload.workflow, data, True, False, None, "extra")


class TestPublicSurface:
    def test_all_names_resolve(self):
        import repro.engine as engine

        for name in engine.__all__:
            assert getattr(engine, name) is not None

    def test_core_api_names_present(self):
        import repro.engine as engine

        for name in (
            "Batch",
            "ExecutionBudget",
            "Executor",
            "ExecutionResult",
            "ExecutionStats",
            "TracingExecutor",
            "CheckpointingExecutor",
            "iter_batches",
            "rebatch",
        ):
            assert name in engine.__all__
