"""Spill-file cleanup guarantees for :class:`SpillableRowBuffer`.

The regression contract: a streaming run that fails *after* a buffer has
spilled to disk must not leak the spill file — the run path closes every
buffer in a shielded ``finally``, and direct users get the same guarantee
from the context-manager / ``__del__`` forms.
"""

from __future__ import annotations

import gc
import os

import pytest

from repro.engine import (
    ExecutionBudget,
    Executor,
    ResidentLedger,
    SpillableRowBuffer,
)
from repro.workloads.scenarios import dual_target_scenario


def _spill_files(path) -> list[str]:
    return sorted(
        name for name in os.listdir(path) if name.endswith(".spill")
    )


def _tight_budget(tmp_path) -> ExecutionBudget:
    return ExecutionBudget(
        batch_size=16, max_resident_rows=32, spill_dir=str(tmp_path)
    )


class TestRunPathCleanup:
    def test_clean_run_spills_and_removes_files(self, tmp_path):
        scenario = dual_target_scenario()
        executor = Executor(context=scenario.context)
        result = executor.run(
            scenario.workflow,
            scenario.make_data(0, n=400),
            budget=_tight_budget(tmp_path),
        )
        assert result.streaming.spilled_rows > 0
        assert _spill_files(tmp_path) == []

    def test_failure_after_spill_removes_files(self, tmp_path):
        # The fan-out buffer spills while draining the source; a custom
        # selection operator then blows up mid-pipeline.  The error must
        # propagate AND the spill file must be gone.
        scenario = dual_target_scenario()
        executor = Executor(context=scenario.context)

        def bomb(component, inputs, context):
            raise RuntimeError("injected failure after spill")

        executor.registry.register("selection", bomb, replace=True)
        with pytest.raises(RuntimeError, match="injected failure"):
            executor.run(
                scenario.workflow,
                scenario.make_data(0, n=400),
                budget=_tight_budget(tmp_path),
            )
        assert _spill_files(tmp_path) == []

    def test_one_failing_close_does_not_leak_the_others(self, tmp_path):
        # Shielding: even if the first buffer's close() raises, buffers
        # registered after it still get closed (and their files removed).
        ledger = ResidentLedger(limit=4)
        first = SpillableRowBuffer(ledger, "first", str(tmp_path))
        second = SpillableRowBuffer(ledger, "second", str(tmp_path))
        rows = [{"A": i} for i in range(32)]
        first.extend(rows)
        first.extend(rows)  # push past the limit -> spill
        second.extend(rows)
        second.extend(rows)
        assert first.spilled and second.spilled
        assert len(_spill_files(tmp_path)) == 2

        def exploding_close():
            raise OSError("disk went away")

        first.close = exploding_close
        for buffer in (first, second):
            try:
                buffer.close()
            except Exception:
                pass
        assert len(_spill_files(tmp_path)) == 1  # first leaked, second not


class TestBufferLifecycle:
    def test_context_manager_removes_spill_file(self, tmp_path):
        ledger = ResidentLedger(limit=4)
        rows = [{"A": i} for i in range(32)]
        with SpillableRowBuffer(ledger, "cm", str(tmp_path)) as buffer:
            buffer.extend(rows)
            buffer.extend(rows)
            assert buffer.spilled
            assert len(_spill_files(tmp_path)) == 1
            assert [row["A"] for row in buffer.rows()] == [
                row["A"] for row in rows + rows
            ]
        assert _spill_files(tmp_path) == []
        assert ledger.current == 0

    def test_del_removes_spill_file(self, tmp_path):
        ledger = ResidentLedger(limit=4)
        buffer = SpillableRowBuffer(ledger, "dropped", str(tmp_path))
        buffer.extend([{"A": i} for i in range(32)])
        buffer.extend([{"A": i} for i in range(32)])
        assert buffer.spilled
        assert len(_spill_files(tmp_path)) == 1
        del buffer
        gc.collect()
        assert _spill_files(tmp_path) == []

    def test_close_is_idempotent(self, tmp_path):
        ledger = ResidentLedger(limit=4)
        buffer = SpillableRowBuffer(ledger, "twice", str(tmp_path))
        buffer.extend([{"A": 1}] * 40)
        buffer.close()
        buffer.close()
        assert _spill_files(tmp_path) == []
