"""Engine determinism: identical runs produce identical ordered outputs."""

import pytest

from repro.engine import Executor
from repro.workloads import generate_workload


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_repeat_runs_identical(self, seed):
        workload = generate_workload("tiny", seed=seed)
        executor = Executor(context=workload.context)
        data = workload.make_data(5, n=50)
        first = executor.run(workload.workflow, data)
        second = executor.run(workload.workflow, data)
        # Ordered equality, not just multiset equality.
        assert first.targets == second.targets
        assert first.stats.rows_processed == second.stats.rows_processed

    def test_fresh_executor_identical(self, fig1):
        data = fig1.make_data(seed=9)
        first = Executor(context=fig1.context).run(fig1.workflow, data)
        second = Executor(context=fig1.context).run(fig1.workflow, data)
        assert first.targets == second.targets

    def test_input_data_not_mutated(self, fig1, fig1_executor):
        data = fig1.make_data(seed=9)
        snapshot = {name: [dict(r) for r in rows] for name, rows in data.items()}
        fig1_executor.run(fig1.workflow, data)
        assert data == snapshot
