"""Unit tests for the executable operator semantics."""

import pytest

from repro.core.activity import Activity
from repro.engine.operators import (
    EngineContext,
    OperatorRegistry,
    default_registry,
    default_scalar_functions,
)
from repro.exceptions import ExecutionError
from repro.templates import builtin as t


@pytest.fixture
def ctx():
    context = EngineContext(scalar_functions=default_scalar_functions())
    context.lookups["sk"] = {1: 101, 2: 102}
    context.references["existing"] = frozenset({(1,)})
    return context


@pytest.fixture
def registry():
    return default_registry()


def run(registry, ctx, activity, *flows):
    op = registry.get(activity.template.name)
    return op(activity, tuple(flows), ctx)


class TestFilters:
    def test_selection_keeps_matching(self, registry, ctx):
        sel = Activity("1", t.SELECTION, {"attr": "V", "op": ">=", "value": 5})
        rows = [{"V": 3}, {"V": 5}, {"V": 9}]
        assert run(registry, ctx, sel, rows) == [{"V": 5}, {"V": 9}]

    def test_selection_drops_nulls(self, registry, ctx):
        sel = Activity("1", t.SELECTION, {"attr": "V", "op": "<=", "value": 5})
        assert run(registry, ctx, sel, [{"V": None}, {"V": 1}]) == [{"V": 1}]

    def test_selection_unknown_op(self, registry, ctx):
        sel = Activity("1", t.SELECTION, {"attr": "V", "op": "~", "value": 5})
        with pytest.raises(ExecutionError, match="unknown operator"):
            run(registry, ctx, sel, [{"V": 1}])

    def test_not_null(self, registry, ctx):
        nn = Activity("1", t.NOT_NULL, {"attr": "V"})
        assert run(registry, ctx, nn, [{"V": None}, {"V": 0}]) == [{"V": 0}]

    def test_range_check(self, registry, ctx):
        rc = Activity("1", t.RANGE_CHECK, {"attr": "V", "low": 2, "high": 4})
        rows = [{"V": 1}, {"V": 2}, {"V": 4}, {"V": 5}, {"V": None}]
        assert run(registry, ctx, rc, rows) == [{"V": 2}, {"V": 4}]

    def test_pk_check_rejects_existing_keys(self, registry, ctx):
        pk = Activity(
            "1", t.PK_CHECK, {"key_attrs": ("K",), "reference": "existing"}
        )
        rows = [{"K": 1, "V": "a"}, {"K": 2, "V": "b"}]
        assert run(registry, ctx, pk, rows) == [{"K": 2, "V": "b"}]

    def test_pk_check_unknown_reference(self, registry, ctx):
        pk = Activity("1", t.PK_CHECK, {"key_attrs": ("K",), "reference": "?"})
        with pytest.raises(ExecutionError, match="unknown reference"):
            run(registry, ctx, pk, [{"K": 1}])


class TestFunctions:
    def test_projection_drops_attrs(self, registry, ctx):
        proj = Activity("1", t.PROJECTION, {"attrs": ("B",)})
        assert run(registry, ctx, proj, [{"A": 1, "B": 2}]) == [{"A": 1}]

    def test_function_apply_generates(self, registry, ctx):
        f = Activity(
            "1",
            t.FUNCTION_APPLY,
            {"function": "scale_double", "inputs": ("V",), "output": "W"},
        )
        assert run(registry, ctx, f, [{"V": 3, "K": 1}]) == [{"K": 1, "W": 6}]

    def test_function_apply_keep_inputs(self, registry, ctx):
        f = Activity(
            "1",
            t.FUNCTION_APPLY,
            {
                "function": "scale_double",
                "inputs": ("V",),
                "output": "W",
                "drop_inputs": False,
            },
        )
        assert run(registry, ctx, f, [{"V": 3}]) == [{"V": 3, "W": 6}]

    def test_function_apply_in_place(self, registry, ctx):
        f = Activity(
            "1",
            t.FUNCTION_APPLY,
            {"function": "date_us_to_eu", "inputs": ("DATE",), "output": "DATE"},
        )
        assert run(registry, ctx, f, [{"DATE": "03/15/2005"}]) == [
            {"DATE": "2005-03-15"}
        ]

    def test_unknown_scalar_function(self, registry, ctx):
        f = Activity(
            "1", t.FUNCTION_APPLY, {"function": "?", "inputs": ("V",), "output": "W"}
        )
        with pytest.raises(ExecutionError, match="unknown scalar"):
            run(registry, ctx, f, [{"V": 1}])

    def test_surrogate_key_replaces_key(self, registry, ctx):
        sk = Activity(
            "1", t.SURROGATE_KEY, {"key_attr": "K", "skey_attr": "SK", "lookup": "sk"}
        )
        assert run(registry, ctx, sk, [{"K": 1, "V": 2}]) == [{"V": 2, "SK": 101}]

    def test_surrogate_key_missing_entry(self, registry, ctx):
        sk = Activity(
            "1", t.SURROGATE_KEY, {"key_attr": "K", "skey_attr": "SK", "lookup": "sk"}
        )
        with pytest.raises(ExecutionError, match="no surrogate"):
            run(registry, ctx, sk, [{"K": 99}])

    def test_surrogate_key_callable_lookup(self, registry, ctx):
        ctx.lookups["fn"] = lambda key: key + 1000
        sk = Activity(
            "1", t.SURROGATE_KEY, {"key_attr": "K", "skey_attr": "SK", "lookup": "fn"}
        )
        assert run(registry, ctx, sk, [{"K": 7}]) == [{"SK": 1007}]


class TestAggregation:
    def _gamma(self, agg):
        return Activity(
            "1",
            t.AGGREGATION,
            {"group_by": ("G",), "measure": "V", "agg": agg, "output": "OUT"},
        )

    def test_sum(self, registry, ctx):
        rows = [{"G": "a", "V": 1}, {"G": "a", "V": 2}, {"G": "b", "V": 5}]
        out = run(registry, ctx, self._gamma("sum"), rows)
        assert out == [{"G": "a", "OUT": 3}, {"G": "b", "OUT": 5}]

    def test_avg(self, registry, ctx):
        rows = [{"G": "a", "V": 1}, {"G": "a", "V": 3}]
        assert run(registry, ctx, self._gamma("avg"), rows) == [{"G": "a", "OUT": 2}]

    def test_min_max_count(self, registry, ctx):
        rows = [{"G": "a", "V": 4}, {"G": "a", "V": 2}]
        assert run(registry, ctx, self._gamma("min"), rows)[0]["OUT"] == 2
        assert run(registry, ctx, self._gamma("max"), rows)[0]["OUT"] == 4
        assert run(registry, ctx, self._gamma("count"), rows)[0]["OUT"] == 2

    def test_null_measures_ignored(self, registry, ctx):
        rows = [{"G": "a", "V": None}, {"G": "a", "V": 2}]
        assert run(registry, ctx, self._gamma("sum"), rows) == [{"G": "a", "OUT": 2}]

    def test_all_null_group(self, registry, ctx):
        rows = [{"G": "a", "V": None}]
        assert run(registry, ctx, self._gamma("sum"), rows) == [{"G": "a", "OUT": None}]
        assert run(registry, ctx, self._gamma("count"), rows) == [{"G": "a", "OUT": 0}]

    def test_unknown_aggregate(self, registry, ctx):
        gamma = self._gamma("median")
        with pytest.raises(ExecutionError, match="unknown aggregate"):
            run(registry, ctx, gamma, [{"G": 1, "V": 1}])

    def test_deterministic_group_order(self, registry, ctx):
        rows = [{"G": "b", "V": 1}, {"G": "a", "V": 1}]
        out = run(registry, ctx, self._gamma("sum"), rows)
        assert [r["G"] for r in out] == ["a", "b"]


class TestBinary:
    def test_union_is_bag(self, registry, ctx):
        union = Activity("1", t.UNION, {})
        out = run(registry, ctx, union, [{"A": 1}], [{"A": 1}])
        assert out == [{"A": 1}, {"A": 1}]

    def test_join_matches_on_keys(self, registry, ctx):
        join = Activity("1", t.JOIN, {"on": ("K",)})
        left = [{"K": 1, "A": "x"}, {"K": 2, "A": "y"}]
        right = [{"K": 1, "B": "p"}, {"K": 1, "B": "q"}]
        out = run(registry, ctx, join, left, right)
        assert len(out) == 2
        assert {"K": 1, "A": "x", "B": "p"} in out
        assert {"K": 1, "A": "x", "B": "q"} in out

    def test_difference_is_bag(self, registry, ctx):
        diff = Activity("1", t.DIFFERENCE, {})
        left = [{"A": 1}, {"A": 1}, {"A": 2}]
        right = [{"A": 1}]
        assert run(registry, ctx, diff, left, right) == [{"A": 1}, {"A": 2}]

    def test_intersection_is_bag(self, registry, ctx):
        inter = Activity("1", t.INTERSECTION, {})
        left = [{"A": 1}, {"A": 1}, {"A": 2}]
        right = [{"A": 1}, {"A": 3}]
        assert run(registry, ctx, inter, left, right) == [{"A": 1}]


class TestRegistry:
    def test_unknown_template(self, registry):
        with pytest.raises(ExecutionError, match="no operator"):
            registry.get("teleport")

    def test_double_register_rejected(self, registry):
        op = registry.get("selection")
        with pytest.raises(ExecutionError, match="already registered"):
            registry.register("selection", op)

    def test_register_replace(self, registry):
        op = registry.get("selection")
        registry.register("selection", op, replace=True)
        assert registry.get("selection") is op

    def test_custom_registration(self):
        registry = OperatorRegistry()
        registry.register("noop", lambda a, flows, ctx: list(flows[0]))
        assert "noop" in registry
