"""Fused columnar kernels vs the row-at-a-time operators.

One test per row-wise template kind plus the cross-cutting codegen
features (None-hoisting, scalar inlining, reject tracking, the
``REPRO_NO_COLUMNAR`` escape hatch): for every chain the streaming run
with fused kernels must be bit-identical — targets, stats, rejects, and
error messages — to both the materializing run and the streaming run
with the columnar path disabled.
"""

import pytest

from repro.core.activity import Activity
from repro.core.flags import set_columnar
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.workflow import ETLWorkflow
from repro.engine import (
    EngineContext,
    ExecutionBudget,
    Executor,
    default_scalar_functions,
)
from repro.engine.columnar import FusedChainRunner, supports_columnar
from repro.exceptions import ExecutionError
from repro.templates import default_library


def chain_workflow(steps, schema, out_schema, cardinality=10):
    library = default_library()
    workflow = ETLWorkflow()
    source = RecordSet(
        "S",
        "S",
        Schema(schema),
        kind=RecordSetKind.SOURCE,
        cardinality=cardinality,
    )
    target = RecordSet(
        "T", "T", Schema(out_schema), kind=RecordSetKind.TARGET
    )
    workflow.add_node(source)
    workflow.add_node(target)
    previous = source
    for index, (name, params) in enumerate(steps):
        activity = Activity(
            f"a{index}", library.get(name), params, selectivity=0.5
        )
        workflow.add_node(activity)
        workflow.add_edge(previous, activity)
        previous = activity
    workflow.add_edge(previous, target)
    return workflow


def assert_paths_agree(
    steps,
    rows,
    schema,
    out_schema,
    context=None,
    batch_size=3,
):
    """Materializing == row-streaming == fused-columnar-streaming."""
    workflow = chain_workflow(steps, schema, out_schema, len(rows))
    executor = (
        Executor(context=context) if context is not None else Executor()
    )
    data = {"S": rows}
    budget = ExecutionBudget(batch_size=batch_size)

    base = executor.run(workflow, data, collect_rejects=True)
    previous = set_columnar(False)
    try:
        row_streamed = executor.run(
            workflow, data, collect_rejects=True, budget=budget
        )
    finally:
        set_columnar(previous)
    fused = executor.run(
        workflow, data, collect_rejects=True, budget=budget
    )

    assert fused.targets == row_streamed.targets == base.targets
    assert (
        fused.stats.rows_processed
        == row_streamed.stats.rows_processed
        == base.stats.rows_processed
    )
    assert (
        fused.stats.rows_output
        == row_streamed.stats.rows_output
        == base.stats.rows_output
    )
    assert fused.rejects == row_streamed.rejects == base.rejects
    return fused


class TestPerTemplateKernels:
    def test_selection_every_operator(self):
        rows = [{"A": value, "B": 1} for value in (3, None, 5, 7, 5, 0)]
        for op in ("<", "<=", ">", ">=", "==", "!="):
            assert_paths_agree(
                [("selection", {"attr": "A", "op": op, "value": 5})],
                rows,
                ("A", "B"),
                ("A", "B"),
            )

    def test_not_null(self):
        rows = [{"A": 1}, {"A": None}, {"A": 0}, {"A": None}]
        assert_paths_agree(
            [("not_null", {"attr": "A"})], rows, ("A",), ("A",)
        )

    def test_range_check(self):
        rows = [{"A": value} for value in (-1, 0, 5, 10, 11, None)]
        assert_paths_agree(
            [("range_check", {"attr": "A", "low": 0, "high": 10})],
            rows,
            ("A",),
            ("A",),
        )

    def test_pk_check_single_key_scalar_set(self):
        # All-1-tuple references take the scalar-set kernel.
        context = EngineContext(references={"ref": frozenset({(2,), (4,)})})
        rows = [{"K": value} for value in (1, 2, 3, 4, 5)]
        result = assert_paths_agree(
            [("pk_check", {"key_attrs": ("K",), "reference": "ref"})],
            rows,
            ("K",),
            ("K",),
            context=context,
        )
        assert result.targets["T"] == [{"K": 1}, {"K": 3}, {"K": 5}]

    def test_pk_check_composite_key(self):
        context = EngineContext(references={"ref": frozenset({(1, 2)})})
        rows = [{"K": 1, "L": 2}, {"K": 1, "L": 3}, {"K": 2, "L": 2}]
        result = assert_paths_agree(
            [("pk_check", {"key_attrs": ("K", "L"), "reference": "ref"})],
            rows,
            ("K", "L"),
            ("K", "L"),
            context=context,
        )
        assert result.targets["T"] == [{"K": 1, "L": 3}, {"K": 2, "L": 2}]

    def test_projection(self):
        rows = [{"A": i, "B": i * 2, "C": -i} for i in range(5)]
        assert_paths_agree(
            [("projection", {"attrs": ("B",)})],
            rows,
            ("A", "B", "C"),
            ("A", "C"),
        )

    @pytest.mark.parametrize(
        "function",
        ["scale_double", "shift_up", "negate", "dollar_to_euro"],
    )
    def test_function_apply_inlined_scalars(self, function):
        # These four have pure-expression inline forms in the kernel.
        context = EngineContext(scalar_functions=default_scalar_functions())
        rows = [{"A": value} for value in (1, None, 2.5, -3)]
        assert_paths_agree(
            [
                (
                    "function_apply",
                    {"function": function, "inputs": ("A",), "output": "A"},
                )
            ],
            rows,
            ("A",),
            ("A",),
            context=context,
        )

    def test_function_apply_non_inlined_scalar(self):
        # date_us_to_eu is multi-statement: applied via the bound callable.
        context = EngineContext(scalar_functions=default_scalar_functions())
        rows = [{"D": "12/31/2004"}, {"D": None}, {"D": "01/02/2003"}]
        assert_paths_agree(
            [
                (
                    "function_apply",
                    {
                        "function": "date_us_to_eu",
                        "inputs": ("D",),
                        "output": "D",
                    },
                )
            ],
            rows,
            ("D",),
            ("D",),
            context=context,
        )

    def test_function_apply_new_output_drops_inputs(self):
        context = EngineContext(scalar_functions=default_scalar_functions())
        rows = [{"A": 1, "B": 2}, {"A": 3, "B": 4}]
        result = assert_paths_agree(
            [
                (
                    "function_apply",
                    {"function": "negate", "inputs": ("A",), "output": "N"},
                )
            ],
            rows,
            ("A", "B"),
            ("B", "N"),
            context=context,
        )
        assert result.targets["T"] == [{"B": 2, "N": -1}, {"B": 4, "N": -3}]

    def test_surrogate_key_mapping_and_callable(self):
        for table in ({10: 100, 20: 200, 30: 300}, lambda key: key * 10):
            context = EngineContext(lookups={"dim": table})
            rows = [{"K": 10, "X": 1}, {"K": 20, "X": 2}, {"K": 30, "X": 3}]
            result = assert_paths_agree(
                [
                    (
                        "surrogate_key",
                        {"lookup": "dim", "key_attr": "K", "skey_attr": "SK"},
                    )
                ],
                rows,
                ("K", "X"),
                ("X", "SK"),
                context=context,
            )
            assert [row["SK"] for row in result.targets["T"]] == [
                100,
                200,
                300,
            ]

    def test_surrogate_key_missing_key_same_error(self):
        context = EngineContext(lookups={"dim": {10: 100}})
        steps = [
            ("surrogate_key", {"lookup": "dim", "key_attr": "K", "skey_attr": "SK"})
        ]
        workflow = chain_workflow(steps, ("K",), ("SK",), 2)
        executor = Executor(context=context)
        data = {"S": [{"K": 10}, {"K": 99}]}
        messages = []
        for budget in (None, ExecutionBudget(batch_size=2)):
            with pytest.raises(ExecutionError) as excinfo:
                executor.run(workflow, data, budget=budget)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "lookup 'dim' has no surrogate for key 99" in messages[0]


class TestCodegenFeatures:
    def test_none_check_hoisting_chain(self):
        # not_null proves A non-null; the later selection and range_check
        # on A drop their None guards — results must not change.
        rows = [{"A": value} for value in (None, 1, 5, 9, None, 12, 7)]
        assert_paths_agree(
            [
                ("not_null", {"attr": "A"}),
                ("selection", {"attr": "A", "op": ">", "value": 2}),
                ("range_check", {"attr": "A", "low": 0, "high": 10}),
                ("not_null", {"attr": "A"}),  # free count-only stage
            ],
            rows,
            ("A",),
            ("A",),
        )

    def test_function_apply_invalidates_hoisting(self):
        # negate(None) is None: the applied column must regain its None
        # guard after the function even though not_null ran before it.
        context = EngineContext(scalar_functions=default_scalar_functions())
        rows = [{"A": 1, "B": None}, {"A": 2, "B": 2}, {"A": None, "B": 3}]
        assert_paths_agree(
            [
                ("not_null", {"attr": "B"}),
                (
                    "function_apply",
                    {"function": "negate", "inputs": ("B",), "output": "B"},
                ),
                ("selection", {"attr": "B", "op": "<", "value": 0}),
            ],
            rows,
            ("A", "B"),
            ("A", "B"),
            context=context,
        )

    def test_long_mixed_chain_with_rejects(self):
        context = EngineContext(
            scalar_functions=default_scalar_functions(),
            lookups={"dim": {i: i + 1000 for i in range(50)}},
            references={"ref": frozenset({(2,), (44,)})},
        )
        rows = [
            {"K": i, "A": (None if i % 7 == 0 else i), "B": i % 5}
            for i in range(40)
        ]
        assert_paths_agree(
            [
                ("not_null", {"attr": "A"}),
                ("selection", {"attr": "A", "op": ">", "value": 3}),
                ("pk_check", {"key_attrs": ("K",), "reference": "ref"}),
                (
                    "function_apply",
                    {"function": "shift_up", "inputs": ("A",), "output": "A"},
                ),
                ("range_check", {"attr": "A", "low": 1000, "high": 1035}),
                (
                    "surrogate_key",
                    {"lookup": "dim", "key_attr": "K", "skey_attr": "SK"},
                ),
                ("projection", {"attrs": ("B",)}),
            ],
            rows,
            ("K", "A", "B"),
            ("A", "SK"),
            context=context,
            batch_size=7,
        )

    def test_cached_kernels_pin_resolved_context_objects(self):
        # The global program cache keys on id() of the resolved context
        # objects, so every compiled kernel must keep those objects
        # alive — otherwise a dead reference set's (or scalar's) id can
        # be recycled by a different object that then wrongly hits the
        # stale entry.  The pk_check single-key unwrap and the inlined
        # scalars bind *derived* objects, so they pin the originals.
        from repro.engine import Batch, default_registry

        library = default_library()
        reference = frozenset({(1,), (2,)})
        scalar = default_scalar_functions()["negate"]
        context = EngineContext(
            references={"ref": reference},
            scalar_functions={"negate": scalar},
        )
        runner = FusedChainRunner(context, default_registry())
        runner.add(
            (
                Activity(
                    "a0",
                    library.get("pk_check"),
                    {"key_attrs": ["K"], "reference": "ref"},
                    selectivity=0.5,
                ),
                Activity(
                    "a1",
                    library.get("function_apply"),
                    {"function": "negate", "inputs": ["K"], "output": "K"},
                    selectivity=1.0,
                ),
            )
        )
        out, _, _ = runner.run_batch(Batch.from_columns({"K": [1, 3]}, 2))
        assert out.to_rows() == [{"K": -3}]
        kernel = runner._programs[("K",)]
        pinned = list(kernel.__globals__.values())
        assert any(obj is reference for obj in pinned)
        assert any(obj is scalar for obj in pinned)

    def test_ragged_batches_fall_back_to_rows(self):
        # Rows with differing attribute sets cannot build columns; the
        # runner must fall back per batch without changing results.
        from repro.engine import Batch, default_registry

        library = default_library()
        runner = FusedChainRunner(EngineContext(), default_registry())
        activity = Activity(
            "a0",
            library.get("not_null"),
            {"attr": "A"},
            selectivity=0.5,
        )
        runner.add((activity,))

        ragged = Batch.from_rows([{"A": 1}, {"A": 2, "B": 3}])
        out, counts, rejects = runner.run_batch(ragged)
        assert out.to_rows() == [{"A": 1}, {"A": 2, "B": 3}]
        assert counts == [(2, 2)]

    def test_supports_columnar_excludes_custom_operators(self):
        from repro.engine import default_registry

        library = default_library()
        activity = Activity(
            "a0",
            library.get("not_null"),
            {"attr": "A"},
            selectivity=0.5,
        )
        registry = default_registry()
        assert supports_columnar(activity, registry)
        registry.register(
            "not_null",
            lambda act, inputs, ctx: list(inputs[0]),
            replace=True,
        )
        assert not supports_columnar(activity, registry)

    def test_escape_hatch_disables_fusion(self, monkeypatch):
        # REPRO_NO_COLUMNAR routes everything through row operators.
        calls = []
        from repro.engine import columnar

        original = columnar.FusedChainRunner.run_batch

        def counting(self, batch):
            calls.append(1)
            return original(self, batch)

        monkeypatch.setattr(columnar.FusedChainRunner, "run_batch", counting)
        rows = [{"A": i} for i in range(6)]
        steps = [("selection", {"attr": "A", "op": ">", "value": 2})]
        workflow = chain_workflow(steps, ("A",), ("A",), len(rows))
        executor = Executor()
        previous = set_columnar(False)
        try:
            executor.run(
                workflow,
                {"S": rows},
                budget=ExecutionBudget(batch_size=2),
            )
        finally:
            set_columnar(previous)
        assert not calls
        executor.run(
            workflow, {"S": rows}, budget=ExecutionBudget(batch_size=2)
        )
        assert calls
