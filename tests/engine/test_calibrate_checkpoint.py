"""Selectivity calibration and checkpoint/resume execution."""

import pytest

from repro import optimize
from repro.core.signature import state_signature
from repro.core.transitions import Merge
from repro.engine import (
    CheckpointingExecutor,
    CheckpointStore,
    Executor,
    SimulatedFailure,
    apply_selectivities,
    as_multiset,
    calibrate_workflow,
    empirically_equivalent,
    measure_selectivities,
)


class TestMeasureSelectivities:
    def test_filters_measured_between_zero_and_one(self, fig1, fig1_executor):
        measured = measure_selectivities(
            fig1.workflow, fig1.make_data(seed=1), fig1_executor
        )
        for activity_id in ("3", "8"):
            assert 0.0 <= measured[activity_id] <= 1.0

    def test_functions_measure_one(self, fig1, fig1_executor):
        measured = measure_selectivities(
            fig1.workflow, fig1.make_data(seed=1), fig1_executor
        )
        assert measured["4"] == pytest.approx(1.0)
        assert measured["5"] == pytest.approx(1.0)

    def test_aggregation_measures_grouping_ratio(self, fig1, fig1_executor):
        measured = measure_selectivities(
            fig1.workflow, fig1.make_data(seed=1, n2=600), fig1_executor
        )
        assert 0.0 < measured["6"] < 1.0

    def test_binary_activities_not_measured(self, fig1, fig1_executor):
        measured = measure_selectivities(
            fig1.workflow, fig1.make_data(seed=1), fig1_executor
        )
        assert "7" not in measured

    def test_composite_components_measured(self, fig1, fig1_executor):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        measured = measure_selectivities(
            merged, fig1.make_data(seed=1), fig1_executor
        )
        assert "4" in measured and "5" in measured


class TestApplySelectivities:
    def test_structure_preserved(self, fig1):
        calibrated = apply_selectivities(fig1.workflow, {"3": 0.5})
        assert state_signature(calibrated) == state_signature(fig1.workflow)

    def test_selectivity_replaced(self, fig1):
        calibrated = apply_selectivities(fig1.workflow, {"3": 0.42})
        assert calibrated.node_by_id("3").selectivity == 0.42
        # Untouched activities keep their declared values (same objects).
        assert calibrated.node_by_id("8") is fig1.workflow.node_by_id("8")

    def test_original_untouched(self, fig1):
        before = fig1.workflow.node_by_id("3").selectivity
        apply_selectivities(fig1.workflow, {"3": 0.01})
        assert fig1.workflow.node_by_id("3").selectivity == before

    def test_calibrated_workflow_still_equivalent(self, fig1, fig1_executor):
        data = fig1.make_data(seed=2)
        calibrated = calibrate_workflow(fig1.workflow, data, fig1_executor)
        report = empirically_equivalent(
            fig1.workflow, calibrated, data, fig1_executor
        )
        assert report.equivalent

    def test_optimizing_calibrated_workflow(self, fig1, fig1_executor):
        data = fig1.make_data(seed=2)
        calibrated = calibrate_workflow(fig1.workflow, data, fig1_executor)
        result = optimize(calibrated)
        assert result.best_cost <= result.initial_cost
        report = empirically_equivalent(
            calibrated, result.best.workflow, data, fig1_executor
        )
        assert report.equivalent


class TestCheckpointing:
    def _executor(self, fig1):
        return CheckpointingExecutor(context=fig1.context)

    def test_clean_run_matches_plain_executor(self, fig1):
        data = fig1.make_data(seed=3)
        plain = Executor(context=fig1.context).run(fig1.workflow, data)
        checkpointed = self._executor(fig1).run(fig1.workflow, data)
        assert as_multiset(plain.targets["DW"]) == as_multiset(
            checkpointed.targets["DW"]
        )

    def test_failure_raises_simulated(self, fig1):
        data = fig1.make_data(seed=3)
        executor = self._executor(fig1)
        with pytest.raises(SimulatedFailure):
            executor.run(fig1.workflow, data, fail_before="7")

    @pytest.mark.parametrize("fail_at", ["3", "4", "6", "7", "8", "9"])
    def test_resume_completes_identically(self, fig1, fail_at):
        data = fig1.make_data(seed=3)
        executor = self._executor(fig1)
        reference = executor.run(fig1.workflow, data)

        store = CheckpointStore()
        with pytest.raises(SimulatedFailure):
            executor.run(fig1.workflow, data, checkpoints=store, fail_before=fail_at)
        resumed = executor.run(fig1.workflow, data, checkpoints=store)
        assert as_multiset(resumed.targets["DW"]) == as_multiset(
            reference.targets["DW"]
        )

    def test_resume_skips_completed_work(self, fig1):
        data = fig1.make_data(seed=3)
        executor = self._executor(fig1)
        store = CheckpointStore()
        with pytest.raises(SimulatedFailure):
            executor.run(fig1.workflow, data, checkpoints=store, fail_before="7")
        # Branch activities completed before the failure...
        assert {"1", "2", "3", "4", "5", "6"} <= store.completed_nodes
        resumed = executor.run(fig1.workflow, data, checkpoints=store)
        # ...so the resumed run only executed the union and the selection.
        assert set(resumed.stats.rows_processed) == {"7", "8"}

    def test_store_clear(self, fig1):
        data = fig1.make_data(seed=3)
        executor = self._executor(fig1)
        store = CheckpointStore()
        executor.run(fig1.workflow, data, checkpoints=store)
        assert store.completed_nodes
        store.clear()
        assert not store.completed_nodes


class TestBatchGranularCheckpointing:
    """Failures injected after the n-th output batch of a node; resume
    recomputes only the unfinished suffix (row-wise) or the node (blocking)."""

    def _budget(self, batch_size=10):
        from repro.engine import ExecutionBudget

        return ExecutionBudget(batch_size=batch_size)

    def test_fail_after_requires_budget(self, fig1):
        from repro.exceptions import ExecutionError

        data = fig1.make_data(seed=3)
        executor = CheckpointingExecutor(context=fig1.context)
        with pytest.raises(ExecutionError):
            executor.run(fig1.workflow, data, fail_after=("7", 1))

    def test_fail_after_every_activity_then_resume(self, fig1):
        from repro.core.activity import Activity

        data = fig1.make_data(seed=3)
        executor = CheckpointingExecutor(context=fig1.context)
        reference = executor.run(fig1.workflow, data)
        activities = [
            n for n in fig1.workflow.topological_order()
            if isinstance(n, Activity)
        ]
        tested = 0
        for node in activities:
            for batches in (1, 2):
                store = CheckpointStore()
                try:
                    executor.run(
                        fig1.workflow, data, checkpoints=store,
                        fail_after=(node.id, batches),
                        budget=self._budget(),
                    )
                    continue  # node emitted fewer batches: no injection
                except SimulatedFailure as failure:
                    assert failure.node_id == node.id
                    assert node.id in store.partials
                resumed = executor.run(
                    fig1.workflow, data, checkpoints=store,
                    budget=self._budget(),
                )
                assert resumed.targets == reference.targets
                assert node.id not in store.partials  # promoted to complete
                tested += 1
        assert tested > 0

    def test_rowwise_resume_recomputes_only_the_suffix(self, fig1):
        """Fig 1's '3' is a row-wise filter: after failing 2 batches in, the
        resume must start from the consumed offset, not row 0."""
        data = fig1.make_data(seed=3)
        executor = CheckpointingExecutor(context=fig1.context)
        full = executor.run(fig1.workflow, data)
        total = full.stats.rows_processed["3"]

        store = CheckpointStore()
        with pytest.raises(SimulatedFailure):
            executor.run(
                fig1.workflow, data, checkpoints=store,
                fail_after=("3", 2), budget=self._budget(batch_size=10),
            )
        partial = store.partials["3"]
        assert partial.consumed_rows == 20
        resumed = executor.run(
            fig1.workflow, data, checkpoints=store, budget=self._budget(10)
        )
        assert resumed.stats.rows_processed["3"] == total - 20
        assert resumed.targets == full.targets

    def test_partial_checkpoint_rows_concatenate(self):
        from repro.engine import PartialCheckpoint

        partial = PartialCheckpoint()
        partial.batches.append([{"a": 1}])
        partial.batches.append([{"a": 2}, {"a": 3}])
        assert partial.rows == [{"a": 1}, {"a": 2}, {"a": 3}]


class TestCalibrationRegressions:
    def test_ratio_handles_missing_output_count(self, fig1):
        """Partial stats (processed recorded, output missing) used to raise
        TypeError: unsupported operand None / int."""
        from repro.engine import ExecutionStats
        from repro.engine.calibrate import _ratio

        activity = next(iter(fig1.workflow.activities()))
        stats = ExecutionStats()
        stats.rows_processed[activity.id] = 50  # no rows_output entry
        assert _ratio(stats, activity) is None

    def test_zero_row_activity_warns_and_keeps_declared(self, fig1):
        import warnings

        from repro.engine import CalibrationWarning

        # Empty sources: every activity processes zero rows.
        empty = {name: [] for name in fig1.make_data(seed=1)}
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            measured = measure_selectivities(
                fig1.workflow, empty, Executor(context=fig1.context)
            )
        assert measured == {}
        calibration_warnings = [
            w for w in caught if issubclass(w.category, CalibrationWarning)
        ]
        assert calibration_warnings
        assert "declared selectivity" in str(calibration_warnings[0].message)

    def test_clean_sample_does_not_warn(self, fig1, fig1_executor):
        import warnings

        from repro.engine import CalibrationWarning

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            measure_selectivities(
                fig1.workflow, fig1.make_data(seed=1), fig1_executor
            )
        assert not [
            w for w in caught if issubclass(w.category, CalibrationWarning)
        ]
