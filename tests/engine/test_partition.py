"""Partitioned (sharded) streaming execution: byte-identity with serial.

The engine-plane contract of the parallelism PR: for every shard count,
``Executor.run(..., shards=N)`` returns targets, stats (including key
order) and rejects (including row order) identical to the serial
streaming run — and workflows outside the partitionable shape degrade to
serial streaming loudly (warning + counter), never silently.
"""

from __future__ import annotations

import glob
import os
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    CheckpointingExecutor,
    CheckpointStore,
    ExecutionBudget,
    Executor,
    SimulatedFailure,
    as_multiset,
    execute_partitioned,
    partition_plan,
    shard_bounds,
)
from repro.engine.partition import _plan_or_reason
from repro.engine.tracing import TracingExecutor
from repro.exceptions import ExecutionError
from repro.obs import Recorder, use_recorder
from repro.workloads.scenarios import (
    dual_target_scenario,
    star_join_scenario,
    two_branch_scenario,
)


def assert_identical(serial, sharded):
    """Byte-identity: same targets (order included), stats (key order
    included), and rejects (row order included)."""
    assert list(sharded.targets) == list(serial.targets)
    for name in serial.targets:
        assert sharded.targets[name] == serial.targets[name]
    assert sharded.stats.rows_processed == serial.stats.rows_processed
    assert sharded.stats.rows_output == serial.stats.rows_output
    assert list(sharded.stats.rows_processed) == list(
        serial.stats.rows_processed
    )
    assert sharded.rejects == serial.rejects
    assert list(sharded.rejects) == list(serial.rejects)


def _two_branch(n=157, seed=0):
    scenario = two_branch_scenario()
    return scenario, scenario.make_data(seed, n=n)


class TestShardBounds:
    @pytest.mark.parametrize("num_rows", [0, 1, 7, 100, 101])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 128])
    def test_contiguous_cover(self, num_rows, shards):
        bounds = shard_bounds(num_rows, shards)
        assert len(bounds) == shards
        assert bounds[0][0] == 0
        assert bounds[-1][1] == num_rows
        for (_, end), (start, _) in zip(bounds, bounds[1:]):
            assert end == start
        sizes = [end - start for start, end in bounds]
        assert sum(sizes) == num_rows
        assert max(sizes) - min(sizes) <= 1


class TestPartitionPlan:
    def test_two_branch_plans_two_leaves(self):
        scenario, _ = _two_branch()
        plan = partition_plan(scenario.workflow)
        assert plan.targets == ("DW",)
        assert len(plan.leaves) == 2
        # Leaves follow the union's port order: SRC1's branch first.
        assert [leaf.source.name for leaf in plan.leaves] == ["SRC1", "SRC2"]
        # Both leaves share the post-union late filter.
        for leaf in plan.leaves:
            assert leaf.steps[-1][1].id == "8"
            assert any(kind == "union" for kind, _ in leaf.steps)

    def test_join_is_not_partitionable(self):
        scenario = star_join_scenario()
        with pytest.raises(ExecutionError, match="not partitionable"):
            partition_plan(scenario.workflow)

    def test_fan_out_is_not_partitionable(self):
        scenario = dual_target_scenario()
        plan, reason = _plan_or_reason(scenario.workflow)
        assert plan is None
        assert "fan-out" in reason


class TestByteIdentity:
    @pytest.mark.parametrize("shards", [2, 3, 5, 16])
    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_matches_serial_streaming(self, shards, batch_size):
        scenario, data = _two_branch()
        executor = Executor(context=scenario.context)
        budget = ExecutionBudget(batch_size=batch_size)
        serial = executor.run(
            scenario.workflow, data, collect_rejects=True, budget=budget
        )
        sharded = execute_partitioned(
            executor,
            scenario.workflow,
            data,
            budget,
            shards,
            collect_rejects=True,
            jobs=1,
        )
        assert_identical(serial, sharded)
        assert sharded.streaming is not None
        assert sharded.streaming.spilled_rows == 0

    def test_matches_materializing_run(self):
        scenario, data = _two_branch(n=80)
        executor = Executor(context=scenario.context)
        base = executor.run(scenario.workflow, data, collect_rejects=True)
        sharded = execute_partitioned(
            executor,
            scenario.workflow,
            data,
            ExecutionBudget(batch_size=16),
            4,
            collect_rejects=True,
            jobs=1,
        )
        assert_identical(base, sharded)

    def test_more_shards_than_rows(self):
        scenario, data = _two_branch(n=3)
        executor = Executor(context=scenario.context)
        budget = ExecutionBudget(batch_size=8)
        serial = executor.run(
            scenario.workflow, data, collect_rejects=True, budget=budget
        )
        sharded = execute_partitioned(
            executor,
            scenario.workflow,
            data,
            budget,
            17,
            collect_rejects=True,
            jobs=1,
        )
        assert_identical(serial, sharded)

    def test_row_fallback_path_matches_serial(self, monkeypatch):
        # REPRO_NO_COLUMNAR forces every chain onto the legacy row
        # operators on both paths; identity must survive.
        monkeypatch.setenv("REPRO_NO_COLUMNAR", "1")
        scenario, data = _two_branch(n=90)
        executor = Executor(context=scenario.context)
        budget = ExecutionBudget(batch_size=11)
        serial = executor.run(
            scenario.workflow, data, collect_rejects=True, budget=budget
        )
        sharded = execute_partitioned(
            executor,
            scenario.workflow,
            data,
            budget,
            3,
            collect_rejects=True,
            jobs=1,
        )
        assert_identical(serial, sharded)

    def test_pooled_run_matches_serial(self):
        # The real worker-process fan-out (fork-server preload + merge).
        scenario, data = _two_branch(n=120)
        executor = Executor(context=scenario.context)
        budget = ExecutionBudget(batch_size=32)
        serial = executor.run(
            scenario.workflow, data, collect_rejects=True, budget=budget
        )
        sharded = executor.run(
            scenario.workflow,
            data,
            collect_rejects=True,
            budget=budget,
            shards=2,
        )
        assert_identical(serial, sharded)

    def test_shards_without_budget_streams_by_default(self):
        scenario, data = _two_branch(n=40)
        executor = Executor(context=scenario.context)
        base = executor.run(scenario.workflow, data)
        sharded = executor.run(scenario.workflow, data, shards=2)
        assert sharded.streaming is not None
        assert sharded.targets == base.targets

    def test_shards_one_is_plain_streaming(self):
        scenario, data = _two_branch(n=40)
        executor = Executor(context=scenario.context)
        budget = ExecutionBudget(batch_size=8)
        serial = executor.run(scenario.workflow, data, budget=budget)
        one = executor.run(
            scenario.workflow, data, budget=budget, shards=1
        )
        assert one.targets == serial.targets
        assert one.streaming.batches_by_activity == (
            serial.streaming.batches_by_activity
        )


class TestDegradation:
    def test_join_degrades_with_warning_and_counter(self):
        scenario = star_join_scenario()
        data = scenario.make_data(0)
        executor = Executor(context=scenario.context)
        budget = ExecutionBudget(batch_size=64)
        serial = executor.run(scenario.workflow, data, budget=budget)
        recorder = Recorder()
        with use_recorder(recorder):
            with pytest.warns(RuntimeWarning, match="degraded to serial"):
                sharded = executor.run(
                    scenario.workflow, data, budget=budget, shards=2
                )
        assert sharded.targets == serial.targets
        assert sharded.stats.rows_processed == serial.stats.rows_processed
        degraded = [
            event
            for event in recorder.events()
            if event["type"] == "counter"
            and event["name"] == "engine.shards_degraded"
        ]
        assert len(degraded) == 1
        assert degraded[0]["value"] == 1

    def test_degraded_spill_run_still_cleans_up(self, tmp_path):
        # Spill interaction: a join workflow under a tight budget spills;
        # sharding degrades to that serial run and must leave the spill
        # dir empty afterwards.
        scenario = star_join_scenario()
        data = scenario.make_data(0)
        executor = Executor(context=scenario.context)
        budget = ExecutionBudget(
            batch_size=8, max_resident_rows=16, spill_dir=str(tmp_path)
        )
        serial = executor.run(scenario.workflow, data, budget=budget)
        assert serial.streaming.spilled_rows > 0
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            sharded = executor.run(
                scenario.workflow, data, budget=budget, shards=2
            )
        assert sharded.targets == serial.targets
        assert sharded.streaming.spilled_rows == serial.streaming.spilled_rows
        assert glob.glob(os.path.join(str(tmp_path), "*")) == []


class TestCheckpointInteraction:
    def test_sharded_matches_checkpoint_resumed_run(self):
        # Orthogonal recovery paths must agree: a run killed mid-flight
        # and resumed from checkpoints produces the same target multiset
        # a sharded run does.
        scenario, data = _two_branch(n=100)
        executor = CheckpointingExecutor(context=scenario.context)
        store = CheckpointStore()
        with pytest.raises(SimulatedFailure):
            executor.run(
                scenario.workflow, data, checkpoints=store, fail_before="7"
            )
        resumed = executor.run(scenario.workflow, data, checkpoints=store)
        sharded = Executor(context=scenario.context).run(
            scenario.workflow,
            data,
            budget=ExecutionBudget(batch_size=32),
            shards=3,
        )
        assert as_multiset(sharded.targets["DW"]) == as_multiset(
            resumed.targets["DW"]
        )


class TestTelemetryDeterminism:
    def test_sharded_run_telemetry_is_deterministic(self):
        scenario, data = _two_branch(n=70)

        def run():
            recorder = Recorder()
            executor = TracingExecutor(context=scenario.context)
            result = executor.run(
                scenario.workflow,
                data,
                collect_rejects=True,
                budget=ExecutionBudget(batch_size=16),
                recorder=recorder,
                shards=3,
            )
            return result, recorder

        first, first_recorder = run()
        second, second_recorder = run()
        assert_identical(first, second)
        assert first.streaming.batches_by_activity == (
            second.streaming.batches_by_activity
        )

        def stable(recorder):
            spans = [
                (e["name"], tuple(sorted(e.get("tags", {}).items())))
                for e in recorder.events()
                if e["type"] == "span"
            ]
            counters = [
                (e["name"], e["value"])
                for e in recorder.events()
                if e["type"] == "counter"
            ]
            return spans, counters

        assert stable(first_recorder) == stable(second_recorder)


class TestHypothesisShardIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=5),
        shards=st.integers(min_value=2, max_value=7),
        batch_size=st.sampled_from([1, 3, 16, 4096]),
    )
    def test_identity_across_shard_counts(self, n, seed, shards, batch_size):
        scenario, data = _two_branch(n=n, seed=seed)
        executor = Executor(context=scenario.context)
        budget = ExecutionBudget(batch_size=batch_size)
        serial = executor.run(
            scenario.workflow, data, collect_rejects=True, budget=budget
        )
        sharded = execute_partitioned(
            executor,
            scenario.workflow,
            data,
            budget,
            shards,
            collect_rejects=True,
            jobs=1,
        )
        assert_identical(serial, sharded)
