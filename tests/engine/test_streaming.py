"""Streaming engine: equivalence with materializing, budgets, and spill."""

import glob
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    DEFAULT_BATCH_SIZE,
    ExecutionBudget,
    Executor,
    ResidentLedger,
    SpillableRowBuffer,
    StreamingMetrics,
    as_multiset,
    iter_components,
    streaming_matches_materializing,
)
from repro.engine.batches import iter_batches, rebatch
from repro.engine.tracing import TracingExecutor
from repro.exceptions import ExecutionError
from repro.workloads import generate_workload
from repro.workloads.scenarios import (
    dual_target_scenario,
    star_join_scenario,
    two_branch_scenario,
)


def assert_runs_identical(base, streamed):
    """The streaming contract: identical targets, stats, and rejects."""
    assert set(base.targets) == set(streamed.targets)
    for name in base.targets:
        assert base.targets[name] == streamed.targets[name]
    assert base.stats.rows_processed == streamed.stats.rows_processed
    assert base.stats.rows_output == streamed.stats.rows_output
    assert set(base.rejects) == set(streamed.rejects)
    for activity_id in base.rejects:
        assert as_multiset(base.rejects[activity_id]) == as_multiset(
            streamed.rejects[activity_id]
        )


class TestExecutionBudget:
    def test_defaults(self):
        budget = ExecutionBudget()
        assert budget.batch_size == DEFAULT_BATCH_SIZE
        assert budget.max_resident_rows is None
        assert budget.spill_dir is None

    @pytest.mark.parametrize("batch_size", [0, -1])
    def test_invalid_batch_size(self, batch_size):
        with pytest.raises(ExecutionError):
            ExecutionBudget(batch_size=batch_size)

    def test_invalid_resident_rows(self):
        with pytest.raises(ExecutionError):
            ExecutionBudget(max_resident_rows=0)


class TestEquivalenceOnGeneratedWorkloads:
    @pytest.mark.parametrize("category", ["tiny", "small", "medium"])
    @pytest.mark.parametrize("batch_size", [1, 7, 4096])
    def test_identical_targets_stats_rejects(self, category, batch_size):
        workload = generate_workload(category, seed=11)
        data = workload.make_data(11)
        executor = Executor(context=workload.context)
        base = executor.run(workload.workflow, data, collect_rejects=True)
        streamed = executor.run(
            workload.workflow,
            data,
            collect_rejects=True,
            budget=ExecutionBudget(batch_size=batch_size),
        )
        assert_runs_identical(base, streamed)
        assert streamed.streaming is not None
        assert base.streaming is None

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=40),
        batch_size=st.integers(min_value=1, max_value=200),
    )
    def test_property_streaming_matches(self, seed, batch_size):
        workload = generate_workload("small", seed=seed)
        data = workload.make_data(seed)
        report = streaming_matches_materializing(
            workload.workflow,
            data,
            ExecutionBudget(batch_size=batch_size),
            executor=Executor(context=workload.context),
        )
        assert report.conformant, report.problems


class TestEquivalenceOnBinaryScenarios:
    """The generator emits only union chains; these cover join and the
    multi-consumer fan-out path."""

    @pytest.mark.parametrize(
        "builder",
        [star_join_scenario, dual_target_scenario, two_branch_scenario],
    )
    @pytest.mark.parametrize("batch_size", [1, 3, 4096])
    def test_scenarios(self, builder, batch_size):
        scenario = builder()
        data = scenario.make_data(0)
        executor = Executor(context=scenario.context)
        base = executor.run(scenario.workflow, data)
        streamed = executor.run(
            scenario.workflow, data, budget=ExecutionBudget(batch_size=batch_size)
        )
        assert base.targets == streamed.targets
        assert base.stats.rows_processed == streamed.stats.rows_processed
        assert base.stats.rows_output == streamed.stats.rows_output


class TestFig1Streaming:
    def test_fig1_streams_identically(self, fig1, fig1_executor):
        data = fig1.make_data(seed=5)
        base = fig1_executor.run(fig1.workflow, data)
        streamed = fig1_executor.run(
            fig1.workflow, data, budget=ExecutionBudget(batch_size=13)
        )
        assert base.targets == streamed.targets
        assert base.stats.rows_processed == streamed.stats.rows_processed

    def test_composite_reports_member_level_stats(self, fig1, fig1_executor):
        """MER'd groups account per component on both paths (satellite)."""
        from repro.core.transitions import Merge

        workflow = fig1.workflow
        merged = None
        for first in workflow.activities():
            for second in workflow.consumers(first):
                candidate = Merge(first, second).try_apply(workflow)
                if candidate is not None:
                    merged = candidate
                    break
            if merged is not None:
                break
        assert merged is not None
        data = fig1.make_data(seed=5)
        base = fig1_executor.run(merged, data)
        streamed = fig1_executor.run(
            merged, data, budget=ExecutionBudget(batch_size=17)
        )
        composite = next(
            a for a in merged.activities()
            if len(list(iter_components(a))) > 1
        )
        for component in iter_components(composite):
            assert component.id in base.stats.rows_processed
            assert (
                base.stats.rows_processed[component.id]
                == streamed.stats.rows_processed[component.id]
            )


class TestDefaultBudget:
    def test_executor_level_budget_streams_every_run(self):
        workload = generate_workload("tiny", seed=2)
        data = workload.make_data(2)
        executor = Executor(
            context=workload.context, budget=ExecutionBudget(batch_size=8)
        )
        result = executor.run(workload.workflow, data)
        assert result.streaming is not None
        assert result.streaming.batch_size == 8

    def test_per_run_budget_overrides_default(self):
        workload = generate_workload("tiny", seed=2)
        data = workload.make_data(2)
        executor = Executor(
            context=workload.context, budget=ExecutionBudget(batch_size=8)
        )
        result = executor.run(
            workload.workflow, data, budget=ExecutionBudget(batch_size=3)
        )
        assert result.streaming.batch_size == 3


class TestSpill:
    def test_forced_spill_is_identical_and_cleaned_up(self, tmp_path):
        scenario = star_join_scenario()
        data = scenario.make_data(0)
        executor = Executor(context=scenario.context)
        base = executor.run(scenario.workflow, data)
        streamed = executor.run(
            scenario.workflow,
            data,
            budget=ExecutionBudget(
                batch_size=4, max_resident_rows=8, spill_dir=str(tmp_path)
            ),
        )
        assert base.targets == streamed.targets
        assert base.stats.rows_processed == streamed.stats.rows_processed
        assert streamed.streaming.spilled_rows > 0
        assert glob.glob(str(tmp_path / "*")) == []  # spill files removed

    def test_without_spill_dir_peak_is_tracked_not_enforced(self):
        scenario = star_join_scenario()
        data = scenario.make_data(0)
        executor = Executor(context=scenario.context)
        streamed = executor.run(
            scenario.workflow,
            data,
            budget=ExecutionBudget(batch_size=4, max_resident_rows=1),
        )
        assert streamed.streaming.spilled_rows == 0
        assert streamed.streaming.peak_resident_rows > 1
        assert not streamed.streaming.within_budget

    def test_generated_workload_under_tight_budget(self, tmp_path):
        workload = generate_workload("small", seed=7, rows_per_source=200)
        data = workload.make_data(7)
        executor = Executor(context=workload.context)
        base = executor.run(workload.workflow, data)
        streamed = executor.run(
            workload.workflow,
            data,
            budget=ExecutionBudget(
                batch_size=16,
                max_resident_rows=600,
                spill_dir=str(tmp_path),
            ),
        )
        assert base.targets == streamed.targets
        assert streamed.streaming.peak_resident_rows <= 600


class TestResidentLedger:
    def test_peak_and_per_owner_accounting(self):
        ledger = ResidentLedger(limit=10)
        ledger.acquire("a", 6)
        ledger.acquire("b", 5)
        assert ledger.current == 11
        assert ledger.peak == 11
        assert ledger.over_budget
        ledger.release("b", 5)
        assert ledger.current == 6
        assert not ledger.over_budget
        assert ledger.peak == 11
        assert ledger.peak_for("a") == 6
        assert ledger.peak_for("b") == 5
        assert ledger.peak_for("missing") == 0

    def test_no_limit_never_over_budget(self):
        ledger = ResidentLedger()
        ledger.acquire("a", 10**9)
        assert not ledger.over_budget


class TestSpillableRowBuffer:
    def test_replay_preserves_append_order_across_spills(self, tmp_path):
        ledger = ResidentLedger(limit=4)
        buffer = SpillableRowBuffer(ledger, "x", str(tmp_path))
        rows = [{"i": i} for i in range(20)]
        for start in range(0, 20, 3):
            buffer.extend(rows[start : start + 3])
        assert buffer.spilled
        assert len(buffer) == 20
        assert list(buffer.rows()) == rows
        buffer.close()
        assert glob.glob(str(tmp_path / "*")) == []

    def test_frozen_after_read(self, tmp_path):
        ledger = ResidentLedger()
        buffer = SpillableRowBuffer(ledger, "x", str(tmp_path))
        buffer.extend([{"i": 1}])
        list(buffer.rows())
        with pytest.raises(ExecutionError):
            buffer.extend([{"i": 2}])
        buffer.close()

    def test_close_is_idempotent_and_releases(self):
        ledger = ResidentLedger()
        buffer = SpillableRowBuffer(ledger, "x")
        buffer.extend([{"i": 1}, {"i": 2}])
        assert ledger.current == 2
        buffer.close()
        buffer.close()
        assert ledger.current == 0


class TestBatchingHelpers:
    def test_iter_batches_covers_all_rows(self):
        rows = [{"i": i} for i in range(10)]
        batches = list(iter_batches(rows, 3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        assert [row for batch in batches for row in batch] == rows

    def test_rebatch_ragged_input(self):
        rows = ({"i": i} for i in range(7))
        batches = list(rebatch(rows, 4))
        assert [len(b) for b in batches] == [4, 3]

    def test_empty(self):
        assert list(iter_batches([], 5)) == []
        assert list(rebatch(iter([]), 5)) == []


class TestStreamingMetrics:
    def test_within_budget(self):
        metrics = StreamingMetrics(
            batch_size=10, max_resident_rows=100, peak_resident_rows=50
        )
        assert metrics.within_budget
        metrics.peak_resident_rows = 200
        assert not metrics.within_budget

    def test_no_limit_always_within(self):
        metrics = StreamingMetrics(
            batch_size=10, max_resident_rows=None, peak_resident_rows=10**9
        )
        assert metrics.within_budget


class TestCustomBlockingFallback:
    """A template the streaming engine has no incremental form for falls
    back to accumulate-then-apply — correct, just unbounded."""

    def test_custom_blocking_template(self):
        from repro.core.activity import Activity
        from repro.core.recordset import RecordSet, RecordSetKind
        from repro.core.schema import Schema
        from repro.core.workflow import ETLWorkflow
        from repro.engine import default_registry
        from repro.templates.base import (
            ActivityKind,
            ActivityTemplate,
            CostShape,
            SchemaPlan,
        )

        template = ActivityTemplate(
            name="tail2",
            kind=ActivityKind.AGGREGATION,
            arity=1,
            cost_shape=CostShape.SORT,
            param_names=(),
            planner=lambda params: SchemaPlan(
                functionality_per_input=(Schema(()),),
                generated=Schema(()),
                projected_out=Schema(()),
            ),
            doc="keep the last two rows",
        )
        registry = default_registry()
        registry.register(
            "tail2", lambda activity, inputs, ctx: list(inputs[0][-2:])
        )

        workflow = ETLWorkflow()
        source = RecordSet(
            "S", "S", Schema(("A",)), kind=RecordSetKind.SOURCE, cardinality=9
        )
        target = RecordSet("T", "T", Schema(("A",)), kind=RecordSetKind.TARGET)
        activity = Activity("a1", template, {}, selectivity=0.2)
        for node in (source, target, activity):
            workflow.add_node(node)
        workflow.add_edge(source, activity)
        workflow.add_edge(activity, target)

        data = {"S": [{"A": i} for i in range(9)]}
        executor = Executor(registry=registry)
        base = executor.run(workflow, data)
        streamed = executor.run(
            workflow, data, budget=ExecutionBudget(batch_size=2)
        )
        assert base.targets == streamed.targets == {"T": [{"A": 7}, {"A": 8}]}
        assert base.stats.rows_processed == streamed.stats.rows_processed


class TestTracingStreams:
    def test_trace_reports_batches_and_peaks(self):
        workload = generate_workload("small", seed=4)
        data = workload.make_data(4)
        executor = TracingExecutor(context=workload.context)
        executor.run(
            workload.workflow, data, budget=ExecutionBudget(batch_size=16)
        )
        trace = executor.last_trace
        assert trace is not None and trace.traces
        busy = [t for t in trace.traces if t.rows_in > 16]
        assert busy and all(t.batches > 1 for t in busy)
        assert all(t.peak_resident_rows is not None for t in trace.traces)
        rendered = trace.render(top=3)
        assert "batches" in rendered and "res.peak" in rendered

    def test_materializing_trace_unchanged(self):
        workload = generate_workload("tiny", seed=4)
        data = workload.make_data(4)
        executor = TracingExecutor(context=workload.context)
        executor.run(workload.workflow, data)
        trace = executor.last_trace
        assert all(t.batches == 1 for t in trace.traces)
        assert all(t.peak_resident_rows is None for t in trace.traces)


class TestSchemaErrorsReportAbsoluteRow:
    def test_bad_row_in_later_batch(self):
        from repro.core.recordset import RecordSet, RecordSetKind
        from repro.core.schema import Schema
        from repro.core.workflow import ETLWorkflow
        from repro.core.activity import Activity
        from repro.templates import default_library

        library = default_library()
        workflow = ETLWorkflow()
        source = RecordSet(
            "S", "S", Schema(("A",)), kind=RecordSetKind.SOURCE, cardinality=8
        )
        target = RecordSet("T", "T", Schema(("A",)), kind=RecordSetKind.TARGET)
        keep = Activity(
            "a1",
            library.get("selection"),
            {"attr": "A", "op": ">=", "value": 0},
            selectivity=1.0,
        )
        for node in (source, target, keep):
            workflow.add_node(node)
        workflow.add_edge(source, keep)
        workflow.add_edge(keep, target)

        rows = [{"A": i} for i in range(7)] + [{"B": 1}]
        with pytest.raises(ExecutionError, match="row 7"):
            Executor().run(
                workflow, {"S": rows}, budget=ExecutionBudget(batch_size=3)
            )
