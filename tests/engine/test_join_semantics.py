"""Bag semantics of the join operator under duplicate keys."""

import pytest

from repro.core.activity import Activity
from repro.engine.operators import EngineContext, default_registry
from repro.templates import builtin as t


@pytest.fixture
def join_op():
    registry = default_registry()
    op = registry.get("join")
    join = Activity("1", t.JOIN, {"on": ("K",)})
    return lambda left, right: op(join, (left, right), EngineContext())


class TestJoinMultiplicities:
    def test_cross_multiplicity(self, join_op):
        left = [{"K": 1, "A": "x"}, {"K": 1, "A": "y"}]
        right = [{"K": 1, "B": "p"}, {"K": 1, "B": "q"}]
        assert len(join_op(left, right)) == 4

    def test_non_matching_rows_dropped(self, join_op):
        left = [{"K": 1, "A": "x"}, {"K": 2, "A": "y"}]
        right = [{"K": 3, "B": "p"}]
        assert join_op(left, right) == []

    def test_empty_sides(self, join_op):
        assert join_op([], [{"K": 1, "B": "p"}]) == []
        assert join_op([{"K": 1, "A": "x"}], []) == []

    def test_null_keys_match_nothing_implicitly(self, join_op):
        """None keys only match None keys — hash semantics; workflows that
        care should not-null their join keys first."""
        left = [{"K": None, "A": "x"}]
        right = [{"K": None, "B": "p"}]
        out = join_op(left, right)
        assert len(out) == 1  # documented behaviour: None == None in the hash

    def test_shared_non_key_attribute_takes_left_value(self):
        registry = default_registry()
        op = registry.get("join")
        join = Activity("1", t.JOIN, {"on": ("K",)})
        left = [{"K": 1, "X": "left"}]
        right = [{"K": 1, "X": "right", "B": 2}]
        out = op(join, (left, right), EngineContext())
        assert out == [{"K": 1, "X": "left", "B": 2}]
