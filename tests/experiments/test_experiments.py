"""The experiment harness: records, aggregation, table formatting."""

import pytest

from repro.core.search import HSConfig
from repro.experiments import (
    ExperimentConfig,
    best_known_costs,
    format_fig4,
    format_table1,
    format_table2,
    run_category,
    run_experiment,
    run_fig4,
    table1_rows,
    table2_rows,
)
from repro.experiments.harness import RunRecord, run_algorithm
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def tiny_records():
    config = ExperimentConfig(
        categories=("tiny",),
        workflows_per_category=2,
        es_max_states={"tiny": 3000},
        es_max_seconds=20.0,
        hs_config=HSConfig(),
    )
    return run_experiment(config)


class TestHarness:
    def test_records_per_workflow_and_algorithm(self, tiny_records):
        assert len(tiny_records) == 2 * 3  # 2 workflows x 3 algorithms
        assert {r.algorithm for r in tiny_records} == {"ES", "HS", "HS-Greedy"}

    def test_record_fields(self, tiny_records):
        record = tiny_records[0]
        assert record.category == "tiny"
        assert record.activity_count > 0
        assert record.best_cost <= record.initial_cost
        assert record.visited_states >= 1
        assert record.elapsed_seconds >= 0

    def test_run_algorithm_unknown(self):
        workload = generate_workload("tiny", seed=1)
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="unknown algorithm"):
            run_algorithm(workload, "QUANTUM", ExperimentConfig())

    def test_run_category_subset_of_algorithms(self):
        config = ExperimentConfig(
            categories=("tiny",), workflows_per_category=1
        )
        records = run_category("tiny", config, algorithms=("HS",))
        assert [r.algorithm for r in records] == ["HS"]

    def test_best_known_costs(self, tiny_records):
        reference = best_known_costs(tiny_records)
        assert set(reference) == {("tiny", 1), ("tiny", 2)}
        for (category, seed), cost in reference.items():
            runs = [
                r
                for r in tiny_records
                if r.category == category and r.seed == seed
            ]
            assert cost == min(r.best_cost for r in runs)


class TestTables:
    def test_table1_rows(self, tiny_records):
        rows = table1_rows(tiny_records)
        assert len(rows) == 1
        row = rows[0]
        for algorithm in ("ES", "HS", "HS-Greedy"):
            assert 0 < row[algorithm] <= 100.0

    def test_table1_quality_reference_is_best_known(self, tiny_records):
        row = table1_rows(tiny_records)[0]
        # At least one algorithm per workflow achieved the best-known cost,
        # so the maximum quality must be 100.
        assert max(row[a] for a in ("ES", "HS", "HS-Greedy")) == pytest.approx(
            100.0
        )

    def test_table2_rows(self, tiny_records):
        row = table2_rows(tiny_records)[0]
        assert row["category"] == "tiny"
        assert row["activities_avg"] > 0
        for algorithm in ("ES", "HS", "HS-Greedy"):
            cell = row[algorithm]
            assert cell["visited_states"] >= 1
            assert cell["improvement_percent"] >= 0

    def test_format_table1_includes_paper_values(self, tiny_records):
        text = format_table1(tiny_records)
        assert "Quality of solution" in text
        assert "paper(ES/HS/Greedy)" in text

    def test_format_table2_marks_budget_exhaustion(self, tiny_records):
        text = format_table2(tiny_records)
        assert "did not terminate" in text

    def test_formatting_is_pure(self, tiny_records):
        assert format_table1(tiny_records) == format_table1(tiny_records)


class TestFig4Experiment:
    def test_rows(self):
        rows = run_fig4()
        assert [r.case for r in rows] == ["initial", "distributed", "factorized"]
        by_case = {r.case: r for r in rows}
        assert by_case["distributed"].cost_without_union == pytest.approx(32.0)
        assert by_case["distributed"].paper_cost == 32.0

    def test_format(self):
        text = format_fig4(run_fig4())
        assert "distributed reduces the initial cost" in text
        assert "factorized reduces the initial cost" in text

    def test_scales_with_cardinality(self):
        small = {r.case: r.cost_total for r in run_fig4(cardinality=8)}
        large = {r.case: r.cost_total for r in run_fig4(cardinality=800)}
        for case in small:
            assert large[case] > small[case]


class TestFullPaperRunner:
    def test_full_paper_report(self, monkeypatch, tmp_path, capsys):
        import repro.experiments.full_paper as full_paper

        tiny = ExperimentConfig(
            categories=("tiny",),
            workflows_per_category=1,
            es_max_states={"tiny": 300},
            es_max_seconds=10.0,
        )
        monkeypatch.setattr(
            "repro.experiments.full_paper.ExperimentConfig",
            lambda workflows_per_category: tiny,
        )
        out_file = str(tmp_path / "report.md")
        report = full_paper.main(1, out_file)
        assert "Quality of solution" in report
        assert "Fig. 4" in report
        with open(out_file) as handle:
            assert handle.read().strip().endswith("_")  # the timing line


class TestMainEntrypoints:
    def test_table_mains_run_at_tiny_scale(self, monkeypatch, capsys):
        import repro.experiments.table1 as table1
        import repro.experiments.table2 as table2

        tiny = ExperimentConfig(
            categories=("tiny",),
            workflows_per_category=1,
            es_max_states={"tiny": 500},
            es_max_seconds=10.0,
        )
        monkeypatch.setattr(
            "repro.experiments.table1.ExperimentConfig",
            lambda workflows_per_category: tiny,
        )
        monkeypatch.setattr(
            "repro.experiments.table2.ExperimentConfig",
            lambda workflows_per_category: tiny,
        )
        report1 = table1.main(1)
        report2 = table2.main(1)
        assert "Quality of solution" in report1
        assert "visited" in report2
