"""Physical layer: implementation catalogue, planning, cost model."""

import pytest

from repro.core.activity import Activity, CompositeActivity
from repro.core.cost import ProcessedRowsCostModel, estimate
from repro.core.search import heuristic_search
from repro.core.transitions import Merge
from repro.exceptions import ReproError
from repro.physical import (
    PhysicalCostModel,
    PhysicalPlan,
    implementations_for,
    plan_physical,
)
from repro.templates import builtin as t
from repro.workloads import fig4_states, generate_workload


def _sk(activity_id="1", lookup_size=None):
    params = {"key_attr": "K", "skey_attr": "S", "lookup": "l"}
    if lookup_size is not None:
        params["lookup_size"] = lookup_size
    return Activity(activity_id, t.SURROGATE_KEY, params)


class TestSurrogateKeyFeasibility:
    def test_declared_lookup_size_gates_hash(self):
        sk = _sk(lookup_size=500)
        hash_impl = next(
            i for i in implementations_for(sk) if i.name == "hash_lookup"
        )
        assert hash_impl.feasible(sk, (10.0,), memory=1000)
        assert not hash_impl.feasible(sk, (10.0,), memory=100)

    def test_undeclared_lookup_size_assumed_to_fit(self):
        sk = _sk()
        hash_impl = next(
            i for i in implementations_for(sk) if i.name == "hash_lookup"
        )
        assert hash_impl.feasible(sk, (10.0,), memory=0)


class TestCatalogue:
    def test_every_builtin_template_has_implementations(self):
        from repro.templates import ALL_BUILTIN_TEMPLATES
        from repro.physical.implementations import CATALOGUE

        for template in ALL_BUILTIN_TEMPLATES:
            assert template.name in CATALOGUE

    def test_filters_have_single_scan(self):
        sigma = Activity(
            "1", t.SELECTION, {"attr": "V", "op": ">=", "value": 1}
        )
        (implementation,) = implementations_for(sigma)
        assert implementation.name == "scan"
        assert implementation.cost((100.0,)) == 100.0

    def test_aggregation_hash_vs_sort(self):
        gamma = Activity(
            "1",
            t.AGGREGATION,
            {"group_by": ("K",), "measure": "V", "agg": "sum", "output": "VM"},
            selectivity=0.5,
        )
        names = {i.name for i in implementations_for(gamma)}
        assert names == {"hash_aggregate", "sort_aggregate"}

    def test_hash_aggregate_feasibility_uses_group_count(self):
        gamma = Activity(
            "1",
            t.AGGREGATION,
            {"group_by": ("K",), "measure": "V", "agg": "sum", "output": "VM"},
            selectivity=0.5,
        )
        hash_impl = next(
            i for i in implementations_for(gamma) if i.name == "hash_aggregate"
        )
        # 1000 rows, selectivity 0.5 -> 500 groups.
        assert hash_impl.feasible(gamma, (1000.0,), memory=600)
        assert not hash_impl.feasible(gamma, (1000.0,), memory=400)

    def test_custom_template_falls_back_to_cost_shape(self):
        from repro.core.schema import EMPTY_SCHEMA, Schema
        from repro.templates.base import (
            ActivityKind,
            ActivityTemplate,
            CostShape,
            SchemaPlan,
        )

        custom = ActivityTemplate(
            name="custom_sorter",
            kind=ActivityKind.FUNCTION,
            arity=1,
            cost_shape=CostShape.SORT,
            param_names=(),
            planner=lambda p: SchemaPlan(
                (EMPTY_SCHEMA,), EMPTY_SCHEMA, EMPTY_SCHEMA
            ),
        )
        activity = Activity("1", custom, {})
        (implementation,) = implementations_for(activity)
        assert implementation.name == "sort"


class TestPlanning:
    def test_unlimited_memory_prefers_hash(self, fig1):
        plan = plan_physical(fig1.workflow)
        gamma = fig1.workflow.node_by_id("6")
        assert plan.implementation_of(gamma).name == "hash_aggregate"

    def test_tight_memory_forces_sort(self, fig1):
        plan = plan_physical(fig1.workflow, memory_rows=10)
        gamma = fig1.workflow.node_by_id("6")
        assert plan.implementation_of(gamma).name == "sort_aggregate"

    def test_plan_cost_monotone_in_memory(self, fig1):
        generous = plan_physical(fig1.workflow, memory_rows=1e9)
        tight = plan_physical(fig1.workflow, memory_rows=10)
        assert generous.total_cost <= tight.total_cost

    def test_physical_plan_never_exceeds_logical_cost(self, fig1, model):
        """Every sort-shaped logical price is an available implementation,
        so the physical optimum can only improve on the logical estimate."""
        plan = plan_physical(fig1.workflow, memory_rows=1e9)
        logical = estimate(fig1.workflow, model).total
        assert plan.total_cost <= logical + 1e-9

    def test_composite_planned_component_wise(self, fig1):
        wf = fig1.workflow
        merged_wf = Merge(wf.node_by_id("5"), wf.node_by_id("6")).apply(wf)
        package = merged_wf.node_by_id("5+6")
        plan = plan_physical(merged_wf)
        assert isinstance(package, CompositeActivity)
        for component in package.components:
            assert plan.implementation_of(component) is not None

    def test_unknown_activity_raises(self, fig1, two_branch):
        plan = plan_physical(fig1.workflow)
        foreign = two_branch.workflow.node_by_id("5")
        with pytest.raises(ReproError, match="not part of this"):
            plan.implementation_of(foreign)

    def test_describe_lists_choices(self, fig1):
        text = plan_physical(fig1.workflow).describe()
        assert "hash_aggregate" in text
        assert "total:" in text

    def test_generated_workload_plans(self):
        workload = generate_workload("small", seed=5)
        plan = plan_physical(workload.workflow, memory_rows=1000)
        assert plan.total_cost > 0


class TestPhysicalCostModel:
    def test_prices_cheapest_feasible(self):
        model = PhysicalCostModel(memory_rows=1e9)
        gamma = Activity(
            "1",
            t.AGGREGATION,
            {"group_by": ("K",), "measure": "V", "agg": "sum", "output": "VM"},
            selectivity=0.5,
        )
        assert model.activity_cost(gamma, (1000.0,)) == 1000.0  # hash
        tight = PhysicalCostModel(memory_rows=10)
        assert tight.activity_cost(gamma, (1000.0,)) > 1000.0  # sort

    def test_logical_search_under_physical_costs(self, fig1):
        result = heuristic_search(fig1.workflow, model=PhysicalCostModel())
        assert result.best_cost <= result.initial_cost

    def test_memory_changes_fig4_preference(self):
        """With abundant memory the SK is a linear hash lookup, so
        factorizing vs distributing it is cost-neutral and only the
        selection placement matters; with no memory the sort-based SK
        reappears and distribution wins again."""
        states = fig4_states(cardinality=8)
        plentiful = PhysicalCostModel(memory_rows=1e9)
        starved = PhysicalCostModel(memory_rows=0)
        costs_mem = {
            name: estimate(wf, plentiful).total for name, wf in states.items()
        }
        costs_no_mem = {
            name: estimate(wf, starved).total for name, wf in states.items()
        }
        # Sort-based (memory-starved) costs match the logical model.
        logical = ProcessedRowsCostModel()
        for name, wf in states.items():
            assert costs_no_mem[name] == pytest.approx(
                estimate(wf, logical).total
            )
        # Hash-based SKs flatten the initial-vs-factorized gap.
        gap_mem = costs_mem["initial"] - costs_mem["factorized"]
        gap_no_mem = costs_no_mem["initial"] - costs_no_mem["factorized"]
        assert gap_mem < gap_no_mem
