"""Property-based tests for the engine extensions.

* checkpoint/resume: failing at *any* node and resuming yields exactly
  the clean run's targets, touching only unfinished nodes;
* calibration: measured selectivities are sane and never change workflow
  semantics.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    CheckpointingExecutor,
    CheckpointStore,
    SimulatedFailure,
    as_multiset,
    calibrate_workflow,
    empirically_equivalent,
    measure_selectivities,
)
from repro.workloads import generate_workload

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def workload_case(draw):
    seed = draw(st.integers(0, 100))
    fail_choice = draw(st.integers(0, 10_000))
    return generate_workload("tiny", seed=seed), fail_choice


@given(workload_case())
@_SETTINGS
def test_resume_from_any_failure_point(case):
    workload, fail_choice = case
    data = workload.make_data(1, n=30)
    executor = CheckpointingExecutor(context=workload.context)
    reference = executor.run(workload.workflow, data)

    nodes = workload.workflow.topological_order()
    fail_at = nodes[fail_choice % len(nodes)].id

    store = CheckpointStore()
    try:
        executor.run(
            workload.workflow, data, checkpoints=store, fail_before=fail_at
        )
        # Failing before the first node executes nothing; resume from an
        # empty store is just a clean run.
    except SimulatedFailure:
        pass
    resumed = executor.run(workload.workflow, data, checkpoints=store)
    for name, rows in reference.targets.items():
        assert as_multiset(resumed.targets[name]) == as_multiset(rows)


@given(workload_case())
@_SETTINGS
def test_resume_never_recomputes_checkpointed_nodes(case):
    workload, fail_choice = case
    data = workload.make_data(1, n=30)
    executor = CheckpointingExecutor(context=workload.context)
    nodes = workload.workflow.topological_order()
    fail_at = nodes[fail_choice % len(nodes)].id

    store = CheckpointStore()
    try:
        executor.run(
            workload.workflow, data, checkpoints=store, fail_before=fail_at
        )
    except SimulatedFailure:
        pass
    completed_before_resume = set(store.completed_nodes)
    resumed = executor.run(workload.workflow, data, checkpoints=store)
    recomputed = set(resumed.stats.rows_processed)
    assert not (recomputed & completed_before_resume)


@given(st.integers(0, 100))
@_SETTINGS
def test_measured_selectivities_are_ratios(seed):
    workload = generate_workload("tiny", seed=seed)
    measured = measure_selectivities(
        workload.workflow,
        workload.make_data(2, n=40),
        _executor_for(workload),
    )
    for activity_id, value in measured.items():
        assert 0.0 <= value, (activity_id, value)
        # Unary activities can only shrink or keep their input.
        assert value <= 1.0 + 1e-9, (activity_id, value)


@given(st.integers(0, 100))
@_SETTINGS
def test_calibration_preserves_semantics(seed):
    workload = generate_workload("tiny", seed=seed)
    data = workload.make_data(3, n=40)
    executor = _executor_for(workload)
    calibrated = calibrate_workflow(workload.workflow, data, executor)
    report = empirically_equivalent(
        workload.workflow, calibrated, data, executor
    )
    assert report.equivalent


def _executor_for(workload):
    from repro.engine import Executor

    return Executor(context=workload.context)
