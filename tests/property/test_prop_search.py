"""Property-based tests for the search algorithms."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.equivalence import symbolically_equivalent
from repro.core.search import (
    exhaustive_search,
    greedy_search,
    heuristic_search,
)
from repro.engine import Executor, empirically_equivalent
from repro.workloads import generate_workload

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(st.integers(0, 100))
@_SETTINGS
def test_optimizers_never_worsen(seed):
    workload = generate_workload("tiny", seed=seed)
    for search in (heuristic_search, greedy_search):
        result = search(workload.workflow)
        assert result.best_cost <= result.initial_cost + 1e-9


@given(st.integers(0, 100))
@_SETTINGS
def test_optimized_state_is_equivalent(seed):
    workload = generate_workload("tiny", seed=seed)
    result = heuristic_search(workload.workflow)
    assert symbolically_equivalent(workload.workflow, result.best.workflow)
    report = empirically_equivalent(
        workload.workflow,
        result.best.workflow,
        workload.make_data(2, n=40),
        Executor(context=workload.context),
    )
    assert report.equivalent, report.differences


@given(st.integers(0, 60))
@_SETTINGS
def test_greedy_state_is_equivalent(seed):
    workload = generate_workload("tiny", seed=seed)
    result = greedy_search(workload.workflow)
    report = empirically_equivalent(
        workload.workflow,
        result.best.workflow,
        workload.make_data(3, n=40),
        Executor(context=workload.context),
    )
    assert report.equivalent, report.differences


@given(st.integers(0, 50))
@_SETTINGS
def test_hs_at_least_matches_greedy(seed):
    workload = generate_workload("tiny", seed=seed)
    hs = heuristic_search(workload.workflow)
    greedy = greedy_search(workload.workflow)
    assert hs.best_cost <= greedy.best_cost + 1e-9


@given(st.integers(0, 40))
@_SETTINGS
def test_budgeted_es_never_beats_full_es(seed):
    workload = generate_workload("tiny", seed=seed)
    full = exhaustive_search(workload.workflow, max_states=4000)
    budgeted = exhaustive_search(workload.workflow, max_states=10)
    assert full.best_cost <= budgeted.best_cost + 1e-9


@given(st.integers(0, 80))
@_SETTINGS
def test_search_is_deterministic(seed):
    workload = generate_workload("tiny", seed=seed)
    first = heuristic_search(workload.workflow)
    second = heuristic_search(workload.workflow)
    assert first.best.signature == second.best.signature
    assert first.visited_states == second.visited_states
