"""Property: the fused columnar path is equivalent to the row path.

For any generated workload, seed, and batch size, a streaming run with
the columnar kernels enabled must produce exactly what the same run
produces with ``REPRO_NO_COLUMNAR`` semantics (row-at-a-time operators)
and what the materializing path produces: identical target multisets,
identical per-activity row counters, identical reject multisets.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.flags import set_columnar
from repro.engine import ExecutionBudget, Executor, as_multiset
from repro.workloads import generate_workload

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def engine_case(draw):
    category = draw(st.sampled_from(["tiny", "small"]))
    seed = draw(st.integers(0, 60))
    batch_size = draw(st.sampled_from([1, 2, 3, 7, 16, 64]))
    collect_rejects = draw(st.booleans())
    return category, seed, batch_size, collect_rejects


def _run(executor, workload, data, budget, collect_rejects, columnar):
    previous = set_columnar(columnar)
    try:
        return executor.run(
            workload.workflow,
            data,
            collect_rejects=collect_rejects,
            budget=budget,
        )
    finally:
        set_columnar(previous)


@given(engine_case())
@_SETTINGS
def test_columnar_path_equals_row_path(case):
    category, seed, batch_size, collect_rejects = case
    workload = generate_workload(category, seed=seed)
    data = workload.make_data(seed, n=30)
    executor = Executor(context=workload.context)
    budget = ExecutionBudget(batch_size=batch_size)

    base = executor.run(
        workload.workflow, data, collect_rejects=collect_rejects
    )
    fused = _run(executor, workload, data, budget, collect_rejects, True)
    rowwise = _run(executor, workload, data, budget, collect_rejects, False)

    for name, rows in base.targets.items():
        expected = as_multiset(rows)
        assert as_multiset(fused.targets[name]) == expected
        assert as_multiset(rowwise.targets[name]) == expected

    assert fused.stats.rows_processed == base.stats.rows_processed
    assert fused.stats.rows_output == base.stats.rows_output
    assert rowwise.stats.rows_processed == base.stats.rows_processed

    assert set(fused.rejects) == set(base.rejects) == set(rowwise.rejects)
    for activity_id, dropped in base.rejects.items():
        expected = as_multiset(dropped)
        assert as_multiset(fused.rejects[activity_id]) == expected
        assert as_multiset(rowwise.rejects[activity_id]) == expected


@given(st.integers(0, 60), st.sampled_from([1, 3, 8]))
@_SETTINGS
def test_columnar_checkpoint_resume_matches(seed, batch_size):
    # Batched checkpointing rides the fused kernels too: a resumed run
    # must equal the clean run whichever path computed the prefix.
    from repro.engine import (
        CheckpointingExecutor,
        CheckpointStore,
        SimulatedFailure,
    )

    workload = generate_workload("tiny", seed=seed)
    data = workload.make_data(seed, n=24)
    executor = CheckpointingExecutor(context=workload.context)
    budget = ExecutionBudget(batch_size=batch_size)
    reference = executor.run(workload.workflow, data, budget=budget)

    nodes = workload.workflow.topological_order()
    fail_at = nodes[seed % len(nodes)].id
    store = CheckpointStore()
    previous = set_columnar(False)
    try:
        # Fail mid-run on the ROW path...
        executor.run(
            workload.workflow,
            data,
            checkpoints=store,
            fail_before=fail_at,
            budget=budget,
        )
    except SimulatedFailure:
        pass
    finally:
        set_columnar(previous)
    # ...resume on the COLUMNAR path: mixed-path recovery must agree.
    resumed = executor.run(
        workload.workflow, data, checkpoints=store, budget=budget
    )
    for name, rows in reference.targets.items():
        assert as_multiset(resumed.targets[name]) == as_multiset(rows)
