"""Property-based tests for costing: incremental == full, monotonicity."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cost import (
    LinearCostModel,
    ProcessedRowsCostModel,
    estimate,
    estimate_incremental,
)
from repro.core.transitions import successor_states
from repro.workloads import generate_workload

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def workload_case(draw):
    seed = draw(st.integers(0, 120))
    category = draw(st.sampled_from(["tiny", "small"]))
    choice = draw(st.integers(0, 10_000))
    model = draw(st.sampled_from([ProcessedRowsCostModel(), LinearCostModel()]))
    return generate_workload(category, seed=seed), choice, model


@given(workload_case())
@_SETTINGS
def test_incremental_equals_full(case):
    workload, choice, model = case
    parent_report = estimate(workload.workflow, model)
    successors = list(successor_states(workload.workflow))
    if not successors:
        return
    transition, successor = successors[choice % len(successors)]
    incremental = estimate_incremental(
        successor, model, parent_report, transition.affected_nodes()
    )
    full = estimate(successor, model)
    # Exact: fsum totals are summation-order independent and the dirty
    # cutoff only stops on bit-identical cardinalities (see
    # tests/search/test_incremental_cost.py for the full chain suite).
    assert incremental.total == full.total
    assert incremental.node_costs == full.node_costs
    assert incremental.cardinalities == full.cardinalities


@given(workload_case())
@_SETTINGS
def test_costs_are_non_negative(case):
    workload, _, model = case
    report = estimate(workload.workflow, model)
    assert report.total >= 0
    assert all(cost >= 0 for cost in report.node_costs.values())
    assert all(card >= 0 for card in report.cardinalities.values())


@given(workload_case())
@_SETTINGS
def test_total_is_sum_of_activities(case):
    workload, _, model = case
    report = estimate(workload.workflow, model)
    assert abs(report.total - sum(report.node_costs.values())) < 1e-9


@given(st.integers(0, 120))
@_SETTINGS
def test_estimated_cost_tracks_empirical_rows(seed):
    """The processed-rows estimate and the engine's actual processed-row
    count must agree on *direction* between two equivalent states: if the
    model says a state is much cheaper, the engine must not process more
    rows in it.  (Loose check: rank agreement within 20% slack.)"""
    from repro import optimize
    from repro.engine import Executor

    workload = generate_workload("tiny", seed=seed)
    result = optimize(workload.workflow, algorithm="greedy")
    if result.best_cost >= result.initial_cost * 0.9:
        return  # no meaningful gap to compare
    executor = Executor(context=workload.context)
    data = workload.make_data(1, n=60)
    before = executor.run(workload.workflow, data).stats.total_rows_processed
    after = executor.run(result.best.workflow, data).stats.total_rows_processed
    assert after <= before * 1.2
