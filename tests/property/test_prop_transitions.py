"""Property-based correctness of transitions (the paper's Theorem 2).

For random generated workflows and random chains of applicable
transitions, every derived state must be (a) structurally and schema-wise
valid, (b) symbolically equivalent to the initial state (same target
schemas, same post-condition set), and (c) empirically equivalent — the
execution engine produces identical target multisets on the same input.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.equivalence import symbolically_equivalent
from repro.core.signature import state_signature
from repro.core.transitions import successor_states
from repro.engine import Executor, empirically_equivalent
from repro.workloads import generate_workload

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_walk(workflow, rng_draws, max_steps):
    """Follow a chain of applicable transitions chosen by hypothesis."""
    current = workflow
    path = []
    for choice in rng_draws[:max_steps]:
        successors = list(successor_states(current))
        if not successors:
            break
        transition, nxt = successors[choice % len(successors)]
        path.append((transition, nxt))
        current = nxt
    return current, path


@st.composite
def workload_and_walk(draw):
    seed = draw(st.integers(0, 150))
    category = draw(st.sampled_from(["tiny", "small"]))
    choices = draw(st.lists(st.integers(0, 10_000), min_size=1, max_size=4))
    return generate_workload(category, seed=seed), choices


@given(workload_and_walk())
@_SETTINGS
def test_transition_chain_preserves_validity(case):
    workload, choices = case
    final, path = _random_walk(workload.workflow, choices, max_steps=4)
    final.validate()
    final.propagate_schemas()


@given(workload_and_walk())
@_SETTINGS
def test_transition_chain_preserves_post_condition(case):
    workload, choices = case
    final, path = _random_walk(workload.workflow, choices, max_steps=4)
    if path:
        report = symbolically_equivalent(workload.workflow, final)
        assert report.equivalent, report


@given(workload_and_walk())
@_SETTINGS
def test_transition_chain_preserves_output(case):
    workload, choices = case
    final, path = _random_walk(workload.workflow, choices, max_steps=3)
    if not path:
        return
    data = workload.make_data(0, n=30)
    report = empirically_equivalent(
        workload.workflow, final, data, Executor(context=workload.context)
    )
    assert report.equivalent, report.differences


@given(workload_and_walk())
@_SETTINGS
def test_each_transition_changes_signature(case):
    workload, choices = case
    current = workload.workflow
    for choice in choices[:3]:
        successors = list(successor_states(current))
        if not successors:
            break
        _, nxt = successors[choice % len(successors)]
        assert state_signature(nxt) != state_signature(current)
        current = nxt


@given(workload_and_walk())
@_SETTINGS
def test_transitions_do_not_mutate_source_state(case):
    workload, choices = case
    before = state_signature(workload.workflow)
    _random_walk(workload.workflow, choices, max_steps=3)
    assert state_signature(workload.workflow) == before
