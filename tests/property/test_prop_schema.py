"""Property-based tests for the schema algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schema import Schema

attr_names = st.text(
    alphabet="ABCDEFGHKV_", min_size=1, max_size=6
)
attr_lists = st.lists(attr_names, unique=True, max_size=8)


@given(attr_lists)
def test_construction_roundtrip(attrs):
    assert list(Schema(attrs)) == attrs


@given(attr_lists, attr_lists)
def test_union_contains_both(a, b):
    combined = Schema(a).union(Schema(b))
    assert set(a) | set(b) == combined.as_set


@given(attr_lists, attr_lists)
def test_union_is_idempotent_on_sets(a, b):
    first = Schema(a).union(Schema(b))
    again = first.union(Schema(b))
    assert first == again


@given(attr_lists, attr_lists)
def test_minus_then_union_restores_set(a, b):
    schema_a = Schema(a)
    removed = schema_a.minus(b)
    assert removed.as_set == set(a) - set(b)
    assert removed.issubset(schema_a)


@given(attr_lists, attr_lists)
def test_intersect_commutes_on_sets(a, b):
    left = Schema(a).intersect(Schema(b)).as_set
    right = Schema(b).intersect(Schema(a)).as_set
    assert left == right


@given(attr_lists)
def test_normalized_is_compatible(attrs):
    schema = Schema(attrs)
    assert schema.compatible(schema.normalized())


@given(attr_lists, attr_lists)
def test_compatible_iff_same_sets(a, b):
    assert Schema(a).compatible(Schema(b)) == (set(a) == set(b))


@given(attr_lists)
def test_hash_respects_equality(attrs):
    assert hash(Schema(attrs)) == hash(Schema(list(attrs)))
