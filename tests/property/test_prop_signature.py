"""Signature canonicality properties."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.activity import Activity
from repro.core.signature import state_signature
from repro.core.workflow import ETLWorkflow
from repro.workloads import generate_workload

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _flip_commutative_ports(workflow: ETLWorkflow, which: int) -> ETLWorkflow:
    """Swap the input ports of the ``which``-th commutative binary."""
    flipped = workflow.copy()
    binaries = [
        a
        for a in sorted(flipped.activities(), key=lambda a: a.id)
        if a.is_binary and a.template.commutative
    ]
    if not binaries:
        return flipped
    binary = binaries[which % len(binaries)]
    left, right = flipped.providers(binary)
    flipped.remove_edge(left, binary)
    flipped.remove_edge(right, binary)
    flipped.add_edge(left, binary, port=1)
    flipped.add_edge(right, binary, port=0)
    return flipped


@given(st.integers(0, 120), st.integers(0, 10))
@_SETTINGS
def test_commutative_port_flips_do_not_change_signature(seed, which):
    workload = generate_workload("tiny", seed=seed)
    flipped = _flip_commutative_ports(workload.workflow, which)
    assert state_signature(flipped) == state_signature(workload.workflow)


@given(st.integers(0, 120))
@_SETTINGS
def test_signature_is_pure(seed):
    workload = generate_workload("small", seed=seed)
    first = state_signature(workload.workflow)
    second = state_signature(workload.workflow)
    assert first == second
    assert state_signature(workload.workflow.copy()) == first


@given(st.integers(0, 120))
@_SETTINGS
def test_signature_contains_every_node_id(seed):
    workload = generate_workload("tiny", seed=seed)
    signature = state_signature(workload.workflow)
    for node in workload.workflow.nodes():
        assert node.id in signature


@given(st.integers(0, 60), st.integers(0, 60))
@_SETTINGS
def test_different_workloads_have_different_signatures(seed_a, seed_b):
    if seed_a == seed_b:
        return
    first = generate_workload("small", seed=seed_a)
    second = generate_workload("small", seed=seed_b)
    sig_a = state_signature(first.workflow)
    sig_b = state_signature(second.workflow)
    # Distinct seeds *may* coincide structurally, but then the activity
    # counts agree too; assert no false merging of different structures.
    if sig_a == sig_b:
        assert first.activity_count == second.activity_count
