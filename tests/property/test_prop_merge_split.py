"""Property tests for MER/SPL interleaved with the other transitions."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.activity import Activity, CompositeActivity
from repro.core.equivalence import symbolically_equivalent
from repro.core.signature import state_signature
from repro.core.transitions import Merge, split_fully, successor_states
from repro.engine import Executor, empirically_equivalent
from repro.workloads import generate_workload

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _mergeable_pairs(workflow):
    pairs = []
    for first in sorted(workflow.activities(), key=lambda a: a.id):
        if not first.is_unary:
            continue
        consumers = workflow.consumers(first)
        if len(consumers) != 1:
            continue
        second = consumers[0]
        if (
            isinstance(second, Activity)
            and second.is_unary
            and len(workflow.consumers(second)) == 1
        ):
            pairs.append((first, second))
    return pairs


@st.composite
def merge_walk_case(draw):
    seed = draw(st.integers(0, 120))
    merge_choice = draw(st.integers(0, 10_000))
    walk_choices = draw(st.lists(st.integers(0, 10_000), min_size=0, max_size=3))
    return generate_workload("tiny", seed=seed), merge_choice, walk_choices


@given(merge_walk_case())
@_SETTINGS
def test_merge_walk_split_preserves_semantics(case):
    workload, merge_choice, walk_choices = case
    workflow = workload.workflow
    pairs = _mergeable_pairs(workflow)
    if not pairs:
        return
    first, second = pairs[merge_choice % len(pairs)]
    merged = Merge(first, second).apply(workflow)

    current = merged
    for choice in walk_choices:
        successors = list(successor_states(current))
        if not successors:
            break
        _, current = successors[choice % len(successors)]

    final = split_fully(current)
    assert symbolically_equivalent(workflow, final).equivalent
    report = empirically_equivalent(
        workflow,
        final,
        workload.make_data(0, n=25),
        Executor(context=workload.context),
    )
    assert report.equivalent, report.differences


@given(merge_walk_case())
@_SETTINGS
def test_merge_then_split_is_identity(case):
    workload, merge_choice, _ = case
    workflow = workload.workflow
    pairs = _mergeable_pairs(workflow)
    if not pairs:
        return
    first, second = pairs[merge_choice % len(pairs)]
    merged = Merge(first, second).apply(workflow)
    restored = split_fully(merged)
    assert state_signature(restored) == state_signature(workflow)


@given(merge_walk_case())
@_SETTINGS
def test_merged_state_has_no_internal_transitions(case):
    """No transition may reorder or separate a package's components."""
    workload, merge_choice, _ = case
    workflow = workload.workflow
    pairs = _mergeable_pairs(workflow)
    if not pairs:
        return
    first, second = pairs[merge_choice % len(pairs)]
    merged_state = Merge(first, second).apply(workflow)
    package = next(
        a for a in merged_state.activities() if isinstance(a, CompositeActivity)
    )
    component_ids = {c.id for c in package.components}
    for transition, successor in successor_states(merged_state):
        for activity in successor.activities():
            # The components never reappear as standalone activities.
            if not isinstance(activity, CompositeActivity):
                assert activity.id not in component_ids
