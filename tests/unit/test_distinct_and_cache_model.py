"""Unit tests for the DISTINCT template and the cache-aware cost model."""

import pytest

from repro.core.activity import Activity
from repro.core.cost import CacheAwareCostModel, ProcessedRowsCostModel, estimate
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.transitions import Swap
from repro.core.workflow import ETLWorkflow
from repro.engine import EngineContext, Executor, default_scalar_functions
from repro.exceptions import TemplateError
from repro.templates import DISTINCT
from repro.templates import builtin as t


def _chain(*nodes):
    wf = ETLWorkflow()
    for node in nodes:
        wf.add_node(node)
    for provider, consumer in zip(nodes, nodes[1:]):
        wf.add_edge(provider, consumer)
    wf.validate()
    wf.propagate_schemas()
    return wf


def _distinct(activity_id="2", keys=("K",), selectivity=0.5):
    return Activity(
        activity_id, DISTINCT, {"group_by": keys}, selectivity=selectivity
    )


class TestDistinctTemplate:
    def test_schemata(self):
        activity = _distinct(keys=("K", "D"))
        assert set(activity.functionality) == {"K", "D"}
        assert len(activity.generated) == 0
        assert len(activity.projected_out) == 0

    def test_empty_keys_rejected(self):
        with pytest.raises(TemplateError, match="non-empty"):
            _distinct(keys=())

    def test_output_schema_unchanged(self):
        out = _distinct().derive_output((Schema(["K", "V"]),))
        assert out == Schema(["K", "V"])

    def test_never_distributes(self):
        assert _distinct().distributes_over == frozenset()


class TestDistinctSwaps:
    def _state(self, first, second):
        src = RecordSet("1", "S", Schema(["K", "V"]), RecordSetKind.SOURCE, 10)
        dw = RecordSet("4", "DW", Schema(["K", "V"]), RecordSetKind.TARGET)
        return _chain(src, first, second, dw)

    def test_filter_on_key_crosses_distinct(self):
        sigma = Activity(
            "2", t.SELECTION, {"attr": "K", "op": ">=", "value": 5}, selectivity=0.5
        )
        distinct = _distinct("3")
        wf = self._state(sigma, distinct)
        assert Swap(sigma, distinct).is_applicable(wf)

    def test_filter_on_non_key_blocked(self):
        sigma = Activity(
            "2", t.SELECTION, {"attr": "V", "op": ">=", "value": 5}, selectivity=0.5
        )
        distinct = _distinct("3")
        wf = self._state(sigma, distinct)
        assert not Swap(sigma, distinct).is_applicable(wf)

    def test_two_distincts_never_swap(self):
        first = _distinct("2", keys=("K",))
        second = _distinct("3", keys=("K", "V"))
        wf = self._state(first, second)
        assert not Swap(first, second).is_applicable(wf)


class TestDistinctExecution:
    def _executor(self):
        return Executor(
            context=EngineContext(scalar_functions=default_scalar_functions())
        )

    def _run(self, rows, keys=("K",)):
        src = RecordSet("1", "S", Schema(["K", "V"]), RecordSetKind.SOURCE, 10)
        distinct = _distinct("2", keys=keys)
        dw = RecordSet("4", "DW", Schema(["K", "V"]), RecordSetKind.TARGET)
        wf = _chain(src, distinct, dw)
        return self._executor().run(wf, {"S": rows}).targets["DW"]

    def test_keeps_one_row_per_key(self):
        rows = [{"K": 1, "V": 2}, {"K": 1, "V": 1}, {"K": 2, "V": 9}]
        out = self._run(rows)
        assert len(out) == 2
        assert {"K": 2, "V": 9} in out

    def test_survivor_is_order_independent(self):
        rows = [{"K": 1, "V": 2}, {"K": 1, "V": 1}]
        assert self._run(rows) == self._run(list(reversed(rows)))

    def test_survivor_is_minimum_row(self):
        rows = [{"K": 1, "V": 2}, {"K": 1, "V": 1}]
        assert self._run(rows) == [{"K": 1, "V": 1}]

    def test_swapped_filter_equivalence_on_data(self):
        """Engine-level check of the key-filter/distinct commutation."""
        src = RecordSet("1", "S", Schema(["K", "V"]), RecordSetKind.SOURCE, 10)
        sigma = Activity(
            "2", t.SELECTION, {"attr": "K", "op": ">=", "value": 2}, selectivity=0.5
        )
        distinct = _distinct("3")
        dw = RecordSet("4", "DW", Schema(["K", "V"]), RecordSetKind.TARGET)
        wf = _chain(src, sigma, distinct, dw)
        swapped = Swap(sigma, distinct).apply(wf)
        rows = [
            {"K": k, "V": v}
            for k, v in [(1, 5), (2, 3), (2, 8), (3, 1), (3, 1), (4, 0)]
        ]
        from repro.engine import empirically_equivalent

        report = empirically_equivalent(wf, swapped, {"S": rows}, self._executor())
        assert report.equivalent


class TestCacheAwareModel:
    def test_sk_priced_with_setup(self):
        model = CacheAwareCostModel(setup_cost=50.0)
        sk = Activity(
            "1", t.SURROGATE_KEY, {"key_attr": "K", "skey_attr": "S", "lookup": "l"}
        )
        assert model.activity_cost(sk, (8.0,)) == 58.0

    def test_other_templates_unchanged(self):
        cache = CacheAwareCostModel(setup_cost=50.0)
        plain = ProcessedRowsCostModel()
        sigma = Activity(
            "1", t.SELECTION, {"attr": "V", "op": ">=", "value": 1}, selectivity=0.5
        )
        assert cache.activity_cost(sigma, (100.0,)) == plain.activity_cost(
            sigma, (100.0,)
        )

    def test_negative_setup_rejected(self):
        with pytest.raises(ValueError):
            CacheAwareCostModel(setup_cost=-1.0)

    def test_custom_cached_templates(self):
        model = CacheAwareCostModel(
            setup_cost=10.0, cached_templates=frozenset({"aggregation"})
        )
        gamma = Activity(
            "1",
            t.AGGREGATION,
            {"group_by": ("K",), "measure": "V", "agg": "sum", "output": "VM"},
        )
        assert model.activity_cost(gamma, (8.0,)) == 18.0

    def test_fig4_flip(self, fig4):
        """Under caching the factorized design gets cheaper than the
        distributed one — the paper's section 2.2 argument."""
        states, _ = fig4
        plain = ProcessedRowsCostModel()
        cached = CacheAwareCostModel(setup_cost=100.0)
        plain_costs = {
            name: estimate(wf, plain).total for name, wf in states.items()
        }
        cached_costs = {
            name: estimate(wf, cached).total for name, wf in states.items()
        }
        assert plain_costs["distributed"] < plain_costs["factorized"]
        assert cached_costs["factorized"] < cached_costs["distributed"]

    def test_composite_pricing(self):
        from repro.core.activity import CompositeActivity

        model = CacheAwareCostModel(setup_cost=50.0)
        sk = Activity(
            "1", t.SURROGATE_KEY, {"key_attr": "K", "skey_attr": "S", "lookup": "l"}
        )
        sigma = Activity(
            "2", t.SELECTION, {"attr": "V", "op": ">=", "value": 1}, selectivity=0.5
        )
        package = CompositeActivity((sigma, sk))
        # σ on 100 rows (100) + SK on 50 rows (50 + 50 setup).
        assert model.activity_cost(package, (100.0,)) == 200.0
