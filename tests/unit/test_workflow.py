"""Unit tests for the workflow graph: structure, propagation, local groups."""

import pytest

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.workflow import ETLWorkflow
from repro.exceptions import SchemaError, WorkflowError
from repro.templates import builtin as t


def source(node_id="1", name="S", attrs=("KEY", "V1"), cardinality=100.0):
    return RecordSet(node_id, name, Schema(attrs), RecordSetKind.SOURCE, cardinality)


def target(node_id="9", name="DW", attrs=("KEY", "V1")):
    return RecordSet(node_id, name, Schema(attrs), RecordSetKind.TARGET)


def filter_activity(node_id="2", attr="V1"):
    return Activity(node_id, t.NOT_NULL, {"attr": attr}, selectivity=0.9)


def linear_workflow():
    """source -> NN -> target"""
    wf = ETLWorkflow()
    src = wf.add_node(source())
    nn = wf.add_node(filter_activity())
    dst = wf.add_node(target())
    wf.add_edge(src, nn)
    wf.add_edge(nn, dst)
    return wf, src, nn, dst


class TestConstruction:
    def test_add_duplicate_node_rejected(self):
        wf = ETLWorkflow()
        node = source()
        wf.add_node(node)
        with pytest.raises(WorkflowError, match="already in workflow"):
            wf.add_node(node)

    def test_add_duplicate_id_rejected(self):
        wf = ETLWorkflow()
        wf.add_node(source("1", "A"))
        with pytest.raises(WorkflowError, match="duplicate node id"):
            wf.add_node(source("1", "B"))

    def test_add_edge_unknown_node(self):
        wf = ETLWorkflow()
        src = wf.add_node(source())
        with pytest.raises(WorkflowError, match="not in workflow"):
            wf.add_edge(src, filter_activity())

    def test_add_edge_twice_rejected(self):
        wf, src, nn, _ = linear_workflow()
        with pytest.raises(WorkflowError, match="already exists"):
            wf.add_edge(src, nn)

    def test_bad_port_rejected(self):
        wf = ETLWorkflow()
        src = wf.add_node(source())
        nn = wf.add_node(filter_activity())
        with pytest.raises(WorkflowError, match="port"):
            wf.add_edge(src, nn, port=2)

    def test_non_node_rejected(self):
        with pytest.raises(WorkflowError, match="not a workflow node"):
            ETLWorkflow().add_node("not-a-node")

    def test_node_by_id(self):
        wf, _, nn, _ = linear_workflow()
        assert wf.node_by_id("2") is nn
        with pytest.raises(WorkflowError):
            wf.node_by_id("404")


class TestValidate:
    def test_linear_workflow_is_valid(self):
        wf, *_ = linear_workflow()
        wf.validate()
        assert wf.is_valid()

    def test_empty_workflow_invalid(self):
        with pytest.raises(WorkflowError, match="empty"):
            ETLWorkflow().validate()

    def test_activity_without_consumer(self):
        wf = ETLWorkflow()
        src = wf.add_node(source())
        nn = wf.add_node(filter_activity())
        wf.add_edge(src, nn)
        with pytest.raises(WorkflowError, match="no consumer"):
            wf.validate()

    def test_activity_without_provider(self):
        wf = ETLWorkflow()
        nn = wf.add_node(filter_activity())
        dst = wf.add_node(target())
        wf.add_edge(nn, dst)
        with pytest.raises(WorkflowError, match="arity 1 but 0"):
            wf.validate()

    def test_binary_needs_two_providers(self):
        wf = ETLWorkflow()
        src = wf.add_node(source())
        union = wf.add_node(Activity("5", t.UNION, {}))
        dst = wf.add_node(target())
        wf.add_edge(src, union, port=0)
        wf.add_edge(union, dst)
        with pytest.raises(WorkflowError, match="arity 2 but 1"):
            wf.validate()

    def test_binary_port_collision(self):
        wf = ETLWorkflow()
        s1 = wf.add_node(source("1", "A"))
        s2 = wf.add_node(source("2", "B"))
        union = wf.add_node(Activity("5", t.UNION, {}))
        dst = wf.add_node(target())
        wf.add_edge(s1, union, port=0)
        wf.add_edge(s2, union, port=0)
        wf.add_edge(union, dst)
        with pytest.raises(WorkflowError, match="ports"):
            wf.validate()

    def test_source_with_provider_invalid(self):
        wf = ETLWorkflow()
        s1 = wf.add_node(source("1", "A"))
        s2 = wf.add_node(source("2", "B"))
        wf.add_edge(s1, s2)
        with pytest.raises(WorkflowError):
            wf.validate()

    def test_cycle_detected(self):
        wf = ETLWorkflow()
        a = wf.add_node(filter_activity("1"))
        b = wf.add_node(filter_activity("2"))
        wf.add_edge(a, b)
        wf.add_edge(b, a)
        with pytest.raises(WorkflowError, match="cycle"):
            wf.validate()

    def test_target_with_consumer_invalid(self):
        wf = ETLWorkflow()
        src = wf.add_node(source())
        dst = wf.add_node(target("8"))
        other = wf.add_node(filter_activity("3"))
        dst2 = wf.add_node(target("9", "DW2"))
        wf.add_edge(src, dst)
        wf.add_edge(dst, other)
        wf.add_edge(other, dst2)
        with pytest.raises(WorkflowError, match="has a consumer"):
            wf.validate()


class TestPropagation:
    def test_linear_propagation(self):
        wf, src, nn, dst = linear_workflow()
        derived = wf.propagate_schemas()
        assert derived[src].output == Schema(["KEY", "V1"])
        assert derived[nn].inputs == (Schema(["KEY", "V1"]),)
        assert derived[dst].output == Schema(["KEY", "V1"])

    def test_functionality_violation_detected(self):
        wf = ETLWorkflow()
        src = wf.add_node(source(attrs=("KEY",)))
        nn = wf.add_node(filter_activity(attr="GHOST"))
        dst = wf.add_node(target(attrs=("KEY",)))
        wf.add_edge(src, nn)
        wf.add_edge(nn, dst)
        with pytest.raises(SchemaError, match="missing"):
            wf.propagate_schemas()
        assert not wf.is_valid()

    def test_target_schema_mismatch_detected(self):
        wf = ETLWorkflow()
        src = wf.add_node(source(attrs=("KEY", "V1")))
        nn = wf.add_node(filter_activity())
        dst = wf.add_node(target(attrs=("KEY", "V1", "EXTRA")))
        wf.add_edge(src, nn)
        wf.add_edge(nn, dst)
        with pytest.raises(SchemaError, match="declared"):
            wf.propagate_schemas()

    def test_generated_attribute_appears_downstream(self):
        wf = ETLWorkflow()
        src = wf.add_node(source(attrs=("KEY", "V1")))
        convert = wf.add_node(
            Activity(
                "2",
                t.FUNCTION_APPLY,
                {"function": "scale_double", "inputs": ("V1",), "output": "W1"},
            )
        )
        dst = wf.add_node(target(attrs=("KEY", "W1")))
        wf.add_edge(src, convert)
        wf.add_edge(convert, dst)
        derived = wf.propagate_schemas()
        assert derived[convert].output.attrs == ("KEY", "W1")


class TestTopology:
    def test_topological_order_is_deterministic(self):
        wf, src, nn, dst = linear_workflow()
        assert wf.topological_order() == [src, nn, dst]
        assert wf.topological_order() == [src, nn, dst]  # cached path

    def test_cache_invalidation_on_mutation(self):
        wf, src, nn, dst = linear_workflow()
        wf.topological_order()
        extra = wf.add_node(filter_activity("3", attr="KEY"))
        wf.remove_edge(nn, dst)
        wf.add_edge(nn, extra)
        wf.add_edge(extra, dst)
        assert wf.topological_order() == [src, nn, extra, dst]

    def test_copy_shares_nodes_not_structure(self):
        wf, src, nn, dst = linear_workflow()
        dup = wf.copy()
        assert nn in dup
        dup.remove_edge(nn, dst)
        assert wf.graph.has_edge(nn, dst)
        assert not dup.graph.has_edge(nn, dst)

    def test_sources_and_targets(self):
        wf, src, _, dst = linear_workflow()
        assert wf.sources() == [src]
        assert wf.targets() == [dst]

    def test_downstream(self):
        wf, src, nn, dst = linear_workflow()
        assert wf.downstream(src) == {nn, dst}
        assert wf.downstream(dst) == set()

    def test_len_and_contains(self):
        wf, src, *_ = linear_workflow()
        assert len(wf) == 3
        assert src in wf


class TestLocalGroups:
    def test_fig1_groups(self, fig1):
        groups = [[a.id for a in g] for g in fig1.workflow.local_groups()]
        assert groups == [["3"], ["4", "5", "6"], ["8"]]

    def test_group_of(self, fig1):
        wf = fig1.workflow
        activity = wf.node_by_id("5")
        assert [a.id for a in wf.group_of(activity)] == ["4", "5", "6"]

    def test_group_of_binary_raises(self, fig1):
        wf = fig1.workflow
        union = wf.node_by_id("7")
        with pytest.raises(WorkflowError):
            wf.group_of(union)

    def test_linear_workflow_single_group(self):
        wf, _, nn, _ = linear_workflow()
        groups = wf.local_groups()
        assert len(groups) == 1
        assert groups[0] == [nn]
