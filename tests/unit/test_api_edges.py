"""Edge cases and error paths across the public API."""

import pytest

from repro import ReproError, optimize
from repro.core.cost import estimate
from repro.core.search.result import OptimizationResult
from repro.core.search.state import SearchState
from repro.exceptions import (
    ExecutionError,
    NamingError,
    ReproError as BaseError,
    SchemaError,
    SearchBudgetExceeded,
    TemplateError,
    TransitionError,
    WorkflowError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            NamingError,
            SchemaError,
            WorkflowError,
            TransitionError,
            TemplateError,
            ExecutionError,
            SearchBudgetExceeded,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, BaseError)

    def test_catching_base_covers_all(self, fig1):
        with pytest.raises(ReproError):
            optimize(fig1.workflow, algorithm="nope")


class TestSearchStateEdges:
    def test_initial_rejects_invalid_workflow(self, model):
        from repro.core.workflow import ETLWorkflow

        with pytest.raises(WorkflowError):
            SearchState.initial(ETLWorkflow(), model)

    def test_state_cost_matches_report(self, fig1, model):
        state = SearchState.initial(fig1.workflow, model)
        assert state.cost == estimate(fig1.workflow, model).total
        assert state.depth == 0
        assert state.produced_by is None


class TestOptimizationResultEdges:
    def _result(self, fig1, model, best_cost_factor=0.5):
        initial = SearchState.initial(fig1.workflow, model)
        return OptimizationResult(
            algorithm="X",
            initial=initial,
            best=initial,
            visited_states=1,
            elapsed_seconds=0.0,
        )

    def test_zero_improvement_when_unchanged(self, fig1, model):
        result = self._result(fig1, model)
        assert result.improvement_percent == 0.0

    def test_quality_capped_at_100(self, fig1, model):
        result = self._result(fig1, model)
        assert result.quality_percent(result.best_cost * 2) == 100.0

    def test_quality_ratio(self, fig1, model):
        result = self._result(fig1, model)
        assert result.quality_percent(result.best_cost / 2) == pytest.approx(50.0)

    def test_summary_marks_budget_exhaustion(self, fig1, model):
        initial = SearchState.initial(fig1.workflow, model)
        result = OptimizationResult(
            algorithm="ES",
            initial=initial,
            best=initial,
            visited_states=1,
            elapsed_seconds=0.0,
            completed=False,
        )
        assert "budget exhausted" in result.summary()


class TestCostModelEdges:
    def test_zero_cardinality_source(self, model):
        from repro.core.builder import WorkflowBuilder

        b = WorkflowBuilder()
        src = b.source("S", ["K"], cardinality=0)
        nn = b.activity("not_null", {"attr": "K"})
        b.chain(src, nn)
        b.target("DW", ["K"], provider=nn)
        report = estimate(b.build(), model)
        assert report.total == 0.0

    def test_unknown_cost_shape_rejected(self):
        from repro.core.cost.formulas import cost_for_shape

        with pytest.raises(BaseError):
            cost_for_shape("not-a-shape", (1.0,))


class TestRenderEdges:
    def test_dot_labels_ports_of_noncommutative_binary(self):
        from repro.core.builder import WorkflowBuilder
        from repro.io import to_dot

        b = WorkflowBuilder()
        left = b.source("L", ["K"], cardinality=1)
        right = b.source("R", ["K"], cardinality=1)
        diff = b.combine("difference", left, right)
        b.target("DW", ["K"], provider=diff)
        dot = to_dot(b.build())
        assert '[label="0"]' in dot
        assert '[label="1"]' in dot

    def test_dot_dashes_composites(self, fig1):
        from repro.core.transitions import Merge
        from repro.io import to_dot

        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        assert "style=dashed" in to_dot(merged)


class TestEngineEdges:
    def test_binary_flow_with_duplicate_rows_union(self):
        """Union is a bag even for fully identical branches."""
        from repro.core.builder import WorkflowBuilder
        from repro.engine import Executor

        b = WorkflowBuilder()
        left = b.source("L", ["K"], cardinality=1)
        right = b.source("R", ["K"], cardinality=1)
        union = b.combine("union", left, right)
        b.target("DW", ["K"], provider=union)
        wf = b.build()
        out = Executor().run(wf, {"L": [{"K": 1}], "R": [{"K": 1}]})
        assert len(out.targets["DW"]) == 2

    def test_empty_sources_flow_through(self, fig1, fig1_executor):
        data = {"PARTS1": [], "PARTS2": []}
        result = fig1_executor.run(fig1.workflow, data)
        assert result.targets["DW"] == []
