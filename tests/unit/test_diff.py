"""Unit tests for the telemetry/benchmark regression diff (repro.obs.diff)."""

from __future__ import annotations

import json

import pytest

from repro.obs import Recorder
from repro.obs.diff import (
    DEFAULT_POLICIES,
    MetricPolicy,
    compare_files,
    compare_metrics,
    flatten_metrics,
    load_metrics,
)


def _write_json(path, payload):
    path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return str(path)


class TestFlatten:
    def test_nested_dicts_become_dotted_paths(self):
        flat = flatten_metrics(
            {"cache": {"warm_cache_hits": 22}, "best_cost": 1100.0}
        )
        assert flat["cache.warm_cache_hits"] == 22
        assert flat["best_cost"] == 1100.0

    def test_lists_indexed_and_bools_numeric(self):
        flat = flatten_metrics(
            {"runs": [{"identical": True}, {"identical": False}]}
        )
        assert flat["runs[0].identical"] == 1
        assert flat["runs[1].identical"] == 0

    def test_strings_dropped(self):
        assert flatten_metrics({"category": "large"}) == {}


class TestCompare:
    def test_identical_metrics_pass(self):
        metrics = {"best_cost": 1100.0, "visited_states": 1073}
        report = compare_metrics(metrics, dict(metrics))
        assert report.ok
        assert report.regressions == []

    def test_injected_cost_regression_fails(self):
        report = compare_metrics(
            {"best_cost": 100.0}, {"best_cost": 125.0}  # +25% > 10% gate
        )
        assert not report.ok
        (diff,) = report.regressions
        assert diff.metric == "best_cost"
        assert diff.delta_pct == pytest.approx(25.0)

    def test_cost_improvement_passes(self):
        report = compare_metrics({"best_cost": 100.0}, {"best_cost": 80.0})
        assert report.ok

    def test_wall_clock_is_informational(self):
        # A 10x slowdown in a seconds-like metric must not gate: CI
        # machines vary, so time never fails the build.
        report = compare_metrics(
            {"serial_seconds": 1.0}, {"serial_seconds": 10.0}
        )
        assert report.ok

    def test_cache_hit_drop_fails(self):
        report = compare_metrics(
            {"cache.warm_cache_hits": 22}, {"cache.warm_cache_hits": 10}
        )
        assert not report.ok

    def test_boolean_invariant_gates_at_zero(self):
        report = compare_metrics(
            {"budgeted.within_budget": 1}, {"budgeted.within_budget": 0}
        )
        assert not report.ok

    def test_fail_threshold_override_loosens_gate(self):
        report = compare_metrics(
            {"best_cost": 100.0}, {"best_cost": 125.0}, fail_threshold=50.0
        )
        assert report.ok

    def test_custom_policy_first_match_wins(self):
        policies = (
            MetricPolicy("special", "info"),
        ) + DEFAULT_POLICIES
        report = compare_metrics(
            {"special_best_cost": 1.0},
            {"special_best_cost": 10.0},
            policies=policies,
        )
        assert report.ok

    def test_render_lists_regressions(self):
        report = compare_metrics({"best_cost": 100.0}, {"best_cost": 130.0})
        text = report.render()
        assert "best_cost" in text
        assert "regressed" in text


class TestCompareFiles:
    def test_bench_json_files(self, tmp_path):
        baseline = _write_json(
            tmp_path / "base.json", {"best_cost": 100.0, "spilled_rows": 0}
        )
        current = _write_json(
            tmp_path / "curr.json", {"best_cost": 130.0, "spilled_rows": 0}
        )
        report = compare_files(baseline, current)
        assert not report.ok
        assert compare_files(baseline, baseline).ok

    def test_telemetry_jsonl_files(self, tmp_path):
        def jsonl(name, hits):
            recorder = Recorder()
            recorder.counter("cache", outcome="hit").add(hits)
            path = tmp_path / name
            recorder.flush_jsonl(path)
            return str(path)

        baseline = jsonl("base.jsonl", 20)
        worse = jsonl("curr.jsonl", 5)
        assert compare_files(baseline, baseline).ok
        assert not compare_files(baseline, worse).ok

    def test_to_dict_round_trips(self, tmp_path):
        baseline = _write_json(tmp_path / "b.json", {"best_cost": 1.0})
        report = compare_files(baseline, baseline)
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["regressions"] == []
        assert isinstance(payload["rows"], list)
