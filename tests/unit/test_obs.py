"""Unit tests for the observability layer (spans, counters, reports)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    Recorder,
    get_recorder,
    load_events,
    render_summary,
    set_recorder,
    summarize,
    use_recorder,
)


def _spans(recorder):
    return [e for e in recorder.events() if e["type"] == "span"]


class TestSpans:
    def test_span_measures_and_tags(self):
        recorder = Recorder()
        with recorder.span("work", phase="I"):
            pass
        (span,) = _spans(recorder)
        assert span["name"] == "work"
        assert span["tags"] == {"phase": "I"}
        assert span["seconds"] >= 0.0
        assert span["parent_id"] is None

    def test_nesting_sets_parent_ids(self):
        recorder = Recorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        outer, inner = sorted(_spans(recorder), key=lambda s: s["name"])[::-1]
        assert outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]

    def test_record_span_parents_under_current(self):
        recorder = Recorder()
        with recorder.span("outer"):
            recorder.record_span("measured", 0.5, chain=3)
        by_name = {s["name"]: s for s in _spans(recorder)}
        assert by_name["measured"]["seconds"] == 0.5
        assert by_name["measured"]["parent_id"] == by_name["outer"]["span_id"]

    def test_span_recorded_even_when_body_raises(self):
        recorder = Recorder()
        with pytest.raises(ValueError):
            with recorder.span("doomed"):
                raise ValueError("boom")
        assert [s["name"] for s in _spans(recorder)] == ["doomed"]


class TestRegistries:
    def test_counter_accumulates_per_tag_set(self):
        recorder = Recorder()
        recorder.counter("hits", kind="cost").add()
        recorder.counter("hits", kind="cost").add(2)
        recorder.counter("hits", kind="group").add()
        events = {
            tuple(sorted(e["tags"].items())): e["value"]
            for e in recorder.events()
            if e["type"] == "counter"
        }
        assert events[(("kind", "cost"),)] == 3
        assert events[(("kind", "group"),)] == 1

    def test_gauge_tracks_last_and_max(self):
        recorder = Recorder()
        gauge = recorder.gauge("resident")
        gauge.set(10)
        gauge.set(50)
        gauge.set(20)
        (event,) = [e for e in recorder.events() if e["type"] == "gauge"]
        assert event["value"] == 20
        assert event["max"] == 50


class TestAbsorb:
    def test_worker_buffer_merges_into_parent(self):
        worker = Recorder()
        with worker.span("search.group", members=3):
            worker.counter("explored").add(7)
        worker.gauge("peak").set(42)

        parent = Recorder()
        parent.counter("explored").add(1)
        parent.gauge("peak").set(10)
        with parent.span("search.phase", phase="I"):
            parent.absorb(worker.events())

        by_name = {s["name"]: s for s in _spans(parent)}
        assert (
            by_name["search.group"]["parent_id"]
            == by_name["search.phase"]["span_id"]
        )
        counters = [e for e in parent.events() if e["type"] == "counter"]
        assert counters[0]["value"] == 8  # summed
        gauges = [e for e in parent.events() if e["type"] == "gauge"]
        assert gauges[0]["max"] == 42  # maxed

    def test_absorb_none_and_empty_are_noops(self):
        recorder = Recorder()
        recorder.absorb(None)
        recorder.absorb([])
        assert recorder.events() == []

    def test_colliding_worker_span_ids_stay_distinct(self):
        # Pool workers are recycled (and forked workers share id counters),
        # so two shipped buffers can legitimately carry the *same* local
        # span ids; absorb must namespace them apart per buffer.
        def buffer():
            worker = Recorder()
            with worker.span("search.group"):
                with worker.span("search.state"):
                    pass
            return worker.events()

        first, second = buffer(), buffer()
        local_ids = [e["span_id"] for e in first if e["type"] == "span"]
        assert local_ids == [
            e["span_id"] for e in second if e["type"] == "span"
        ], "precondition: the two buffers collide on local span ids"

        parent = Recorder()
        parent.absorb(first)
        parent.absorb(second)
        spans = _spans(parent)
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids)) == 4  # no collisions survive
        # Intra-buffer parent links are remapped into the same namespace.
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] in ids
                namespace = span["span_id"].split(":", 1)[0]
                assert span["parent_id"].startswith(f"{namespace}:")

    def test_absorb_carries_structured_events(self):
        worker = Recorder()
        worker.record_event("search.transition", mnemonic="SWA", accepted=True)
        parent = Recorder()
        parent.absorb(worker.events())
        (event,) = [e for e in parent.events() if e["type"] == "event"]
        assert event["name"] == "search.transition"
        assert event["fields"]["mnemonic"] == "SWA"


class TestStructuredEvents:
    def test_record_event_captures_fields(self):
        recorder = Recorder()
        recorder.record_event("search.transition", mnemonic="DIS", accepted=False)
        (event,) = [e for e in recorder.events() if e["type"] == "event"]
        assert event["fields"] == {"mnemonic": "DIS", "accepted": False}

    def test_null_recorder_drops_events(self):
        NULL_RECORDER.record_event("search.transition", mnemonic="SWA")
        assert NULL_RECORDER.events() == []

    def test_summarize_groups_by_decision(self):
        recorder = Recorder()
        for accepted in (True, True, False):
            recorder.record_event(
                "search.transition",
                algorithm="HS",
                mnemonic="SWA",
                accepted=accepted,
            )
        summary = summarize(recorder.events())
        assert summary["structured_events"] == 3
        assert summary["events"] == {
            "search.transition[algorithm=HS,mnemonic=SWA,accepted]": 2,
            "search.transition[algorithm=HS,mnemonic=SWA,rejected]": 1,
        }
        assert "search.transition[algorithm=HS,mnemonic=SWA,accepted]" in (
            render_summary(summary)
        )


class TestFlushAndLoad:
    def test_jsonl_round_trip(self, tmp_path):
        recorder = Recorder()
        with recorder.span("phase", phase="II"):
            pass
        recorder.counter("transitions", mnemonic="SWA").add(5)
        path = tmp_path / "t.jsonl"
        recorder.flush_jsonl(path)

        events = load_events(str(path))
        assert events[0] == {"type": "meta", "format_version": 1}
        kinds = {e["type"] for e in events}
        assert kinds == {"meta", "span", "counter"}
        # Every line is standalone JSON (the JSONL contract).
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)


class TestActiveRecorder:
    def test_default_is_null_recorder(self):
        assert get_recorder() is NULL_RECORDER
        assert not get_recorder().active

    def test_use_recorder_installs_and_restores(self):
        recorder = Recorder()
        with use_recorder(recorder) as active:
            assert active is recorder
            assert get_recorder() is recorder
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_none_disables(self):
        previous = set_recorder(Recorder())
        assert previous is NULL_RECORDER
        set_recorder(None)
        assert get_recorder() is NULL_RECORDER

    def test_null_recorder_records_nothing(self):
        with NULL_RECORDER.span("ignored", tag=1):
            NULL_RECORDER.counter("ignored").add(5)
            NULL_RECORDER.gauge("ignored").set(5)
            NULL_RECORDER.record_span("ignored", 1.0)
        assert NULL_RECORDER.events() == []


class TestSummarize:
    def _events(self):
        recorder = Recorder()
        with recorder.span("search.phase", phase="I"):
            pass
        with recorder.span("search.phase", phase="I"):
            pass
        recorder.record_span("engine.operator", 0.25, activity="7")
        recorder.counter("search.transitions", mnemonic="SWA").add(3)
        recorder.gauge("engine.resident_rows.peak").set(128)
        return recorder.events()

    def test_spans_grouped_by_identifying_tag(self):
        summary = summarize(self._events())
        assert summary["span_events"] == 3
        assert summary["spans"]["search.phase[phase=I]"]["count"] == 2
        row = summary["spans"]["engine.operator[activity=7]"]
        assert row["total_seconds"] == 0.25
        assert summary["counters"]["search.transitions[mnemonic=SWA]"] == 3
        assert summary["gauges"]["engine.resident_rows.peak"]["max"] == 128

    def test_render_contains_all_tables(self):
        rendered = render_summary(summarize(self._events()))
        assert "search.phase[phase=I]" in rendered
        assert "engine.operator[activity=7]" in rendered
        assert "search.transitions[mnemonic=SWA]" in rendered
        assert "engine.resident_rows.peak" in rendered

    def test_render_empty_summary(self):
        assert "no spans recorded" in render_summary(summarize([]))
