"""Unit tests for the observability layer (spans, counters, reports)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    Histogram,
    Recorder,
    filter_trace,
    get_recorder,
    load_events,
    new_trace_id,
    render_summary,
    render_trace,
    set_recorder,
    summarize,
    use_recorder,
)


def _spans(recorder):
    return [e for e in recorder.events() if e["type"] == "span"]


class TestSpans:
    def test_span_measures_and_tags(self):
        recorder = Recorder()
        with recorder.span("work", phase="I"):
            pass
        (span,) = _spans(recorder)
        assert span["name"] == "work"
        assert span["tags"] == {"phase": "I"}
        assert span["seconds"] >= 0.0
        assert span["parent_id"] is None

    def test_nesting_sets_parent_ids(self):
        recorder = Recorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        outer, inner = sorted(_spans(recorder), key=lambda s: s["name"])[::-1]
        assert outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]

    def test_record_span_parents_under_current(self):
        recorder = Recorder()
        with recorder.span("outer"):
            recorder.record_span("measured", 0.5, chain=3)
        by_name = {s["name"]: s for s in _spans(recorder)}
        assert by_name["measured"]["seconds"] == 0.5
        assert by_name["measured"]["parent_id"] == by_name["outer"]["span_id"]

    def test_span_recorded_even_when_body_raises(self):
        recorder = Recorder()
        with pytest.raises(ValueError):
            with recorder.span("doomed"):
                raise ValueError("boom")
        assert [s["name"] for s in _spans(recorder)] == ["doomed"]


class TestRegistries:
    def test_counter_accumulates_per_tag_set(self):
        recorder = Recorder()
        recorder.counter("hits", kind="cost").add()
        recorder.counter("hits", kind="cost").add(2)
        recorder.counter("hits", kind="group").add()
        events = {
            tuple(sorted(e["tags"].items())): e["value"]
            for e in recorder.events()
            if e["type"] == "counter"
        }
        assert events[(("kind", "cost"),)] == 3
        assert events[(("kind", "group"),)] == 1

    def test_gauge_tracks_last_and_max(self):
        recorder = Recorder()
        gauge = recorder.gauge("resident")
        gauge.set(10)
        gauge.set(50)
        gauge.set(20)
        (event,) = [e for e in recorder.events() if e["type"] == "gauge"]
        assert event["value"] == 20
        assert event["max"] == 50


class TestAbsorb:
    def test_worker_buffer_merges_into_parent(self):
        worker = Recorder()
        with worker.span("search.group", members=3):
            worker.counter("explored").add(7)
        worker.gauge("peak").set(42)

        parent = Recorder()
        parent.counter("explored").add(1)
        parent.gauge("peak").set(10)
        with parent.span("search.phase", phase="I"):
            parent.absorb(worker.events())

        by_name = {s["name"]: s for s in _spans(parent)}
        assert (
            by_name["search.group"]["parent_id"]
            == by_name["search.phase"]["span_id"]
        )
        counters = [e for e in parent.events() if e["type"] == "counter"]
        assert counters[0]["value"] == 8  # summed
        gauges = [e for e in parent.events() if e["type"] == "gauge"]
        assert gauges[0]["max"] == 42  # maxed

    def test_absorb_none_and_empty_are_noops(self):
        recorder = Recorder()
        recorder.absorb(None)
        recorder.absorb([])
        assert recorder.events() == []

    def test_colliding_worker_span_ids_stay_distinct(self):
        # Pool workers are recycled (and forked workers share id counters),
        # so two shipped buffers can legitimately carry the *same* local
        # span ids; absorb must namespace them apart per buffer.
        def buffer():
            worker = Recorder()
            with worker.span("search.group"):
                with worker.span("search.state"):
                    pass
            return worker.events()

        first, second = buffer(), buffer()
        local_ids = [e["span_id"] for e in first if e["type"] == "span"]
        assert local_ids == [
            e["span_id"] for e in second if e["type"] == "span"
        ], "precondition: the two buffers collide on local span ids"

        parent = Recorder()
        parent.absorb(first)
        parent.absorb(second)
        spans = _spans(parent)
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids)) == 4  # no collisions survive
        # Intra-buffer parent links are remapped into the same namespace.
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] in ids
                namespace = span["span_id"].split(":", 1)[0]
                assert span["parent_id"].startswith(f"{namespace}:")

    def test_absorb_carries_structured_events(self):
        worker = Recorder()
        worker.record_event("search.transition", mnemonic="SWA", accepted=True)
        parent = Recorder()
        parent.absorb(worker.events())
        (event,) = [e for e in parent.events() if e["type"] == "event"]
        assert event["name"] == "search.transition"
        assert event["fields"]["mnemonic"] == "SWA"


class TestStructuredEvents:
    def test_record_event_captures_fields(self):
        recorder = Recorder()
        recorder.record_event("search.transition", mnemonic="DIS", accepted=False)
        (event,) = [e for e in recorder.events() if e["type"] == "event"]
        assert event["fields"] == {"mnemonic": "DIS", "accepted": False}

    def test_null_recorder_drops_events(self):
        NULL_RECORDER.record_event("search.transition", mnemonic="SWA")
        assert NULL_RECORDER.events() == []

    def test_summarize_groups_by_decision(self):
        recorder = Recorder()
        for accepted in (True, True, False):
            recorder.record_event(
                "search.transition",
                algorithm="HS",
                mnemonic="SWA",
                accepted=accepted,
            )
        summary = summarize(recorder.events())
        assert summary["structured_events"] == 3
        assert summary["events"] == {
            "search.transition[algorithm=HS,mnemonic=SWA,accepted]": 2,
            "search.transition[algorithm=HS,mnemonic=SWA,rejected]": 1,
        }
        assert "search.transition[algorithm=HS,mnemonic=SWA,accepted]" in (
            render_summary(summary)
        )


class TestFlushAndLoad:
    def test_jsonl_round_trip(self, tmp_path):
        recorder = Recorder()
        with recorder.span("phase", phase="II"):
            pass
        recorder.counter("transitions", mnemonic="SWA").add(5)
        path = tmp_path / "t.jsonl"
        recorder.flush_jsonl(path)

        events = load_events(str(path))
        assert events[0] == {"type": "meta", "format_version": 1}
        kinds = {e["type"] for e in events}
        assert kinds == {"meta", "span", "counter"}
        # Every line is standalone JSON (the JSONL contract).
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)


class TestActiveRecorder:
    def test_default_is_null_recorder(self):
        assert get_recorder() is NULL_RECORDER
        assert not get_recorder().active

    def test_use_recorder_installs_and_restores(self):
        recorder = Recorder()
        with use_recorder(recorder) as active:
            assert active is recorder
            assert get_recorder() is recorder
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_none_disables(self):
        previous = set_recorder(Recorder())
        assert previous is NULL_RECORDER
        set_recorder(None)
        assert get_recorder() is NULL_RECORDER

    def test_null_recorder_records_nothing(self):
        with NULL_RECORDER.span("ignored", tag=1):
            NULL_RECORDER.counter("ignored").add(5)
            NULL_RECORDER.gauge("ignored").set(5)
            NULL_RECORDER.record_span("ignored", 1.0)
        assert NULL_RECORDER.events() == []


class TestSummarize:
    def _events(self):
        recorder = Recorder()
        with recorder.span("search.phase", phase="I"):
            pass
        with recorder.span("search.phase", phase="I"):
            pass
        recorder.record_span("engine.operator", 0.25, activity="7")
        recorder.counter("search.transitions", mnemonic="SWA").add(3)
        recorder.gauge("engine.resident_rows.peak").set(128)
        return recorder.events()

    def test_spans_grouped_by_identifying_tag(self):
        summary = summarize(self._events())
        assert summary["span_events"] == 3
        assert summary["spans"]["search.phase[phase=I]"]["count"] == 2
        row = summary["spans"]["engine.operator[activity=7]"]
        assert row["total_seconds"] == 0.25
        assert summary["counters"]["search.transitions[mnemonic=SWA]"] == 3
        assert summary["gauges"]["engine.resident_rows.peak"]["max"] == 128

    def test_render_contains_all_tables(self):
        rendered = render_summary(summarize(self._events()))
        assert "search.phase[phase=I]" in rendered
        assert "engine.operator[activity=7]" in rendered
        assert "search.transitions[mnemonic=SWA]" in rendered
        assert "engine.resident_rows.peak" in rendered

    def test_render_empty_summary(self):
        assert "no spans recorded" in render_summary(summarize([]))


class TestHistogram:
    def test_summary_reports_count_sum_and_quantiles(self):
        h = Histogram("latency", {})
        for value in (0.001, 0.002, 0.004, 0.008):
            h.observe(value)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(0.015)
        assert summary["mean"] == pytest.approx(0.015 / 4)
        # Quantiles are bucket upper bounds: <= 2x relative error.
        assert 0.002 <= summary["p50"] <= 0.004
        assert summary["p99"] >= 0.008

    def test_bucket_boundaries_are_powers_of_two(self):
        h = Histogram("x", {})
        # An exact power of two belongs to the bucket it bounds:
        # bucket i covers (2**(i-1), 2**i].
        h.observe(0.5)
        assert h.buckets == {-1: 1}
        h.observe(0.500001)
        assert h.buckets == {-1: 1, 0: 1}
        assert h.percentile(0.5) == 0.5

    def test_zero_and_negative_land_in_the_zero_bucket(self):
        h = Histogram("x", {})
        h.observe(0.0)
        h.observe(-1.0)
        assert h.zero == 2
        assert h.buckets == {}
        assert h.percentile(0.5) == 0.0

    def test_merge_event_combines_counts(self):
        a = Histogram("x", {})
        b = Histogram("x", {})
        a.observe(0.5)
        b.observe(0.5)
        b.observe(0.0)
        b.observe(3.0)
        a.merge_event(b.to_event())
        assert a.count == 4
        assert a.sum == pytest.approx(4.0)
        assert a.zero == 1
        assert a.buckets == {-1: 2, 2: 1}

    def test_to_event_round_trips_through_merge(self):
        a = Histogram("x", {"op": "optimize"})
        for value in (0.1, 0.2, 4.0):
            a.observe(value)
        fresh = Histogram("x", {"op": "optimize"})
        fresh.merge_event(a.to_event())
        assert fresh.summary() == a.summary()

    def test_empty_histogram_has_no_quantiles(self):
        summary = Histogram("x", {}).summary()
        assert summary["count"] == 0
        assert summary["p50"] is None and summary["p99"] is None

    def test_recorder_registry_reuses_by_name_and_tags(self):
        recorder = Recorder()
        h = recorder.histogram("latency", op="optimize")
        assert recorder.histogram("latency", op="optimize") is h
        assert recorder.histogram("latency", op="status") is not h
        h.observe(0.25)
        events = [e for e in recorder.events() if e["type"] == "histogram"]
        assert len(events) == 2

    def test_null_recorder_histogram_is_inert(self):
        h = NULL_RECORDER.histogram("latency")
        h.observe(1.0)
        h.merge_event({"count": 5})
        assert h.count == 0
        assert h.summary()["p50"] is None
        assert NULL_RECORDER.events() == []


class TestInstrumentThreadSafety:
    def test_counter_add_is_atomic_across_threads(self):
        # Regression: Counter.add used an unlocked read-modify-write, so
        # two hammering threads could lose increments.
        import threading

        recorder = Recorder()
        counter = recorder.counter("hits")
        iterations = 50_000

        def hammer():
            for _ in range(iterations):
                counter.add(1)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 2 * iterations

    def test_gauge_max_tracks_across_threads(self):
        import threading

        recorder = Recorder()
        gauge = recorder.gauge("depth")

        def hammer(offset):
            for value in range(offset, 10_000 + offset):
                gauge.set(value)

        threads = [
            threading.Thread(target=hammer, args=(offset,))
            for offset in (0, 5_000)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.max == 14_999

    def test_histogram_observe_is_atomic_across_threads(self):
        import threading

        h = Histogram("x", {})
        iterations = 20_000

        def hammer():
            for _ in range(iterations):
                h.observe(0.5)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert h.count == 2 * iterations
        assert h.buckets == {-1: 2 * iterations}


class TestTrace:
    def test_trace_context_stamps_spans_and_events(self):
        recorder = Recorder()
        with recorder.trace("t-1"):
            with recorder.span("serve.request"):
                recorder.record_span("child", 0.1)
                recorder.record_event("decision", verdict="keep")
        spans = _spans(recorder)
        assert all(s["tags"]["trace"] == "t-1" for s in spans)
        (event,) = [e for e in recorder.events() if e["type"] == "event"]
        assert event["fields"]["trace"] == "t-1"

    def test_trace_none_clears_the_context(self):
        recorder = Recorder()
        with recorder.trace("outer"):
            assert recorder.current_trace_id() == "outer"
            with recorder.trace(None):
                assert recorder.current_trace_id() is None
                with recorder.span("untraced"):
                    pass
            assert recorder.current_trace_id() == "outer"
        (span,) = _spans(recorder)
        assert "trace" not in span["tags"]

    def test_explicit_trace_tag_wins_over_the_context(self):
        recorder = Recorder()
        with recorder.trace("ctx"):
            with recorder.span("work", trace="explicit"):
                pass
        (span,) = _spans(recorder)
        assert span["tags"]["trace"] == "explicit"

    def test_new_trace_ids_are_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100

    def test_absorb_stamps_missing_trace_tags(self):
        worker = Recorder()
        with worker.span("search.group"):
            pass
        worker.record_event("transition", mnemonic="SWA")
        parent = Recorder()
        with parent.trace("t-9"), parent.span("serve.request"):
            parent.absorb(worker.events())
        spans = {s["name"]: s for s in _spans(parent)}
        assert spans["search.group"]["tags"]["trace"] == "t-9"
        assert spans["serve.request"]["tags"]["trace"] == "t-9"
        (event,) = [e for e in parent.events() if e["type"] == "event"]
        assert event["fields"]["trace"] == "t-9"

    def test_absorb_preserves_preexisting_trace_tags(self):
        worker = Recorder()
        with worker.trace("t-native"), worker.span("search.group"):
            pass
        parent = Recorder()
        with parent.trace("t-other"):
            parent.absorb(worker.events())
        spans = {s["name"]: s for s in _spans(parent)}
        assert spans["search.group"]["tags"]["trace"] == "t-native"

    def test_filter_and_render_one_request_tree(self):
        recorder = Recorder()
        for trace in ("t-a", "t-b"):
            with recorder.trace(trace), recorder.span("serve.request"):
                with recorder.span("serve.search"):
                    pass
        recorder.counter("serve.requests").add(2)
        events = recorder.events()
        mine = filter_trace(events, "t-a")
        assert [e["name"] for e in mine] == ["serve.search", "serve.request"]
        rendered = render_trace(mine)
        assert "serve.request" in rendered and "serve.search" in rendered
        assert filter_trace(events, "t-missing") == []


class TestOnSpanConcurrency:
    def test_two_threads_drop_nothing_and_keep_trees_separate(self):
        # Two simultaneous serve requests hammer one recorder from their
        # own threads; every span must arrive exactly once, parented
        # within its own thread's tree, stamped with its own trace id.
        import threading

        recorder = Recorder()
        seen: list[dict] = []
        seen_lock = threading.Lock()

        def hook(event):
            with seen_lock:
                seen.append(event)

        recorder.on_span = hook
        requests = 200

        def request_thread(trace):
            with recorder.trace(trace):
                for index in range(requests):
                    with recorder.span("serve.request", index=index):
                        with recorder.span("serve.search"):
                            pass

        threads = [
            threading.Thread(target=request_thread, args=(trace,))
            for trace in ("t-left", "t-right")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        spans = _spans(recorder)
        assert len(spans) == 2 * requests * 2
        assert len(seen) == len(spans)
        assert {s["span_id"] for s in seen} == {s["span_id"] for s in spans}
        by_id = {s["span_id"]: s for s in spans}
        for span in spans:
            if span["name"] != "serve.search":
                continue
            parent = by_id[span["parent_id"]]
            assert parent["name"] == "serve.request"
            # Never parented across the two request threads.
            assert parent["tags"]["trace"] == span["tags"]["trace"]

    def test_absorbed_worker_buffers_preserve_trace_tags(self):
        import threading

        def worker_buffer(trace):
            worker = Recorder()
            with worker.trace(trace):
                with worker.span("search.group", members=2):
                    pass
            return worker.events()

        recorder = Recorder()

        def absorb_thread(trace):
            with recorder.trace(trace), recorder.span("serve.request"):
                for _ in range(50):
                    recorder.absorb(worker_buffer(trace))

        threads = [
            threading.Thread(target=absorb_thread, args=(trace,))
            for trace in ("t-one", "t-two")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        groups = [s for s in _spans(recorder) if s["name"] == "search.group"]
        assert len(groups) == 100
        assert {s["tags"]["trace"] for s in groups} == {"t-one", "t-two"}
        # Span ids stay unique after namespacing 100 absorbed buffers.
        ids = [s["span_id"] for s in _spans(recorder)]
        assert len(ids) == len(set(ids))
