"""Unit tests for impact analysis and attribute lineage."""

import pytest

from repro.core.impact import (
    attribute_lineage,
    impact_of_attribute_removal,
    impact_of_node_failure,
)
from repro.exceptions import ReproError


class TestLineage:
    def test_pass_through_attribute(self, fig1):
        lineage = attribute_lineage(fig1.workflow, "DW", "PKEY")
        assert lineage == {("PARTS1", "PKEY"), ("PARTS2", "PKEY")}

    def test_value_lineage_of_generated_attribute(self, fig1):
        # ECOST_M comes directly from PARTS1 on one branch and, on the
        # other, via the aggregation of ECOST, which $2E derives from DCOST.
        lineage = attribute_lineage(
            fig1.workflow, "DW", "ECOST_M", include_influence=False
        )
        assert lineage == {("PARTS1", "ECOST_M"), ("PARTS2", "DCOST")}

    def test_influence_lineage_includes_groupers(self, fig1):
        lineage = attribute_lineage(fig1.workflow, "DW", "ECOST_M")
        assert lineage == {
            ("PARTS1", "ECOST_M"),
            ("PARTS2", "DCOST"),
            ("PARTS2", "PKEY"),
            ("PARTS2", "SOURCE"),
            ("PARTS2", "DATE"),
        }

    def test_date_lineage(self, fig1):
        lineage = attribute_lineage(fig1.workflow, "DW", "DATE")
        assert lineage == {("PARTS1", "DATE"), ("PARTS2", "DATE")}

    def test_unknown_target(self, fig1):
        with pytest.raises(ReproError, match="no target"):
            attribute_lineage(fig1.workflow, "NOPE", "PKEY")

    def test_unknown_attribute(self, fig1):
        with pytest.raises(ReproError, match="does not receive"):
            attribute_lineage(fig1.workflow, "DW", "GHOST")


class TestAttributeRemoval:
    def test_removing_used_attribute_breaks_chain(self, fig1):
        report = impact_of_attribute_removal(fig1.workflow, "PARTS2", "DCOST")
        broken_ids = [a.id for a in report.broken_activities]
        # $2E loses DCOST; the aggregation then loses ECOST.
        assert broken_ids == ["4", "6"]
        assert not report.clean

    def test_target_flagged_when_schema_shrinks(self, fig1):
        report = impact_of_attribute_removal(fig1.workflow, "PARTS1", "ECOST_M")
        assert [a.id for a in report.broken_activities] == ["3"]
        # Branch 2 still provides ECOST_M via the aggregation, but the
        # union's left branch no longer carries it.
        assert report.diagnostics

    def test_removing_unused_attribute_is_clean(self, fig1):
        report = impact_of_attribute_removal(fig1.workflow, "PARTS2", "DEPT")
        assert report.clean

    def test_unknown_source(self, fig1):
        with pytest.raises(ReproError, match="no source"):
            impact_of_attribute_removal(fig1.workflow, "NOPE", "X")

    def test_unknown_attribute(self, fig1):
        with pytest.raises(ReproError, match="does not provide"):
            impact_of_attribute_removal(fig1.workflow, "PARTS1", "GHOST")


class TestNodeFailure:
    def test_activity_failure_hits_target(self, fig1):
        report = impact_of_node_failure(fig1.workflow, "6")
        assert [t.name for t in report.affected_targets] == ["DW"]
        assert {a.id for a in report.broken_activities} == {"7", "8"}

    def test_source_failure(self, fig1):
        report = impact_of_node_failure(fig1.workflow, "1")
        assert [t.name for t in report.affected_targets] == ["DW"]

    def test_unknown_node(self, fig1):
        from repro.exceptions import WorkflowError

        with pytest.raises(WorkflowError):
            impact_of_node_failure(fig1.workflow, "404")
