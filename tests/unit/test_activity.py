"""Unit tests for activities and composite (merged) activities."""

import pytest

from repro.core.activity import Activity, CompositeActivity, base_clone_id
from repro.core.schema import Schema
from repro.exceptions import SchemaError, TemplateError, WorkflowError
from repro.templates import builtin as t
from repro.templates.base import ActivityKind


def selection(activity_id="1", attr="V1", value=10.0, selectivity=0.5):
    return Activity(
        activity_id,
        t.SELECTION,
        {"attr": attr, "op": ">=", "value": value},
        selectivity=selectivity,
    )


def convert(activity_id="2", src="V1", dst="W1"):
    return Activity(
        activity_id,
        t.FUNCTION_APPLY,
        {"function": "scale_double", "inputs": (src,), "output": dst, "injective": True},
    )


class TestActivityBasics:
    def test_ids_must_be_strings(self):
        with pytest.raises(WorkflowError):
            Activity(3, t.NOT_NULL, {"attr": "A"})

    def test_negative_selectivity_rejected(self):
        with pytest.raises(TemplateError):
            selection(selectivity=-0.1)

    def test_default_name_renders_predicate(self):
        activity = Activity("1", t.NOT_NULL, {"attr": "COST"})
        assert activity.name == "NN(COST)"

    def test_param_validation_missing(self):
        with pytest.raises(TemplateError, match="missing"):
            Activity("1", t.SELECTION, {"attr": "A"})

    def test_param_validation_unknown(self):
        with pytest.raises(TemplateError, match="unknown"):
            Activity("1", t.NOT_NULL, {"attr": "A", "bogus": 1})

    def test_arity_properties(self):
        assert selection().is_unary
        union = Activity("9", t.UNION, {})
        assert union.is_binary
        assert union.arity == 2


class TestAuxiliarySchemata:
    def test_filter_schemata(self):
        activity = selection(attr="COST")
        assert list(activity.functionality) == ["COST"]
        assert len(activity.generated) == 0
        assert len(activity.projected_out) == 0

    def test_generating_function_schemata(self):
        activity = convert()
        assert list(activity.functionality) == ["V1"]
        assert list(activity.generated) == ["W1"]
        assert list(activity.projected_out) == ["V1"]

    def test_in_place_function_is_neutral(self):
        activity = Activity(
            "1",
            t.FUNCTION_APPLY,
            {"function": "date_us_to_eu", "inputs": ("DATE",), "output": "DATE"},
        )
        assert list(activity.functionality) == ["DATE"]
        assert len(activity.generated) == 0
        assert len(activity.projected_out) == 0

    def test_surrogate_key_schemata(self):
        activity = Activity(
            "1",
            t.SURROGATE_KEY,
            {"key_attr": "KEY", "skey_attr": "SKEY", "lookup": "sk"},
        )
        assert list(activity.functionality) == ["KEY"]
        assert list(activity.generated) == ["SKEY"]
        assert list(activity.projected_out) == ["KEY"]

    def test_aggregation_schemata(self):
        activity = Activity(
            "1",
            t.AGGREGATION,
            {"group_by": ("K", "D"), "measure": "V", "agg": "sum", "output": "VM"},
        )
        assert list(activity.functionality) == ["K", "D", "V"]
        assert list(activity.generated) == ["VM"]
        assert list(activity.projected_out) == ["V"]


class TestDeriveOutput:
    def test_filter_passes_schema_through(self):
        schema = Schema(["V1", "V2"])
        assert selection().derive_output((schema,)) == schema

    def test_function_replaces_attr(self):
        out = convert().derive_output((Schema(["KEY", "V1", "V2"]),))
        assert out.attrs == ("KEY", "V2", "W1")

    def test_missing_functionality_raises(self):
        with pytest.raises(SchemaError, match="missing"):
            selection(attr="GHOST").derive_output((Schema(["V1"]),))

    def test_generated_collision_raises(self):
        with pytest.raises(SchemaError, match="already present"):
            convert().derive_output((Schema(["V1", "W1"]),))

    def test_aggregation_restricts_output(self):
        activity = Activity(
            "1",
            t.AGGREGATION,
            {"group_by": ("K",), "measure": "V", "agg": "sum", "output": "VM"},
        )
        out = activity.derive_output((Schema(["K", "V", "NOISE"]),))
        assert out.attrs == ("K", "VM")

    def test_union_requires_compatible_branches(self):
        union = Activity("9", t.UNION, {})
        with pytest.raises(SchemaError, match="not compatible"):
            union.derive_output((Schema(["A"]), Schema(["B"])))

    def test_union_output_presents_left_order(self):
        union = Activity("9", t.UNION, {})
        out = union.derive_output((Schema(["A", "B"]), Schema(["B", "A"])))
        assert out.attrs == ("A", "B")

    def test_join_output_merges_schemas(self):
        join = Activity("9", t.JOIN, {"on": ("K",)})
        out = join.derive_output((Schema(["K", "A"]), Schema(["K", "B"])))
        assert out.attrs == ("K", "A", "B")

    def test_wrong_input_count_raises(self):
        with pytest.raises(SchemaError, match="expected 1"):
            selection().derive_output((Schema(["V1"]), Schema(["V1"])))

    def test_derive_cache_failure_is_repeatable(self):
        activity = selection(attr="GHOST")
        for _ in range(2):
            with pytest.raises(SchemaError):
                activity.derive_output((Schema(["V1"]),))


class TestSemanticsKey:
    def test_same_params_same_key(self):
        assert selection("1").semantics_key() == selection("2").semantics_key()

    def test_different_value_different_key(self):
        assert selection(value=1.0).semantics_key() != selection(value=2.0).semantics_key()

    def test_different_selectivity_different_key(self):
        first = selection(selectivity=0.5)
        second = selection(selectivity=0.6)
        assert first.semantics_key() != second.semantics_key()

    def test_key_is_hashable(self):
        hash(selection().semantics_key())


class TestClone:
    def test_clone_preserves_semantics(self):
        original = selection("8")
        clone = original.clone("8_1")
        assert clone.id == "8_1"
        assert clone.semantics_key() == original.semantics_key()

    def test_base_clone_id(self):
        assert base_clone_id("8_1") == "8"
        assert base_clone_id("8_2") == "8"
        assert base_clone_id("8") == "8"
        assert base_clone_id("12") == "12"


class TestCompositeActivity:
    def test_requires_two_components(self):
        with pytest.raises(WorkflowError):
            CompositeActivity((selection("1"),))

    def test_rejects_binary_components(self):
        union = Activity("9", t.UNION, {})
        with pytest.raises(WorkflowError):
            CompositeActivity((selection("1"), union))

    def test_id_joins_component_ids(self):
        merged = CompositeActivity((selection("4"), convert("5")))
        assert merged.id == "4+5"

    def test_selectivity_is_product(self):
        merged = CompositeActivity(
            (selection("1", selectivity=0.5), selection("2", selectivity=0.4))
        )
        assert merged.selectivity == pytest.approx(0.2)

    def test_functionality_excludes_internal_attrs(self):
        # convert generates W1; the selection on W1 needs nothing external.
        merged = CompositeActivity((convert("4"), selection("5", attr="W1")))
        assert set(merged.functionality) == {"V1"}

    def test_generated_and_projected_out(self):
        merged = CompositeActivity((convert("4"), selection("5", attr="W1")))
        assert list(merged.generated) == ["W1"]
        assert list(merged.projected_out) == ["V1"]

    def test_internally_consumed_generation_hidden(self):
        # convert V1->W1 then project W1 out again: externally the package
        # just consumes V1.
        projection = Activity("5", t.PROJECTION, {"attrs": ("W1",)})
        merged = CompositeActivity((convert("4"), projection))
        assert len(merged.generated) == 0
        assert list(merged.projected_out) == ["V1"]

    def test_derive_output_folds_components(self):
        merged = CompositeActivity((convert("4"), selection("5", attr="W1")))
        out = merged.derive_output((Schema(["KEY", "V1"]),))
        assert out.attrs == ("KEY", "W1")

    def test_kind_aggregation_dominates(self):
        gamma = Activity(
            "6",
            t.AGGREGATION,
            {"group_by": ("KEY",), "measure": "W1", "agg": "sum", "output": "WM"},
        )
        merged = CompositeActivity((convert("4"), gamma))
        assert merged.kind is ActivityKind.AGGREGATION

    def test_clone_is_refused(self):
        merged = CompositeActivity((selection("1"), selection("2", attr="V2")))
        with pytest.raises(WorkflowError, match="split"):
            merged.clone("x")

    def test_split_pair_two_components(self):
        first, second = CompositeActivity((selection("1"), convert("2"))).split_pair()
        assert first.id == "1"
        assert second.id == "2"

    def test_split_pair_three_components(self):
        merged = CompositeActivity(
            (selection("1"), convert("2"), selection("3", attr="W1"))
        )
        head, tail = merged.split_pair()
        assert head.id == "1"
        assert isinstance(tail, CompositeActivity)
        assert tail.id == "2+3"

    def test_distributes_over_is_component_intersection(self):
        # selection distributes over union+join+difference+intersection;
        # a non-injective function only over union.
        plain_function = Activity(
            "2",
            t.FUNCTION_APPLY,
            {"function": "scale_double", "inputs": ("V1",), "output": "W1"},
        )
        merged = CompositeActivity((selection("1"), plain_function))
        assert merged.distributes_over == frozenset({"union"})
