"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import load, save
from repro.workloads import fig1_workflow


@pytest.fixture
def fig1_json(tmp_path):
    path = str(tmp_path / "fig1.json")
    save(fig1_workflow().workflow, path)
    return path


class TestOptimizeCommand:
    def test_optimize_prints_summary(self, fig1_json, capsys):
        assert main(["optimize", fig1_json]) == 0
        out = capsys.readouterr().out
        assert "HS:" in out
        assert "((1.3)//(2.4.5.6)).7.8.9" in out

    def test_optimize_writes_output(self, fig1_json, tmp_path, capsys):
        out_path = str(tmp_path / "optimized.json")
        assert main(["optimize", fig1_json, "-o", out_path]) == 0
        optimized = load(out_path)
        ids = {a.id for a in optimized.activities()}
        assert "8_1" in ids  # the distributed selection

    def test_optimize_with_es_budget(self, fig1_json, capsys):
        assert main(
            ["optimize", fig1_json, "--algorithm", "es", "--max-states", "50"]
        ) == 0
        assert "ES:" in capsys.readouterr().out

    def test_greedy_algorithm(self, fig1_json, capsys):
        assert main(["optimize", fig1_json, "--algorithm", "greedy"]) == 0
        assert "HS-Greedy" in capsys.readouterr().out


class TestRenderCommand:
    def test_render_text(self, fig1_json, capsys):
        assert main(["render", fig1_json]) == 0
        assert "PARTS1 (source)" in capsys.readouterr().out

    def test_render_dot(self, fig1_json, capsys):
        assert main(["render", fig1_json, "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph etl {")


class TestLintCommand:
    def test_clean_workflow(self, fig1_json, capsys):
        assert main(["lint", fig1_json]) == 0
        assert "clean" in capsys.readouterr().out


class TestImpactCommand:
    def test_breaking_removal_exits_nonzero(self, fig1_json, capsys):
        assert main(
            ["impact", fig1_json, "--source", "PARTS2", "--attribute", "DCOST"]
        ) == 1
        assert "loses functionality" in capsys.readouterr().out

    def test_harmless_removal_exits_zero(self, fig1_json, capsys):
        assert main(
            ["impact", fig1_json, "--source", "PARTS2", "--attribute", "DEPT"]
        ) == 0
        assert "breaks nothing" in capsys.readouterr().out


def test_unknown_command_rejected(fig1_json):
    with pytest.raises(SystemExit):
        main(["teleport", fig1_json])
