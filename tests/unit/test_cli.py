"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import load, save
from repro.workloads import fig1_workflow


@pytest.fixture
def fig1_json(tmp_path):
    path = str(tmp_path / "fig1.json")
    save(fig1_workflow().workflow, path)
    return path


class TestOptimizeCommand:
    def test_optimize_prints_summary(self, fig1_json, capsys):
        assert main(["optimize", fig1_json]) == 0
        out = capsys.readouterr().out
        assert "HS:" in out
        assert "((1.3)//(2.4.5.6)).7.8.9" in out

    def test_optimize_writes_output(self, fig1_json, tmp_path, capsys):
        out_path = str(tmp_path / "optimized.json")
        assert main(["optimize", fig1_json, "-o", out_path]) == 0
        optimized = load(out_path)
        ids = {a.id for a in optimized.activities()}
        assert "8_1" in ids  # the distributed selection

    def test_optimize_with_es_budget(self, fig1_json, capsys):
        assert main(
            ["optimize", fig1_json, "--algorithm", "es", "--max-states", "50"]
        ) == 0
        assert "ES:" in capsys.readouterr().out

    def test_greedy_algorithm(self, fig1_json, capsys):
        assert main(["optimize", fig1_json, "--algorithm", "greedy"]) == 0
        assert "HS-Greedy" in capsys.readouterr().out


class TestRenderCommand:
    def test_render_text(self, fig1_json, capsys):
        assert main(["render", fig1_json]) == 0
        assert "PARTS1 (source)" in capsys.readouterr().out

    def test_render_dot(self, fig1_json, capsys):
        assert main(["render", fig1_json, "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph etl {")


class TestLintCommand:
    def test_clean_workflow(self, fig1_json, capsys):
        assert main(["lint", fig1_json]) == 0
        assert "clean" in capsys.readouterr().out


class TestImpactCommand:
    def test_breaking_removal_exits_nonzero(self, fig1_json, capsys):
        assert main(
            ["impact", fig1_json, "--source", "PARTS2", "--attribute", "DCOST"]
        ) == 1
        assert "loses functionality" in capsys.readouterr().out

    def test_harmless_removal_exits_zero(self, fig1_json, capsys):
        assert main(
            ["impact", fig1_json, "--source", "PARTS2", "--attribute", "DEPT"]
        ) == 0
        assert "breaks nothing" in capsys.readouterr().out


class TestFuzzCommand:
    FAST = ["--seeds", "3", "--rows", "30", "--chain-length", "4",
            "--categories", "tiny"]

    def test_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", *self.FAST]) == 0
        out = capsys.readouterr().out
        assert "3 seed(s)" in out
        assert "no equivalence or cost-conformance violations" in out

    def test_corpus_directory_is_written(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        assert main(["fuzz", *self.FAST, "--corpus", corpus]) == 0
        assert (tmp_path / "corpus" / "summary.json").exists()

    def test_violations_exit_nonzero(self, monkeypatch, capsys):
        from repro.core.transitions.swap import Swap

        real_rewire = Swap.rewire

        def broken_rewire(self, workflow):
            real_rewire(self, workflow)
            victim = self.first
            if getattr(victim.template, "name", None) != "selection":
                return
            provider = workflow.providers(victim)[0]
            consumer = workflow.consumers(victim)[0]
            port = workflow.edge_port(victim, consumer)
            workflow.remove_node(victim)
            workflow.add_edge(provider, consumer, port=port)

        monkeypatch.setattr(Swap, "rewire", broken_rewire)
        assert main(["fuzz", "--seeds", "10", "--rows", "30",
                     "--chain-length", "4", "--no-packaging"]) == 1
        assert "violating seed(s)" in capsys.readouterr().out

    def test_unknown_category_exits_two(self, capsys):
        assert main(["fuzz", "--categories", "bogus", "--seeds", "1"]) == 2
        assert "unknown workload categories" in capsys.readouterr().err

    def test_empty_categories_exit_two(self, capsys):
        assert main(["fuzz", "--categories", "", "--seeds", "1"]) == 2
        assert "at least one workload category" in capsys.readouterr().err

    def test_bad_chain_length_exits_two(self, capsys):
        assert main(["fuzz", "--chain-length", "0", "--seeds", "1"]) == 2
        assert "chain_length" in capsys.readouterr().err


class TestBadInput:
    """Every file-reading subcommand fails cleanly with exit code 2."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["optimize", "{path}"],
            ["render", "{path}"],
            ["lint", "{path}"],
            ["impact", "{path}", "--source", "S", "--attribute", "A"],
        ],
        ids=["optimize", "render", "lint", "impact"],
    )
    def test_missing_file(self, argv, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        code = main([part.format(path=missing) for part in argv])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["render", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unsupported_format_version(self, tmp_path, capsys):
        path = tmp_path / "future.json"
        path.write_text(
            '{"format_version": 999, "nodes": [], "edges": []}',
            encoding="utf-8",
        )
        assert main(["lint", str(path)]) == 2
        assert "unsupported workflow format version" in capsys.readouterr().err


def test_unknown_command_rejected(fig1_json):
    with pytest.raises(SystemExit):
        main(["teleport", fig1_json])


def test_broken_pipe_is_not_an_error(fig1_json):
    """`repro render … | head` must exit 0 on EPIPE, not 2 (or 120)."""
    import os
    import subprocess
    import sys

    import repro

    env = dict(
        os.environ,
        PYTHONPATH=os.path.dirname(os.path.dirname(repro.__file__)),
    )
    read_end, write_end = os.pipe()
    os.close(read_end)  # writes into the pipe now raise EPIPE
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "render", fig1_json],
            stdout=write_end,
            stderr=subprocess.PIPE,
            env=env,
        )
    finally:
        os.close(write_end)
    assert proc.returncode == 0, proc.stderr.decode()
    assert b"Traceback" not in proc.stderr


@pytest.fixture
def runnable_flow(tmp_path):
    """A workflow + data file executable with the default engine context."""
    import json

    from repro.core.activity import Activity
    from repro.core.recordset import RecordSet, RecordSetKind
    from repro.core.schema import Schema
    from repro.core.workflow import ETLWorkflow
    from repro.templates import default_library

    library = default_library()
    workflow = ETLWorkflow()
    source = RecordSet(
        "S", "S", Schema(("K", "V")), kind=RecordSetKind.SOURCE, cardinality=100
    )
    target = RecordSet("T", "T", Schema(("K", "V")), kind=RecordSetKind.TARGET)
    select = Activity(
        "a1",
        library.get("selection"),
        {"attr": "V", "op": ">", "value": 10},
        selectivity=0.5,
    )
    aggregate = Activity(
        "a2",
        library.get("aggregation"),
        {"group_by": ("K",), "measure": "V", "output": "V", "agg": "sum"},
        selectivity=0.3,
    )
    for node in (source, target, select, aggregate):
        workflow.add_node(node)
    workflow.add_edge(source, select)
    workflow.add_edge(select, aggregate)
    workflow.add_edge(aggregate, target)

    flow_path = str(tmp_path / "flow.json")
    save(workflow, flow_path)
    data_path = str(tmp_path / "data.json")
    with open(data_path, "w", encoding="utf-8") as handle:
        json.dump({"S": [{"K": i % 5, "V": i} for i in range(100)]}, handle)
    return flow_path, data_path


class TestRunCommand:
    def test_materializing_run(self, runnable_flow, capsys):
        flow, data = runnable_flow
        assert main(["run", flow, "--data", data]) == 0
        out = capsys.readouterr().out
        assert "target T: 5 row(s)" in out
        assert "streaming" not in out

    def test_streaming_run_reports_budget(self, runnable_flow, capsys):
        flow, data = runnable_flow
        assert main(
            ["run", flow, "--data", data,
             "--batch-size", "16", "--max-resident-rows", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "target T: 5 row(s)" in out
        assert "batch size 16" in out
        assert "(budget 64)" in out

    def test_stream_flag_alone_uses_default_batch_size(
        self, runnable_flow, capsys
    ):
        flow, data = runnable_flow
        assert main(["run", flow, "--data", data, "--stream"]) == 0
        assert "batch size 4096" in capsys.readouterr().out

    def test_trace_and_output(self, runnable_flow, tmp_path, capsys):
        import json

        flow, data = runnable_flow
        out_path = str(tmp_path / "targets.json")
        assert main(
            ["run", flow, "--data", data, "--stream", "--trace",
             "-o", out_path]
        ) == 0
        out = capsys.readouterr().out
        assert "res.peak" in out  # trace table rendered
        targets = json.load(open(out_path))
        assert len(targets["T"]) == 5

    def test_streaming_matches_materializing_targets(
        self, runnable_flow, tmp_path, capsys
    ):
        import json

        flow, data = runnable_flow
        plain_path = str(tmp_path / "plain.json")
        stream_path = str(tmp_path / "stream.json")
        assert main(["run", flow, "--data", data, "-o", plain_path]) == 0
        assert main(
            ["run", flow, "--data", data, "--batch-size", "7",
             "-o", stream_path]
        ) == 0
        assert json.load(open(plain_path)) == json.load(open(stream_path))

    def test_missing_data_file_exits_2(self, runnable_flow):
        flow, _ = runnable_flow
        assert main(["run", flow, "--data", "/nonexistent/data.json"]) == 2


class TestFuzzStreamingFlags:
    def test_fuzz_with_batch_size_streams(self, capsys):
        assert main(
            ["fuzz", "--seeds", "2", "--chain-length", "2",
             "--rows", "20", "--batch-size", "16", "--no-shrink"]
        ) == 0
        assert "no equivalence" in capsys.readouterr().out


class TestTelemetry:
    def test_optimize_writes_jsonl_and_report_renders(
        self, fig1_json, tmp_path, capsys
    ):
        import json

        jsonl = str(tmp_path / "spans.jsonl")
        assert main(["optimize", fig1_json, "--telemetry", jsonl]) == 0
        capsys.readouterr()
        lines = open(jsonl, encoding="utf-8").read().splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        kinds = {json.loads(line)["type"] for line in lines}
        assert "span" in kinds and "counter" in kinds

        assert main(["report", jsonl]) == 0
        out = capsys.readouterr().out
        # Per-phase HS spans render as one row per phase.
        assert "search.phase[phase=I]" in out
        assert "search.phase[phase=IV]" in out
        assert "cli.optimize" in out
        assert "search.transitions" in out

    def test_run_telemetry_records_per_operator_spans(
        self, runnable_flow, tmp_path, capsys
    ):
        flow, data = runnable_flow
        jsonl = str(tmp_path / "run.jsonl")
        assert main(
            ["run", flow, "--data", data, "--batch-size", "16",
             "--telemetry", jsonl]
        ) == 0
        capsys.readouterr()
        assert main(["report", jsonl]) == 0
        out = capsys.readouterr().out
        assert "engine.run[mode=streaming]" in out
        assert "engine.operator[activity=a1]" in out
        assert "engine.resident_rows.peak" in out

    def test_fuzz_telemetry_records_per_seed_spans(self, tmp_path, capsys):
        jsonl = str(tmp_path / "fuzz.jsonl")
        assert main(
            ["fuzz", "--seeds", "2", "--chain-length", "2", "--rows", "20",
             "--categories", "tiny", "--telemetry", jsonl]
        ) == 0
        capsys.readouterr()
        assert main(["report", jsonl]) == 0
        out = capsys.readouterr().out
        assert "fuzz.seed[category=tiny]" in out
        assert "fuzz.oracle[category=tiny]" in out

    def test_report_json_mode(self, fig1_json, tmp_path, capsys):
        import json

        jsonl = str(tmp_path / "spans.jsonl")
        assert main(["optimize", fig1_json, "--telemetry", jsonl]) == 0
        capsys.readouterr()
        assert main(["report", jsonl, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["span_events"] > 0
        assert any(
            label.startswith("search.phase") for label in summary["spans"]
        )

    def test_report_trace_filters_one_request_tree(self, tmp_path, capsys):
        from repro.obs import Recorder

        recorder = Recorder()
        for trace in ("t-a", "t-b"):
            with recorder.trace(trace), recorder.span(
                "serve.request", tenant="default"
            ):
                with recorder.span("serve.search"):
                    pass
        jsonl = str(tmp_path / "serve.jsonl")
        recorder.flush_jsonl(jsonl)

        assert main(["report", jsonl, "--trace", "t-a"]) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out and "serve.search" in out
        # One request's tree only: two spans, not four.
        assert out.count("serve.request") == 1

    def test_report_trace_json_mode(self, tmp_path, capsys):
        import json

        from repro.obs import Recorder

        recorder = Recorder()
        with recorder.trace("t-x"), recorder.span("serve.request"):
            pass
        jsonl = str(tmp_path / "serve.jsonl")
        recorder.flush_jsonl(jsonl)
        assert main(["report", jsonl, "--trace", "t-x", "--json"]) == 0
        events = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in events] == ["serve.request"]

    def test_report_trace_unknown_id_exits_one(self, tmp_path, capsys):
        from repro.obs import Recorder

        recorder = Recorder()
        with recorder.span("serve.request"):
            pass
        jsonl = str(tmp_path / "serve.jsonl")
        recorder.flush_jsonl(jsonl)
        assert main(["report", jsonl, "--trace", "missing"]) == 1
        assert "no spans" in capsys.readouterr().out

    def test_report_without_spans_exits_one(self, tmp_path, capsys):
        jsonl = tmp_path / "empty.jsonl"
        jsonl.write_text(
            '{"type": "meta", "format_version": 1}\n', encoding="utf-8"
        )
        assert main(["report", str(jsonl)]) == 1
        assert "no spans recorded" in capsys.readouterr().out

    def test_report_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_telemetry_written_even_when_command_finds_issues(
        self, fig1_json, tmp_path, capsys
    ):
        jsonl = str(tmp_path / "impact.jsonl")
        assert main(
            ["impact", fig1_json, "--source", "PARTS2",
             "--attribute", "DCOST", "--telemetry", jsonl]
        ) == 1
        capsys.readouterr()
        assert main(["report", jsonl]) == 0  # the cli span is always there


class TestExplainCommand:
    def test_plain_explain_renders_cost_table(self, fig1_json, capsys):
        assert main(["explain", fig1_json]) == 0
        out = capsys.readouterr().out
        assert "rows out" in out
        assert "total" in out

    def test_diff_shows_plans_and_lineage(self, fig1_json, capsys):
        assert main(["explain", fig1_json, "--diff"]) == 0
        out = capsys.readouterr().out
        assert "initial plan" in out and "optimized plan" in out
        assert "transition mix:" in out
        assert "cost before" in out and "cost after" in out
        assert "SWA(" in out  # fig1's winning chain swaps selections forward

    def test_dot_exports_graph_and_trace(self, fig1_json, capsys):
        assert main(["explain", fig1_json, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph etl {")
        assert "cluster_trace" in out
        assert '"trace_0" [label="S0"]' in out

    def test_diff_with_es_algorithm(self, fig1_json, capsys):
        assert main(
            ["explain", fig1_json, "--diff", "--algorithm", "es",
             "--max-states", "300"]
        ) == 0
        assert "ES:" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestCompareGate:
    def _write(self, path, payload):
        import json

        path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        return str(path)

    def test_identical_files_exit_zero(self, tmp_path, capsys):
        base = self._write(
            tmp_path / "base.json", {"best_cost": 100.0, "visited_states": 50}
        )
        assert main(["report", base, "--compare", base]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_regression_exits_three(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"best_cost": 100.0})
        curr = self._write(tmp_path / "curr.json", {"best_cost": 125.0})
        assert main(["report", curr, "--compare", base]) == 3
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "1 regression(s)" in out

    def test_fail_on_regress_loosens_threshold(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"best_cost": 100.0})
        curr = self._write(tmp_path / "curr.json", {"best_cost": 125.0})
        assert main(
            ["report", curr, "--compare", base, "--fail-on-regress", "50"]
        ) == 0

    def test_compare_json_mode_emits_machine_report(self, tmp_path, capsys):
        import json

        base = self._write(tmp_path / "base.json", {"best_cost": 100.0})
        curr = self._write(tmp_path / "curr.json", {"best_cost": 130.0})
        assert main(["report", curr, "--compare", base, "--json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["regressions"] == ["best_cost"]

    def test_compare_telemetry_jsonl(self, fig1_json, tmp_path, capsys):
        jsonl = str(tmp_path / "spans.jsonl")
        assert main(["optimize", fig1_json, "--telemetry", jsonl]) == 0
        capsys.readouterr()
        assert main(["report", jsonl, "--compare", jsonl]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_missing_baseline_exits_two(self, fig1_json, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"best_cost": 100.0})
        missing = str(tmp_path / "nope.json")
        assert main(["report", base, "--compare", missing]) == 2
        assert "error:" in capsys.readouterr().err
