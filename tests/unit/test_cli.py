"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import load, save
from repro.workloads import fig1_workflow


@pytest.fixture
def fig1_json(tmp_path):
    path = str(tmp_path / "fig1.json")
    save(fig1_workflow().workflow, path)
    return path


class TestOptimizeCommand:
    def test_optimize_prints_summary(self, fig1_json, capsys):
        assert main(["optimize", fig1_json]) == 0
        out = capsys.readouterr().out
        assert "HS:" in out
        assert "((1.3)//(2.4.5.6)).7.8.9" in out

    def test_optimize_writes_output(self, fig1_json, tmp_path, capsys):
        out_path = str(tmp_path / "optimized.json")
        assert main(["optimize", fig1_json, "-o", out_path]) == 0
        optimized = load(out_path)
        ids = {a.id for a in optimized.activities()}
        assert "8_1" in ids  # the distributed selection

    def test_optimize_with_es_budget(self, fig1_json, capsys):
        assert main(
            ["optimize", fig1_json, "--algorithm", "es", "--max-states", "50"]
        ) == 0
        assert "ES:" in capsys.readouterr().out

    def test_greedy_algorithm(self, fig1_json, capsys):
        assert main(["optimize", fig1_json, "--algorithm", "greedy"]) == 0
        assert "HS-Greedy" in capsys.readouterr().out


class TestRenderCommand:
    def test_render_text(self, fig1_json, capsys):
        assert main(["render", fig1_json]) == 0
        assert "PARTS1 (source)" in capsys.readouterr().out

    def test_render_dot(self, fig1_json, capsys):
        assert main(["render", fig1_json, "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph etl {")


class TestLintCommand:
    def test_clean_workflow(self, fig1_json, capsys):
        assert main(["lint", fig1_json]) == 0
        assert "clean" in capsys.readouterr().out


class TestImpactCommand:
    def test_breaking_removal_exits_nonzero(self, fig1_json, capsys):
        assert main(
            ["impact", fig1_json, "--source", "PARTS2", "--attribute", "DCOST"]
        ) == 1
        assert "loses functionality" in capsys.readouterr().out

    def test_harmless_removal_exits_zero(self, fig1_json, capsys):
        assert main(
            ["impact", fig1_json, "--source", "PARTS2", "--attribute", "DEPT"]
        ) == 0
        assert "breaks nothing" in capsys.readouterr().out


class TestFuzzCommand:
    FAST = ["--seeds", "3", "--rows", "30", "--chain-length", "4",
            "--categories", "tiny"]

    def test_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", *self.FAST]) == 0
        out = capsys.readouterr().out
        assert "3 seed(s)" in out
        assert "no equivalence or cost-conformance violations" in out

    def test_corpus_directory_is_written(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        assert main(["fuzz", *self.FAST, "--corpus", corpus]) == 0
        assert (tmp_path / "corpus" / "summary.json").exists()

    def test_violations_exit_nonzero(self, monkeypatch, capsys):
        from repro.core.transitions.swap import Swap

        real_rewire = Swap.rewire

        def broken_rewire(self, workflow):
            real_rewire(self, workflow)
            victim = self.first
            if getattr(victim.template, "name", None) != "selection":
                return
            provider = workflow.providers(victim)[0]
            consumer = workflow.consumers(victim)[0]
            port = workflow.edge_port(victim, consumer)
            workflow.remove_node(victim)
            workflow.add_edge(provider, consumer, port=port)

        monkeypatch.setattr(Swap, "rewire", broken_rewire)
        assert main(["fuzz", "--seeds", "10", "--rows", "30",
                     "--chain-length", "4", "--no-packaging"]) == 1
        assert "violating seed(s)" in capsys.readouterr().out

    def test_unknown_category_exits_two(self, capsys):
        assert main(["fuzz", "--categories", "bogus", "--seeds", "1"]) == 2
        assert "unknown workload categories" in capsys.readouterr().err

    def test_empty_categories_exit_two(self, capsys):
        assert main(["fuzz", "--categories", "", "--seeds", "1"]) == 2
        assert "at least one workload category" in capsys.readouterr().err

    def test_bad_chain_length_exits_two(self, capsys):
        assert main(["fuzz", "--chain-length", "0", "--seeds", "1"]) == 2
        assert "chain_length" in capsys.readouterr().err


class TestBadInput:
    """Every file-reading subcommand fails cleanly with exit code 2."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["optimize", "{path}"],
            ["render", "{path}"],
            ["lint", "{path}"],
            ["impact", "{path}", "--source", "S", "--attribute", "A"],
        ],
        ids=["optimize", "render", "lint", "impact"],
    )
    def test_missing_file(self, argv, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        code = main([part.format(path=missing) for part in argv])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["render", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unsupported_format_version(self, tmp_path, capsys):
        path = tmp_path / "future.json"
        path.write_text(
            '{"format_version": 999, "nodes": [], "edges": []}',
            encoding="utf-8",
        )
        assert main(["lint", str(path)]) == 2
        assert "unsupported workflow format version" in capsys.readouterr().err


def test_unknown_command_rejected(fig1_json):
    with pytest.raises(SystemExit):
        main(["teleport", fig1_json])


def test_broken_pipe_is_not_an_error(fig1_json):
    """`repro render … | head` must exit 0 on EPIPE, not 2 (or 120)."""
    import os
    import subprocess
    import sys

    import repro

    env = dict(
        os.environ,
        PYTHONPATH=os.path.dirname(os.path.dirname(repro.__file__)),
    )
    read_end, write_end = os.pipe()
    os.close(read_end)  # writes into the pipe now raise EPIPE
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "render", fig1_json],
            stdout=write_end,
            stderr=subprocess.PIPE,
            env=env,
        )
    finally:
        os.close(write_end)
    assert proc.returncode == 0, proc.stderr.decode()
    assert b"Traceback" not in proc.stderr
