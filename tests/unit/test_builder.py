"""The fluent workflow builder."""

import pytest

from repro import optimize
from repro.core.builder import WorkflowBuilder
from repro.core.signature import state_signature
from repro.exceptions import TemplateError, WorkflowError


def build_simple():
    b = WorkflowBuilder()
    src = b.source("S", ["K", "V"], cardinality=100)
    tail = b.chain(
        src,
        b.activity("not_null", {"attr": "V"}, selectivity=0.9),
        b.activity(
            "selection", {"attr": "V", "op": ">=", "value": 5.0}, selectivity=0.5
        ),
    )
    b.target("DW", ["K", "V"], provider=tail)
    return b.build()


class TestBuilder:
    def test_simple_chain(self):
        wf = build_simple()
        assert state_signature(wf) == "1.2.3.4"

    def test_auto_ids_in_creation_order(self):
        wf = build_simple()
        nn = wf.node_by_id("2")
        assert nn.template.name == "not_null"

    def test_explicit_ids_respected(self):
        b = WorkflowBuilder()
        src = b.source("S", ["K"], cardinality=10, id="42")
        nn = b.activity("not_null", {"attr": "K"}, id="7")
        b.chain(src, nn)
        b.target("DW", ["K"], provider=nn)
        wf = b.build()
        assert wf.node_by_id("42").name == "S"
        assert wf.node_by_id("7") is nn

    def test_auto_id_skips_taken_ids(self):
        b = WorkflowBuilder()
        b.source("A", ["K"], cardinality=1, id="1")
        second = b.source("B", ["K"], cardinality=1)
        assert second.id == "2"

    def test_combine_wires_ports(self):
        b = WorkflowBuilder()
        left = b.source("L", ["K", "V"], cardinality=10)
        right = b.source("R", ["K", "V"], cardinality=10)
        diff = b.combine("difference", left, right)
        b.target("DW", ["K", "V"], provider=diff)
        wf = b.build()
        assert wf.providers(diff) == [left, right]

    def test_staging_table(self):
        b = WorkflowBuilder()
        src = b.source("S", ["K"], cardinality=10)
        stage = b.staging("STAGE", ["K"], provider=src)
        nn = b.activity("not_null", {"attr": "K"})
        b.chain(stage, nn)
        b.target("DW", ["K"], provider=nn)
        wf = b.build()
        assert [[a.id for a in g] for g in wf.local_groups()] == [[nn.id]]

    def test_unknown_template_rejected(self):
        b = WorkflowBuilder()
        with pytest.raises(TemplateError, match="unknown template"):
            b.activity("teleport", {})

    def test_build_validates(self):
        b = WorkflowBuilder()
        b.source("S", ["K"], cardinality=10)
        b.activity("not_null", {"attr": "K"})  # never wired
        with pytest.raises(WorkflowError):
            b.build()

    def test_custom_library(self):
        from repro.templates import default_library

        library = default_library()
        b = WorkflowBuilder(library=library)
        assert b.library is library

    def test_built_workflow_optimizes(self):
        wf = build_simple()
        result = optimize(wf, algorithm="es")
        assert result.completed
        # σ (0.5) should end up before NN (0.9).
        assert result.best.signature == "1.3.2.4"
