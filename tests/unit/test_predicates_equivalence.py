"""Unit tests for post-conditions and symbolic equivalence (section 3.4)."""

from repro.core.equivalence import symbolically_equivalent, target_schemas
from repro.core.predicates import (
    Predicate,
    node_predicates,
    workflow_post_condition,
)
from repro.core.schema import Schema
from repro.core.transitions import Distribute, Merge, Swap


class TestPredicates:
    def test_activity_predicate_uses_functionality(self, fig1):
        nn = fig1.workflow.node_by_id("3")
        (predicate,) = node_predicates(nn)
        assert predicate.name == "NN"
        assert predicate.variables == ("ECOST_M",)

    def test_recordset_predicate_uses_schema(self, fig1):
        parts1 = fig1.workflow.node_by_id("1")
        (predicate,) = node_predicates(parts1)
        assert predicate.name == "PARTS1"
        assert set(predicate.variables) == {"PKEY", "SOURCE", "DATE", "ECOST_M"}

    def test_merged_activity_contributes_component_predicates(self, fig1):
        wf = fig1.workflow
        merged_wf = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        merged = merged_wf.node_by_id("4+5")
        names = {p.name for p in node_predicates(merged)}
        assert names == {"FN"}
        assert len(node_predicates(merged)) == 2  # $2E and A2E differ in params

    def test_post_condition_counts_fig1(self, fig1):
        cond = workflow_post_condition(fig1.workflow)
        # 6 activities + 3 recordsets, all distinct predicates.
        assert len(cond) == 9

    def test_predicate_str(self):
        assert str(Predicate("NN", ("COST",))) == "NN(COST)"


class TestSymbolicEquivalence:
    def test_workflow_equivalent_to_itself(self, fig1):
        report = symbolically_equivalent(fig1.workflow, fig1.workflow)
        assert report.equivalent
        assert bool(report)

    def test_swap_preserves_post_condition(self, fig1):
        wf = fig1.workflow
        swapped = Swap(wf.node_by_id("5"), wf.node_by_id("6")).apply(wf)
        assert symbolically_equivalent(wf, swapped).equivalent

    def test_distribute_preserves_post_condition(self, fig1):
        wf = fig1.workflow
        distributed = Distribute(wf.node_by_id("7"), wf.node_by_id("8")).apply(wf)
        assert symbolically_equivalent(wf, distributed).equivalent

    def test_merge_preserves_post_condition(self, fig1):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        assert symbolically_equivalent(wf, merged).equivalent

    def test_different_workflows_not_equivalent(self, fig1, two_branch):
        report = symbolically_equivalent(fig1.workflow, two_branch.workflow)
        assert not report.equivalent
        assert report.schema_mismatches or report.only_in_first

    def test_report_diagnoses_missing_predicates(self, fig1, two_branch):
        report = symbolically_equivalent(fig1.workflow, two_branch.workflow)
        assert report.only_in_first  # fig1's predicates are absent

    def test_target_schemas(self, fig1):
        schemas = target_schemas(fig1.workflow)
        assert set(schemas) == {"DW"}
        assert schemas["DW"].compatible(
            Schema(["PKEY", "SOURCE", "DATE", "ECOST_M"])
        )
