"""Unit tests for workflow serialization and rendering."""

import json

import pytest

from repro.core.signature import state_signature
from repro.core.transitions import Merge
from repro.exceptions import ReproError
from repro.io import (
    dumps,
    load,
    loads,
    save,
    to_dot,
    to_text,
    workflow_from_dict,
    workflow_to_dict,
)
from repro.workloads import generate_workload


class TestJsonRoundTrip:
    def test_fig1_round_trip(self, fig1):
        restored = loads(dumps(fig1.workflow))
        assert state_signature(restored) == state_signature(fig1.workflow)

    def test_round_trip_preserves_costs(self, fig1, model):
        from repro.core.cost import estimate

        restored = loads(dumps(fig1.workflow))
        assert estimate(restored, model).total == pytest.approx(
            estimate(fig1.workflow, model).total
        )

    def test_generated_workload_round_trip(self):
        workload = generate_workload("small", seed=3)
        restored = loads(dumps(workload.workflow))
        assert state_signature(restored) == state_signature(workload.workflow)

    def test_composite_round_trip(self, fig1):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        restored = loads(dumps(merged))
        assert state_signature(restored) == state_signature(merged)
        package = restored.node_by_id("4+5")
        assert [c.id for c in package.components] == ["4", "5"]

    def test_file_round_trip(self, fig1, tmp_path):
        path = str(tmp_path / "flow.json")
        save(fig1.workflow, path)
        restored = load(path)
        assert state_signature(restored) == state_signature(fig1.workflow)

    def test_tuple_params_restored(self, fig1):
        restored = loads(dumps(fig1.workflow))
        gamma = restored.node_by_id("6")
        assert gamma.params["group_by"] == ("PKEY", "SOURCE", "DATE")
        assert isinstance(gamma.params["group_by"], tuple)

    def test_format_version_checked(self, fig1):
        data = workflow_to_dict(fig1.workflow)
        data["format_version"] = 99
        with pytest.raises(ReproError, match="format version"):
            workflow_from_dict(data)

    def test_output_is_valid_json(self, fig1):
        parsed = json.loads(dumps(fig1.workflow))
        assert parsed["format_version"] == 1
        assert len(parsed["nodes"]) == 9
        assert len(parsed["edges"]) == 8

    def test_deserialization_validates(self, fig1):
        data = workflow_to_dict(fig1.workflow)
        data["edges"] = data["edges"][:-1]  # orphan the target
        with pytest.raises(Exception):
            workflow_from_dict(data)

    def test_unknown_template_on_load(self, fig1):
        from repro.exceptions import TemplateError

        data = workflow_to_dict(fig1.workflow)
        for node in data["nodes"]:
            if node.get("template") == "selection":
                node["template"] = "teleport"
        with pytest.raises(TemplateError, match="unknown template"):
            workflow_from_dict(data)

    def test_custom_template_round_trips_with_library(self):
        """A workflow using a custom template reloads when the reader
        registers the same template."""
        from repro.core.builder import WorkflowBuilder
        from repro.core.schema import EMPTY_SCHEMA, Schema
        from repro.templates import default_library
        from repro.templates.base import (
            ActivityKind,
            ActivityTemplate,
            CostShape,
            SchemaPlan,
        )

        custom = ActivityTemplate(
            name="custom_noop",
            kind=ActivityKind.FILTER,
            arity=1,
            cost_shape=CostShape.LINEAR,
            param_names=("attr",),
            planner=lambda p: SchemaPlan(
                (Schema([p["attr"]]),), EMPTY_SCHEMA, EMPTY_SCHEMA
            ),
        )
        library = default_library()
        library.register(custom)
        builder = WorkflowBuilder(library=library)
        src = builder.source("S", ["K"], cardinality=5)
        noop = builder.activity("custom_noop", {"attr": "K"})
        builder.chain(src, noop)
        builder.target("DW", ["K"], provider=noop)
        wf = builder.build()

        text = dumps(wf)
        restored = loads(text, library=library)
        assert state_signature(restored) == state_signature(wf)
        from repro.exceptions import TemplateError

        with pytest.raises(TemplateError):
            loads(text)  # default library lacks the custom template


class TestRendering:
    def test_dot_contains_all_nodes(self, fig1):
        dot = to_dot(fig1.workflow)
        assert dot.startswith("digraph etl {")
        for node in fig1.workflow.nodes():
            assert f'"{node.id}"' in dot

    def test_dot_escapes_quotes(self, fig1):
        dot = to_dot(fig1.workflow, title='my "special" flow')
        assert '\\"special\\"' in dot

    def test_text_outline_lines(self, fig1):
        text = to_text(fig1.workflow)
        lines = text.splitlines()
        assert len(lines) == 9
        assert lines[0].startswith("[1] PARTS1 (source)")
        assert "U <- [3,6]" in text
