"""Unit tests for the schema algebra."""

import pytest

from repro.core.schema import EMPTY_SCHEMA, Schema
from repro.exceptions import SchemaError


class TestConstruction:
    def test_preserves_order(self):
        schema = Schema(["B", "A", "C"])
        assert schema.attrs == ("B", "A", "C")

    def test_from_generator(self):
        schema = Schema(attr for attr in ["X", "Y"])
        assert list(schema) == ["X", "Y"]

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(["A", "B", "A"])

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError, match="invalid attribute"):
            Schema([""])

    def test_rejects_non_string(self):
        with pytest.raises(SchemaError, match="invalid attribute"):
            Schema([42])

    def test_empty_schema_constant(self):
        assert len(EMPTY_SCHEMA) == 0
        assert list(EMPTY_SCHEMA) == []


class TestContainerProtocol:
    def test_len(self):
        assert len(Schema(["A", "B"])) == 2

    def test_contains(self):
        schema = Schema(["A", "B"])
        assert "A" in schema
        assert "Z" not in schema

    def test_getitem(self):
        assert Schema(["A", "B"])[1] == "B"

    def test_equality_is_order_sensitive(self):
        assert Schema(["A", "B"]) == Schema(["A", "B"])
        assert Schema(["A", "B"]) != Schema(["B", "A"])

    def test_hashable(self):
        assert hash(Schema(["A"])) == hash(Schema(["A"]))
        assert {Schema(["A", "B"]), Schema(["A", "B"])} == {Schema(["A", "B"])}

    def test_equality_with_non_schema(self):
        assert Schema(["A"]) != ["A"]

    def test_str(self):
        assert str(Schema(["A", "B"])) == "[A, B]"


class TestAlgebra:
    def test_issubset(self):
        assert Schema(["A"]).issubset(Schema(["A", "B"]))
        assert not Schema(["A", "C"]).issubset(Schema(["A", "B"]))

    def test_issubset_of_iterable(self):
        assert Schema(["A"]).issubset(["A", "B"])

    def test_empty_is_subset_of_anything(self):
        assert EMPTY_SCHEMA.issubset(Schema(["A"]))
        assert EMPTY_SCHEMA.issubset(EMPTY_SCHEMA)

    def test_compatible_ignores_order(self):
        assert Schema(["A", "B"]).compatible(Schema(["B", "A"]))
        assert not Schema(["A"]).compatible(Schema(["A", "B"]))

    def test_union_keeps_left_order(self):
        combined = Schema(["A", "B"]).union(Schema(["B", "C"]))
        assert combined.attrs == ("A", "B", "C")

    def test_union_with_iterable(self):
        assert Schema(["A"]).union(["B"]).attrs == ("A", "B")

    def test_minus(self):
        assert Schema(["A", "B", "C"]).minus(Schema(["B"])).attrs == ("A", "C")

    def test_minus_of_absent_attr_is_noop(self):
        assert Schema(["A"]).minus(["Z"]).attrs == ("A",)

    def test_intersect(self):
        assert Schema(["A", "B", "C"]).intersect(["C", "A"]).attrs == ("A", "C")

    def test_project_reorders(self):
        assert Schema(["A", "B", "C"]).project(["C", "A"]).attrs == ("C", "A")

    def test_project_missing_raises(self):
        with pytest.raises(SchemaError, match="missing"):
            Schema(["A"]).project(["B"])

    def test_normalized_sorts(self):
        assert Schema(["B", "A"]).normalized().attrs == ("A", "B")

    def test_as_set(self):
        assert Schema(["A", "B"]).as_set == frozenset({"A", "B"})
