"""Unit tests for the Prometheus text-format exposition renderer."""

from __future__ import annotations

import re

from repro.obs import CONTENT_TYPE, Recorder, render_prometheus

SAMPLE = re.compile(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)")


def _samples(text: str) -> list[tuple[str, str, str]]:
    """(name, labels, value) for every non-comment line, parse-checked."""
    rows = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = SAMPLE.fullmatch(line)
        assert match, f"malformed sample line: {line!r}"
        rows.append((match.group(1), match.group(2) or "", match.group(3)))
    return rows


class TestRenderPrometheus:
    def test_counter_becomes_total_with_type_line(self):
        recorder = Recorder()
        recorder.counter("serve.requests", op="optimize").add(3)
        text = render_prometheus(recorder.events())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert 'repro_serve_requests_total{op="optimize"} 3' in text

    def test_gauge_keeps_name_and_gets_max_twin(self):
        recorder = Recorder()
        gauge = recorder.gauge("queue.depth")
        gauge.set(5)
        gauge.set(2)
        text = render_prometheus(recorder.events())
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" in text
        assert "repro_queue_depth_max 5" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        recorder = Recorder()
        h = recorder.histogram("latency")
        h.observe(0.0)     # zero bucket
        h.observe(0.4)     # (0.25, 0.5]
        h.observe(0.5)     # (0.25, 0.5]
        h.observe(3.0)     # (2, 4]
        text = render_prometheus(recorder.events())
        assert "# TYPE repro_latency histogram" in text
        buckets = [
            (labels, value)
            for name, labels, value in _samples(text)
            if name == "repro_latency_bucket"
        ]
        assert buckets == [
            ('{le="0"}', "1"),
            ('{le="0.5"}', "3"),
            ('{le="4"}', "4"),
            ('{le="+Inf"}', "4"),
        ]
        assert "repro_latency_count 4" in text
        assert "repro_latency_sum 3.9" in text

    def test_histogram_labels_precede_le(self):
        recorder = Recorder()
        recorder.histogram("latency", op="optimize").observe(0.5)
        text = render_prometheus(recorder.events())
        assert 'repro_latency_bucket{op="optimize",le="0.5"} 1' in text
        assert 'repro_latency_sum{op="optimize"} 0.5' in text

    def test_duplicate_series_aggregate(self):
        # Events pooled from several recorders (daemon + workers) may
        # repeat a (name, labels) pair; the exposition must stay unique.
        left, right = Recorder(), Recorder()
        left.counter("hits").add(2)
        right.counter("hits").add(3)
        left.gauge("depth").set(4)
        right.gauge("depth").set(9)
        left.histogram("lat").observe(0.5)
        right.histogram("lat").observe(0.5)
        text = render_prometheus(left.events() + right.events())
        series = [(name, labels) for name, labels, _ in _samples(text)]
        assert len(series) == len(set(series))
        assert "repro_hits_total 5" in text
        assert "repro_depth_max 9" in text
        assert "repro_lat_count 2" in text

    def test_names_and_labels_are_sanitized_and_escaped(self):
        recorder = Recorder()
        recorder.counter(
            "serve.errors", **{"class": 'Time"out\nerror\\x'}
        ).add(1)
        text = render_prometheus(recorder.events())
        (sample,) = _samples(text)
        assert sample[0] == "repro_serve_errors_total"
        assert sample[1] == '{class="Time\\"out\\nerror\\\\x"}'

    def test_spans_and_structured_events_are_skipped(self):
        recorder = Recorder()
        with recorder.span("serve.request"):
            recorder.record_event("decision", verdict="keep")
        assert render_prometheus(recorder.events()) == ""

    def test_none_value_renders_as_nan(self):
        events = [{"type": "gauge", "name": "g", "tags": {}, "value": None,
                   "max": None}]
        assert "repro_g NaN" in render_prometheus(events)

    def test_prefix_is_configurable(self):
        recorder = Recorder()
        recorder.counter("hits").add(1)
        text = render_prometheus(recorder.events(), prefix="etl_")
        assert "etl_hits_total 1" in text

    def test_content_type_is_the_prometheus_text_version(self):
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")
