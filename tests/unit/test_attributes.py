"""Unit tests for the naming registry (paper section 3.1)."""

import pytest

from repro.core.attributes import NamingRegistry
from repro.exceptions import NamingError


class TestRegister:
    def test_returns_reference_name(self):
        registry = NamingRegistry()
        assert registry.register("PARTS2.COST", "dollar cost", "DCOST") == "DCOST"

    def test_synonyms_converge(self):
        registry = NamingRegistry()
        registry.register("PARTS1.PKEY", "part key", "PKEY")
        registry.register("PARTS2.PKEY", "part key", "PKEY")
        assert registry.reference_for("part key") == "PKEY"

    def test_one_reference_one_entity(self):
        registry = NamingRegistry()
        registry.register("PARTS1.COST", "euro cost", "COST")
        with pytest.raises(NamingError, match="already denotes"):
            registry.register("PARTS2.COST", "dollar cost", "COST")

    def test_one_entity_one_reference(self):
        registry = NamingRegistry()
        registry.register("A.X", "the measurement", "X")
        with pytest.raises(NamingError, match="already mapped"):
            registry.register("B.Y", "the measurement", "Y")

    def test_reregistering_same_pair_is_noop(self):
        registry = NamingRegistry()
        registry.register("A.X", "the measurement", "X")
        registry.register("A.X", "the measurement", "X")
        assert registry.reference_names == frozenset({"X"})


class TestLookups:
    def test_entity_for(self):
        registry = NamingRegistry()
        registry.register("A.X", "the measurement", "X")
        assert registry.entity_for("X") == "the measurement"

    def test_unknown_entity_raises(self):
        with pytest.raises(NamingError, match="not registered"):
            NamingRegistry().reference_for("ghost")

    def test_unknown_reference_raises(self):
        with pytest.raises(NamingError, match="not registered"):
            NamingRegistry().entity_for("GHOST")

    def test_mappings_in_order(self):
        registry = NamingRegistry()
        registry.register("A.X", "x", "X")
        registry.register("B.Y", "y", "Y")
        assert [m.original for m in registry.mappings] == ["A.X", "B.Y"]


class TestFresh:
    def test_fresh_uses_base_when_free(self):
        registry = NamingRegistry()
        assert registry.fresh("ECOST", "euro cost") == "ECOST"

    def test_fresh_suffixes_on_collision(self):
        registry = NamingRegistry()
        registry.register("A.X", "x", "ECOST")
        assert registry.fresh("ECOST", "another entity") == "ECOST_2"

    def test_fresh_is_idempotent_per_entity(self):
        registry = NamingRegistry()
        first = registry.fresh("W", "weight")
        second = registry.fresh("W", "weight")
        assert first == second
