"""Unit tests for the template layer: declarations, planning, library."""

import pytest

from repro.core.schema import EMPTY_SCHEMA, Schema
from repro.exceptions import TemplateError
from repro.templates import (
    AGGREGATION,
    ALL_BUILTIN_TEMPLATES,
    FUNCTION_APPLY,
    JOIN,
    PK_CHECK,
    PROJECTION,
    SELECTION,
    SURROGATE_KEY,
    UNION,
    ActivityKind,
    ActivityTemplate,
    CostShape,
    SchemaPlan,
    TemplateLibrary,
    default_library,
)
from repro.templates.builtin import distributes_over_for


class TestTemplateDeclaration:
    def test_bad_arity_rejected(self):
        with pytest.raises(TemplateError, match="arity"):
            ActivityTemplate(
                name="bad",
                kind=ActivityKind.FILTER,
                arity=3,
                cost_shape=CostShape.LINEAR,
                param_names=(),
                planner=lambda p: SchemaPlan((EMPTY_SCHEMA,), EMPTY_SCHEMA, EMPTY_SCHEMA),
            )

    def test_binary_kind_requires_arity_two(self):
        with pytest.raises(TemplateError, match="BINARY"):
            ActivityTemplate(
                name="bad",
                kind=ActivityKind.BINARY,
                arity=1,
                cost_shape=CostShape.MERGE,
                param_names=(),
                planner=lambda p: SchemaPlan((EMPTY_SCHEMA,), EMPTY_SCHEMA, EMPTY_SCHEMA),
            )

    def test_predicate_name_defaults_to_template_name(self):
        template = ActivityTemplate(
            name="custom_filter",
            kind=ActivityKind.FILTER,
            arity=1,
            cost_shape=CostShape.LINEAR,
            param_names=(),
            planner=lambda p: SchemaPlan((EMPTY_SCHEMA,), EMPTY_SCHEMA, EMPTY_SCHEMA),
        )
        assert template.predicate_name == "custom_filter"


class TestPlanners:
    def test_selection_plan(self):
        plan = SELECTION.plan({"attr": "V", "op": ">=", "value": 1})
        assert plan.functionality == Schema(["V"])
        assert plan.generated == EMPTY_SCHEMA

    def test_pk_check_requires_keys(self):
        with pytest.raises(TemplateError, match="non-empty"):
            PK_CHECK.plan({"key_attrs": (), "reference": "r"})

    def test_projection_requires_attrs(self):
        with pytest.raises(TemplateError, match="non-empty"):
            PROJECTION.plan({"attrs": ()})

    def test_function_apply_in_place_needs_single_input(self):
        with pytest.raises(TemplateError, match="exactly one input"):
            FUNCTION_APPLY.plan(
                {"function": "f", "inputs": ("A", "B"), "output": "A"}
            )

    def test_function_apply_keep_inputs(self):
        plan = FUNCTION_APPLY.plan(
            {"function": "f", "inputs": ("A",), "output": "B", "drop_inputs": False}
        )
        assert plan.projected_out == EMPTY_SCHEMA
        assert plan.generated == Schema(["B"])

    def test_surrogate_key_same_attr_rejected(self):
        with pytest.raises(TemplateError, match="must differ"):
            SURROGATE_KEY.plan(
                {"key_attr": "K", "skey_attr": "K", "lookup": "sk"}
            )

    def test_aggregation_measure_not_in_group_by(self):
        with pytest.raises(TemplateError, match="measure"):
            AGGREGATION.plan(
                {"group_by": ("V",), "measure": "V", "agg": "sum", "output": "VM"}
            )

    def test_aggregation_output_not_in_group_by(self):
        with pytest.raises(TemplateError, match="collides"):
            AGGREGATION.plan(
                {"group_by": ("K",), "measure": "V", "agg": "sum", "output": "K"}
            )

    def test_join_requires_on(self):
        with pytest.raises(TemplateError, match="non-empty"):
            JOIN.plan({"on": ()})

    def test_binary_functionality_per_input(self):
        plan = JOIN.plan({"on": ("K",)})
        assert len(plan.functionality_per_input) == 2
        assert plan.functionality == Schema(["K"])


class TestDistributesOver:
    def test_selection_moves_across_all_binaries(self):
        assert distributes_over_for(SELECTION, {}) == frozenset(
            {"union", "join", "difference", "intersection"}
        )

    def test_plain_function_union_only(self):
        params = {"function": "f", "inputs": ("A",), "output": "B"}
        assert distributes_over_for(FUNCTION_APPLY, params) == frozenset({"union"})

    def test_injective_function_widens(self):
        params = {
            "function": "f",
            "inputs": ("A",),
            "output": "B",
            "injective": True,
        }
        assert distributes_over_for(FUNCTION_APPLY, params) == frozenset(
            {"union", "difference", "intersection"}
        )

    def test_aggregation_never_moves(self):
        assert AGGREGATION.distributes_over == frozenset()


class TestLibrary:
    def test_default_library_has_all_builtins(self):
        library = default_library()
        assert len(library) == len(ALL_BUILTIN_TEMPLATES)
        assert "selection" in library
        assert library.get("union") is UNION

    def test_unknown_template_raises(self):
        with pytest.raises(TemplateError, match="unknown template"):
            default_library().get("teleport")

    def test_double_registration_rejected(self):
        library = default_library()
        with pytest.raises(TemplateError, match="already registered"):
            library.register(SELECTION)

    def test_replace_allows_override(self):
        library = default_library()
        library.register(SELECTION, replace=True)
        assert library.get("selection") is SELECTION

    def test_copy_is_independent(self):
        library = default_library()
        duplicate = library.copy()
        custom = ActivityTemplate(
            name="noop",
            kind=ActivityKind.FILTER,
            arity=1,
            cost_shape=CostShape.LINEAR,
            param_names=(),
            planner=lambda p: SchemaPlan((EMPTY_SCHEMA,), EMPTY_SCHEMA, EMPTY_SCHEMA),
        )
        duplicate.register(custom)
        assert "noop" in duplicate
        assert "noop" not in library

    def test_names_listing(self):
        assert "aggregation" in default_library().names()
