"""Template catalogue rendering and the tracing executor."""

import pytest

from repro.engine.tracing import TracingExecutor
from repro.templates import SELECTION, default_library
from repro.templates.catalog import render_catalog, template_summary


class TestCatalog:
    def test_summary_fields(self):
        row = template_summary(SELECTION)
        assert row["name"] == "selection"
        assert row["kind"] == "filter"
        assert row["cost_shape"] == "linear"
        assert "union" in row["moves_across"]

    def test_render_lists_every_template(self):
        catalog = render_catalog()
        for template in default_library():
            assert f"`{template.name}`" in catalog

    def test_render_is_markdown_table(self):
        catalog = render_catalog()
        assert catalog.startswith("# Activity template catalogue")
        assert "| template | kind |" in catalog

    def test_render_with_custom_library(self):
        library = default_library()
        catalog = render_catalog(library)
        assert "`distinct`" in catalog


class TestTracingExecutor:
    def test_trace_collected(self, fig1):
        executor = TracingExecutor(context=fig1.context)
        executor.run(fig1.workflow, fig1.make_data(seed=1, n1=50, n2=80))
        trace = executor.last_trace
        assert trace is not None
        assert {t.activity_id for t in trace.traces} == {
            "3", "4", "5", "6", "7", "8",
        }

    def test_trace_rows_and_selectivity(self, fig1):
        executor = TracingExecutor(context=fig1.context)
        executor.run(fig1.workflow, fig1.make_data(seed=1, n1=50, n2=80))
        by_id = {t.activity_id: t for t in executor.last_trace.traces}
        assert by_id["3"].rows_in == 50
        assert by_id["4"].selectivity == pytest.approx(1.0)
        assert 0.0 < by_id["6"].selectivity <= 1.0

    def test_render_profile(self, fig1):
        executor = TracingExecutor(context=fig1.context)
        executor.run(fig1.workflow, fig1.make_data(seed=1))
        report = executor.last_trace.render(top=3)
        assert "template" in report
        assert len(report.splitlines()) == 4  # header + top 3

    def test_composite_components_traced(self, fig1):
        from repro.core.transitions import Merge

        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        executor = TracingExecutor(context=fig1.context)
        executor.run(merged, fig1.make_data(seed=1))
        ids = {t.activity_id for t in executor.last_trace.traces}
        assert {"4", "5"} <= ids
        assert "4+5" not in ids

    def test_trace_reset_between_runs(self, fig1):
        executor = TracingExecutor(context=fig1.context)
        executor.run(fig1.workflow, fig1.make_data(seed=1))
        first = executor.last_trace
        executor.run(fig1.workflow, fig1.make_data(seed=2))
        assert executor.last_trace is not first
        assert len(executor.last_trace.traces) == len(first.traces)

    def test_results_match_plain_executor(self, fig1, fig1_executor):
        from repro.engine import as_multiset

        data = fig1.make_data(seed=3)
        plain = fig1_executor.run(fig1.workflow, data)
        traced = TracingExecutor(context=fig1.context).run(fig1.workflow, data)
        assert as_multiset(plain.targets["DW"]) == as_multiset(
            traced.targets["DW"]
        )
