"""Unit tests for recordsets."""

import pytest

from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.exceptions import WorkflowError


class TestRecordSet:
    def test_source_properties(self):
        rs = RecordSet("1", "PARTS1", Schema(["A"]), RecordSetKind.SOURCE, 100)
        assert rs.is_source
        assert not rs.is_target
        assert rs.cardinality == 100.0

    def test_target_properties(self):
        rs = RecordSet("9", "DW", Schema(["A"]), RecordSetKind.TARGET)
        assert rs.is_target
        assert not rs.is_source

    def test_default_kind_is_intermediate(self):
        rs = RecordSet("5", "STAGE", Schema(["A"]))
        assert rs.kind is RecordSetKind.INTERMEDIATE
        assert not rs.is_source
        assert not rs.is_target

    def test_empty_schema_rejected(self):
        with pytest.raises(WorkflowError, match="non-empty"):
            RecordSet("1", "X", Schema([]))

    def test_bad_id_rejected(self):
        with pytest.raises(WorkflowError):
            RecordSet(1, "X", Schema(["A"]))

    def test_negative_cardinality_rejected(self):
        with pytest.raises(WorkflowError, match="cardinality"):
            RecordSet("1", "X", Schema(["A"]), RecordSetKind.SOURCE, -1)

    def test_repr_mentions_kind(self):
        rs = RecordSet("1", "PARTS1", Schema(["A"]), RecordSetKind.SOURCE, 10)
        assert "source" in repr(rs)
