"""The documented public API surface stays importable and coherent."""

import importlib

import pytest


TOP_LEVEL = [
    "Activity",
    "CompositeActivity",
    "ETLWorkflow",
    "NamingRegistry",
    "RecordSet",
    "RecordSetKind",
    "Schema",
    "WorkflowBuilder",
    "state_signature",
    "symbolically_equivalent",
    "CostModel",
    "ProcessedRowsCostModel",
    "LinearCostModel",
    "estimate",
    "HSConfig",
    "OptimizationResult",
    "exhaustive_search",
    "heuristic_search",
    "greedy_search",
    "annealing_search",
    "optimize",
    "ReproError",
]


@pytest.mark.parametrize("name", TOP_LEVEL)
def test_top_level_exports(name):
    import repro

    assert hasattr(repro, name), name
    assert name in repro.__all__


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.core.transitions",
        "repro.core.cost",
        "repro.core.search",
        "repro.core.impact",
        "repro.core.lint",
        "repro.core.builder",
        "repro.templates",
        "repro.templates.catalog",
        "repro.engine",
        "repro.engine.tracing",
        "repro.physical",
        "repro.workloads",
        "repro.experiments",
        "repro.io",
        "repro.cli",
    ],
)
def test_submodules_import(module):
    imported = importlib.import_module(module)
    assert imported.__doc__, f"{module} lacks a module docstring"


def test_all_lists_are_accurate():
    """Every name in a package's __all__ actually exists."""
    for module_name in (
        "repro",
        "repro.core",
        "repro.core.transitions",
        "repro.core.cost",
        "repro.core.search",
        "repro.engine",
        "repro.templates",
        "repro.workloads",
        "repro.experiments",
        "repro.io",
        "repro.physical",
    ):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
