"""Unit tests for cost formulas, models and the state estimator."""

import pytest

from repro.core.activity import Activity, CompositeActivity
from repro.core.cost import (
    LinearCostModel,
    ProcessedRowsCostModel,
    cost_for_shape,
    estimate,
    estimate_incremental,
    nlogn,
)
from repro.core.transitions import Distribute, Factorize, Merge, Swap
from repro.exceptions import ReproError
from repro.templates import builtin as t
from repro.templates.base import CostShape


class TestFormulas:
    def test_nlogn_small_inputs_clamp(self):
        assert nlogn(0) == 0
        assert nlogn(1) == 1
        assert nlogn(2) == 2

    def test_nlogn_matches_fig4(self):
        # Fig. 4 prices SK on 8 rows at 8*log2(8) = 24.
        assert nlogn(8) == pytest.approx(24.0)

    def test_nlogn_rejects_negative(self):
        with pytest.raises(ReproError):
            nlogn(-1)

    def test_linear_shape(self):
        assert cost_for_shape(CostShape.LINEAR, (10.0,)) == 10.0

    def test_sort_shape(self):
        assert cost_for_shape(CostShape.SORT, (8.0,)) == pytest.approx(24.0)

    def test_merge_shape(self):
        assert cost_for_shape(CostShape.MERGE, (3.0, 4.0)) == 7.0

    def test_sort_merge_shape(self):
        assert cost_for_shape(CostShape.SORT_MERGE, (8.0, 8.0)) == pytest.approx(48.0)


def _selection(activity_id="1", selectivity=0.5):
    return Activity(
        activity_id,
        t.SELECTION,
        {"attr": "V", "op": ">=", "value": 1.0},
        selectivity=selectivity,
    )


class TestProcessedRowsModel:
    def test_filter_cost_and_cardinality(self, model):
        activity = _selection()
        assert model.activity_cost(activity, (100.0,)) == 100.0
        assert model.output_cardinality(activity, (100.0,)) == 50.0

    def test_surrogate_key_is_sort_priced(self, model):
        sk = Activity(
            "1", t.SURROGATE_KEY, {"key_attr": "K", "skey_attr": "S", "lookup": "l"}
        )
        assert model.activity_cost(sk, (8.0,)) == pytest.approx(24.0)
        assert model.output_cardinality(sk, (8.0,)) == 8.0

    def test_union_cardinality_adds(self, model):
        union = Activity("1", t.UNION, {})
        assert model.output_cardinality(union, (3.0, 4.0)) == 7.0
        assert model.activity_cost(union, (3.0, 4.0)) == 7.0

    def test_join_cardinality_scales_cross_product(self, model):
        join = Activity("1", t.JOIN, {"on": ("K",)}, selectivity=0.01)
        assert model.output_cardinality(join, (100.0, 50.0)) == pytest.approx(50.0)

    def test_difference_cardinality(self, model):
        diff = Activity("1", t.DIFFERENCE, {}, selectivity=0.7)
        assert model.output_cardinality(diff, (100.0, 30.0)) == pytest.approx(70.0)

    def test_intersection_cardinality(self, model):
        inter = Activity("1", t.INTERSECTION, {}, selectivity=0.5)
        assert model.output_cardinality(inter, (100.0, 30.0)) == pytest.approx(15.0)

    def test_arity_mismatch_raises(self, model):
        with pytest.raises(ReproError, match="expected 1"):
            model.activity_cost(_selection(), (1.0, 2.0))

    def test_composite_cost_sums_components(self, model):
        composite = CompositeActivity((_selection("1", 0.5), _selection("2", 0.5)))
        # First selection sees 100 rows, second sees 50.
        assert model.activity_cost(composite, (100.0,)) == 150.0
        assert model.output_cardinality(composite, (100.0,)) == 25.0


class TestLinearModel:
    def test_everything_costs_input_rows(self):
        model = LinearCostModel()
        sk = Activity(
            "1", t.SURROGATE_KEY, {"key_attr": "K", "skey_attr": "S", "lookup": "l"}
        )
        assert model.activity_cost(sk, (8.0,)) == 8.0

    def test_composite_under_linear_model(self):
        model = LinearCostModel()
        composite = CompositeActivity((_selection("1", 0.5), _selection("2", 0.5)))
        assert model.activity_cost(composite, (100.0,)) == 150.0


class TestEstimate:
    def test_fig1_cost_breakdown(self, fig1, model):
        report = estimate(fig1.workflow, model)
        wf = fig1.workflow
        # Source cardinalities: PARTS1=1000, PARTS2=3000.
        assert report.cardinalities[wf.node_by_id("1")] == 1000
        assert report.cardinalities[wf.node_by_id("2")] == 3000
        # NN(ECOST_M): linear on 1000 rows.
        assert report.cost_of(wf.node_by_id("3")) == 1000
        # Aggregation: nlogn on 3000 rows.
        assert report.cost_of(wf.node_by_id("6")) == pytest.approx(nlogn(3000))
        assert report.total == pytest.approx(sum(report.node_costs.values()))

    def test_recordsets_cost_nothing(self, fig1, model):
        report = estimate(fig1.workflow, model)
        assert report.cost_of(fig1.workflow.node_by_id("1")) == 0.0

    def test_fig4_costs(self, fig4, model):
        states, _ = fig4
        costs = {name: estimate(wf, model).total for name, wf in states.items()}
        # With the union priced at n1+n2 (the paper ignores it):
        # initial = 2*24 + 16 + 16 = 80; distributed = 16 + 16 + 8 = 40;
        # factorized = 16 + 8 + 24 = 48.
        assert costs["initial"] == pytest.approx(80.0)
        assert costs["distributed"] == pytest.approx(40.0)
        assert costs["factorized"] == pytest.approx(48.0)
        # The paper's qualitative claim: DIS and FAC both reduce the cost.
        assert costs["distributed"] < costs["initial"]
        assert costs["factorized"] < costs["initial"]


class TestIncrementalEstimate:
    def _check_matches_full(self, workflow, transition, model):
        parent = estimate(workflow, model)
        successor = transition.apply(workflow)
        incremental = estimate_incremental(
            successor, model, parent, transition.affected_nodes()
        )
        full = estimate(successor, model)
        assert incremental.total == pytest.approx(full.total)
        for node, cost in full.node_costs.items():
            assert incremental.node_costs[node] == pytest.approx(cost)

    def test_swap_incremental(self, fig1, model):
        wf = fig1.workflow
        self._check_matches_full(wf, Swap(wf.node_by_id("5"), wf.node_by_id("6")), model)

    def test_distribute_incremental(self, fig1, model):
        wf = fig1.workflow
        self._check_matches_full(
            wf, Distribute(wf.node_by_id("7"), wf.node_by_id("8")), model
        )

    def test_factorize_incremental(self, fig4, model):
        states, _ = fig4
        wf = states["distributed"]
        transition = Factorize(
            wf.node_by_id("5"), wf.node_by_id("3"), wf.node_by_id("4")
        )
        self._check_matches_full(wf, transition, model)

    def test_merge_incremental(self, fig1, model):
        wf = fig1.workflow
        self._check_matches_full(wf, Merge(wf.node_by_id("4"), wf.node_by_id("5")), model)

    def test_merge_cost_equals_split_cost(self, fig1, model):
        wf = fig1.workflow
        merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
        assert estimate(merged, model).total == pytest.approx(
            estimate(wf, model).total
        )
