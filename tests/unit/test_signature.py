"""Unit tests for state signatures (paper section 4.1)."""

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.signature import state_signature
from repro.core.transitions import Swap
from repro.core.workflow import ETLWorkflow
from repro.templates import builtin as t


def test_fig1_signature_matches_paper(fig1):
    """The paper gives ((1.3)//(2.4.5.6)).7.8.9 for Fig. 1."""
    assert state_signature(fig1.workflow) == "((1.3)//(2.4.5.6)).7.8.9"


def test_signature_changes_after_swap(fig1):
    wf = fig1.workflow
    swap = Swap(wf.node_by_id("5"), wf.node_by_id("6"))
    swapped = swap.apply(wf)
    assert state_signature(swapped) == "((1.3)//(2.4.6.5)).7.8.9"
    assert state_signature(swapped) != state_signature(wf)


def test_commutative_branches_are_canonicalized():
    """Mirror-image unions produce one signature."""

    def build(flip: bool) -> ETLWorkflow:
        wf = ETLWorkflow()
        schema = Schema(["A"])
        s1 = wf.add_node(RecordSet("1", "S1", schema, RecordSetKind.SOURCE, 1))
        s2 = wf.add_node(RecordSet("2", "S2", schema, RecordSetKind.SOURCE, 1))
        union = wf.add_node(Activity("3", t.UNION, {}))
        dw = wf.add_node(RecordSet("9", "DW", schema, RecordSetKind.TARGET))
        wf.add_edge(s1, union, port=1 if flip else 0)
        wf.add_edge(s2, union, port=0 if flip else 1)
        wf.add_edge(union, dw)
        return wf

    assert state_signature(build(False)) == state_signature(build(True))


def test_difference_branches_keep_port_order():
    """A-B and B-A must have different signatures."""

    def build(flip: bool) -> ETLWorkflow:
        wf = ETLWorkflow()
        schema = Schema(["A"])
        s1 = wf.add_node(RecordSet("1", "S1", schema, RecordSetKind.SOURCE, 1))
        s2 = wf.add_node(RecordSet("2", "S2", schema, RecordSetKind.SOURCE, 1))
        diff = wf.add_node(Activity("3", t.DIFFERENCE, {}))
        dw = wf.add_node(RecordSet("9", "DW", schema, RecordSetKind.TARGET))
        wf.add_edge(s1, diff, port=1 if flip else 0)
        wf.add_edge(s2, diff, port=0 if flip else 1)
        wf.add_edge(diff, dw)
        return wf

    assert state_signature(build(False)) != state_signature(build(True))


def test_single_chain_signature():
    wf = ETLWorkflow()
    schema = Schema(["A"])
    src = wf.add_node(RecordSet("1", "S", schema, RecordSetKind.SOURCE, 1))
    nn = wf.add_node(Activity("2", t.NOT_NULL, {"attr": "A"}))
    dw = wf.add_node(RecordSet("3", "DW", schema, RecordSetKind.TARGET))
    wf.add_edge(src, nn)
    wf.add_edge(nn, dw)
    assert state_signature(wf) == "1.2.3"


def test_multi_target_signature_sorted():
    wf = ETLWorkflow()
    schema = Schema(["A"])
    src = wf.add_node(RecordSet("1", "S", schema, RecordSetKind.SOURCE, 1))
    nn1 = wf.add_node(Activity("2", t.NOT_NULL, {"attr": "A"}))
    nn2 = wf.add_node(Activity("3", t.NOT_NULL, {"attr": "A"}, selectivity=0.5))
    dw1 = wf.add_node(RecordSet("8", "DW1", schema, RecordSetKind.TARGET))
    dw2 = wf.add_node(RecordSet("9", "DW2", schema, RecordSetKind.TARGET))
    wf.add_edge(src, nn1)
    wf.add_edge(src, nn2)
    wf.add_edge(nn1, dw1)
    wf.add_edge(nn2, dw2)
    assert state_signature(wf) == "1.2.8//1.3.9"


def test_merged_activity_id_in_signature(fig1):
    from repro.core.transitions import Merge

    wf = fig1.workflow
    merged = Merge(wf.node_by_id("4"), wf.node_by_id("5")).apply(wf)
    assert state_signature(merged) == "((1.3)//(2.4+5.6)).7.8.9"
