"""Unit tests for the ``repro top`` renderer and polling loop.

The renderer is pure (status/stats dicts in, text out), so these tests
drive it with canned protocol payloads; the end-to-end test against a
live daemon lives in ``tests/serve/test_observability.py``.
"""

from __future__ import annotations

from repro.obs import render_exemplars, render_top, run_top


def _status():
    return {
        "pid": 4242,
        "uptime_seconds": 10.0,
        "workers": 2,
        "max_jobs": 2,
        "queue": {
            "depth": 1,
            "capacity": 64,
            "inflight": {"default": 1},
            "admitted": 7,
            "rejected_full": 1,
            "rejected_tenant": 2,
        },
    }


def _stats(requests=20):
    return {
        "memo": {"entries": 3, "capacity": 1024, "hits": 5, "misses": 5,
                 "hit_rate": 0.5},
        "transposition": {"hits": 9, "misses": 1, "hit_rate": 0.9},
        "queue": {"inflight": {"default": 1, "acme": 0}},
        "tenants": {"default": 15, "acme": 5},
        "counters": {
            "serve.requests[op=optimize]": requests,
            "serve.errors": 1,
        },
        "histograms": {
            "serve.request_latency_seconds": {
                "count": requests, "sum": 2.0, "mean": 0.1,
                "p50": 0.125, "p90": 0.25, "p99": 0.5,
            },
            "serve.queue_wait_seconds": {
                "count": requests, "sum": 0.2, "mean": 0.01,
                "p50": 0.008, "p90": 0.016, "p99": 0.016,
            },
        },
    }


class TestRenderTop:
    def test_one_screen_carries_every_headline_number(self):
        screen = render_top(_status(), _stats())
        assert "pid 4242" in screen
        assert "workers 2" in screen and "max_jobs 2" in screen
        assert "20 total" in screen
        assert "2.00 req/s" in screen  # 20 requests / 10s uptime
        assert "errors 1" in screen
        assert "depth 1/64" in screen
        assert "rejected 3 (full 1, tenant 2)" in screen
        assert "hit rate 50.0%" in screen
        assert "transposition hit rate 90.0%" in screen
        assert "default=1/15" in screen and "acme=0/5" in screen

    def test_latency_table_shows_p50_p90_p99_in_ms(self):
        screen = render_top(_status(), _stats())
        (row,) = [
            line for line in screen.splitlines()
            if line.startswith("serve.request_latency_seconds")
        ]
        assert "125.00" in row and "250.00" in row and "500.00" in row

    def test_rate_uses_counter_delta_between_polls(self):
        screen = render_top(
            _status(), _stats(requests=30),
            previous=_stats(requests=20), elapsed=5.0,
        )
        assert "2.00 req/s" in screen  # (30 - 20) / 5s, not 30 / uptime

    def test_empty_daemon_renders_without_histograms(self):
        screen = render_top(
            {"pid": 1, "uptime_seconds": 0.0, "queue": {}},
            {"memo": {}, "transposition": {}, "counters": {}},
        )
        assert "0 total" in screen
        assert "latency" not in screen


class TestRenderExemplars:
    def test_slow_and_failed_sections(self):
        snapshot = {
            "capacity": 8,
            "slowest": [{
                "trace_id": "t1-9", "tenant": "acme", "algorithm": "hs",
                "latency_seconds": 1.5, "queued_seconds": 0.01,
                "ok": True, "spans": [{}, {}],
            }],
            "failed": [{
                "trace_id": "t1-10", "tenant": "acme", "algorithm": "es",
                "latency_seconds": 0.2, "queued_seconds": 0.0,
                "ok": False, "code": "bad-request", "spans": [],
            }],
        }
        text = render_exemplars(snapshot)
        assert "slowest requests (1):" in text
        assert "t1-9" in text and "1500.00ms" in text and " ok" in text
        assert "failed requests (1):" in text
        assert "t1-10" in text and "bad-request" in text

    def test_empty_rings(self):
        text = render_exemplars({"slowest": [], "failed": []})
        assert text.count("(none)") == 2


class _FakeClient:
    def __init__(self):
        self.polls = 0

    def status(self):
        return _status()

    def stats(self):
        self.polls += 1
        return _stats(requests=10 * self.polls)

    def exemplars(self):
        return {"slowest": [], "failed": []}


class TestRunTop:
    def test_renders_the_requested_iterations(self):
        client = _FakeClient()
        screens: list[str] = []
        rendered = run_top(
            client, interval=0.0, iterations=3, write=screens.append
        )
        assert rendered == 3 and client.polls == 3
        assert all("repro serve" in screen for screen in screens)
        assert not screens[0].startswith("\x1b")

    def test_clear_prefixes_the_ansi_clear_sequence(self):
        screens: list[str] = []
        run_top(
            _FakeClient(), interval=0.0, iterations=1, clear=True,
            write=screens.append,
        )
        assert screens[0].startswith("\x1b[2J\x1b[H")

    def test_exemplars_section_is_appended(self):
        screens: list[str] = []
        run_top(
            _FakeClient(), interval=0.0, iterations=1, show_exemplars=True,
            write=screens.append,
        )
        assert "slowest requests (0):" in screens[0]
