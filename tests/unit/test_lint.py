"""Unit tests for the naming-discipline linter."""

from repro.core.activity import Activity, CompositeActivity
from repro.core.lint import LintLevel, lint_workflow
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.transitions import Merge
from repro.core.workflow import ETLWorkflow
from repro.templates import builtin as t


def _chain(*nodes):
    wf = ETLWorkflow()
    for node in nodes:
        wf.add_node(node)
    for provider, consumer in zip(nodes, nodes[1:]):
        wf.add_edge(provider, consumer)
    return wf


def _in_place(activity_id, attr):
    return Activity(
        activity_id,
        t.FUNCTION_APPLY,
        {"function": "shift_up", "inputs": (attr,), "output": attr},
    )


class TestFormatSensitiveComparison:
    def test_in_place_plus_constant_filter_is_error(self):
        src = RecordSet("1", "S", Schema(["A", "B"]), RecordSetKind.SOURCE, 10)
        scrub = _in_place("2", "A")
        sigma = Activity(
            "3", t.SELECTION, {"attr": "A", "op": ">=", "value": 5}, selectivity=0.5
        )
        dw = RecordSet("4", "DW", Schema(["A", "B"]), RecordSetKind.TARGET)
        findings = lint_workflow(_chain(src, scrub, sigma, dw))
        assert len(findings) == 1
        assert findings[0].level is LintLevel.ERROR
        assert findings[0].rule == "format-sensitive-comparison"
        assert findings[0].attribute == "A"

    def test_not_null_does_not_trigger(self):
        src = RecordSet("1", "S", Schema(["A", "B"]), RecordSetKind.SOURCE, 10)
        scrub = _in_place("2", "A")
        nn = Activity("3", t.NOT_NULL, {"attr": "A"}, selectivity=0.9)
        dw = RecordSet("4", "DW", Schema(["A", "B"]), RecordSetKind.TARGET)
        assert lint_workflow(_chain(src, scrub, nn, dw)) == []

    def test_disjoint_attributes_clean(self):
        src = RecordSet("1", "S", Schema(["A", "B"]), RecordSetKind.SOURCE, 10)
        scrub = _in_place("2", "A")
        sigma = Activity(
            "3", t.SELECTION, {"attr": "B", "op": ">=", "value": 5}, selectivity=0.5
        )
        dw = RecordSet("4", "DW", Schema(["A", "B"]), RecordSetKind.TARGET)
        assert lint_workflow(_chain(src, scrub, sigma, dw)) == []

    def test_finding_inside_composite_detected(self):
        src = RecordSet("1", "S", Schema(["A", "B"]), RecordSetKind.SOURCE, 10)
        scrub = _in_place("2", "A")
        sigma = Activity(
            "3", t.SELECTION, {"attr": "A", "op": ">=", "value": 5}, selectivity=0.5
        )
        dw = RecordSet("4", "DW", Schema(["A", "B"]), RecordSetKind.TARGET)
        wf = _chain(src, scrub, sigma, dw)
        merged = Merge(scrub, sigma).apply(wf)
        findings = lint_workflow(merged)
        assert [f.rule for f in findings] == ["format-sensitive-comparison"]


class TestMixedFormatBranches:
    def _union_state(self, transform_both: bool, gamma_downstream: bool):
        wf = ETLWorkflow()
        schema = Schema(["K", "DATE", "V"])
        s1 = wf.add_node(RecordSet("1", "S1", schema, RecordSetKind.SOURCE, 10))
        s2 = wf.add_node(RecordSet("2", "S2", schema, RecordSetKind.SOURCE, 10))
        a2e_1 = wf.add_node(
            Activity(
                "3",
                t.FUNCTION_APPLY,
                {
                    "function": "date_us_to_eu",
                    "inputs": ("DATE",),
                    "output": "DATE",
                    "injective": True,
                },
            )
        )
        wf.add_edge(s1, a2e_1)
        head2 = s2
        if transform_both:
            a2e_2 = wf.add_node(
                Activity(
                    "4",
                    t.FUNCTION_APPLY,
                    {
                        "function": "date_us_to_eu",
                        "inputs": ("DATE",),
                        "output": "DATE",
                        "injective": True,
                    },
                )
            )
            wf.add_edge(s2, a2e_2)
            head2 = a2e_2
        union = wf.add_node(Activity("5", t.UNION, {}))
        wf.add_edge(a2e_1, union, port=0)
        wf.add_edge(head2, union, port=1)
        head = union
        if gamma_downstream:
            gamma = wf.add_node(
                Activity(
                    "6",
                    t.AGGREGATION,
                    {
                        "group_by": ("K", "DATE"),
                        "measure": "V",
                        "agg": "sum",
                        "output": "VM",
                    },
                    selectivity=0.4,
                )
            )
            wf.add_edge(union, gamma)
            head = gamma
            dw = wf.add_node(
                RecordSet("9", "DW", Schema(["K", "DATE", "VM"]), RecordSetKind.TARGET)
            )
        else:
            dw = wf.add_node(
                RecordSet("9", "DW", schema, RecordSetKind.TARGET)
            )
        wf.add_edge(head, dw)
        return wf

    def test_partial_transform_with_downstream_grouper_warns(self):
        findings = lint_workflow(
            self._union_state(transform_both=False, gamma_downstream=True)
        )
        assert [f.rule for f in findings] == ["mixed-format-branches"]
        assert findings[0].level is LintLevel.WARNING

    def test_transform_on_both_branches_clean(self):
        findings = lint_workflow(
            self._union_state(transform_both=True, gamma_downstream=True)
        )
        assert findings == []

    def test_no_downstream_grouper_clean(self):
        findings = lint_workflow(
            self._union_state(transform_both=False, gamma_downstream=False)
        )
        assert findings == []

    def test_diamond_shared_transformer_does_not_mask_partial_branch(self):
        """Branch attribution must exclude the diamond's shared region.

        A transformer upstream of the fork reaches the union through every
        provider; counting it as a member of each branch made the partial
        (branch-only) transform look total, suppressing the warning.
        """
        wf = ETLWorkflow()
        schema = Schema(["K", "DATE", "V"])
        src = wf.add_node(RecordSet("1", "S", schema, RecordSetKind.SOURCE, 10))
        shared = wf.add_node(
            Activity(
                "2",
                t.FUNCTION_APPLY,
                {
                    "function": "date_us_to_eu",
                    "inputs": ("DATE",),
                    "output": "DATE",
                    "injective": True,
                },
            )
        )
        wf.add_edge(src, shared)
        # Fork: branch A re-transforms DATE, branch B does not.
        branch_only = wf.add_node(
            Activity(
                "3",
                t.FUNCTION_APPLY,
                {
                    "function": "shift_up",
                    "inputs": ("DATE",),
                    "output": "DATE",
                },
            )
        )
        passthrough = wf.add_node(
            Activity("4", t.NOT_NULL, {"attr": "K"}, selectivity=0.9)
        )
        wf.add_edge(shared, branch_only)
        wf.add_edge(shared, passthrough)
        union = wf.add_node(Activity("5", t.UNION, {}))
        wf.add_edge(branch_only, union, port=0)
        wf.add_edge(passthrough, union, port=1)
        gamma = wf.add_node(
            Activity(
                "6",
                t.AGGREGATION,
                {
                    "group_by": ("K", "DATE"),
                    "measure": "V",
                    "agg": "sum",
                    "output": "VM",
                },
                selectivity=0.4,
            )
        )
        wf.add_edge(union, gamma)
        dw = wf.add_node(
            RecordSet(
                "9", "DW", Schema(["K", "DATE", "VM"]), RecordSetKind.TARGET
            )
        )
        wf.add_edge(gamma, dw)

        findings = lint_workflow(wf)
        assert [f.rule for f in findings] == ["mixed-format-branches"]
        assert findings[0].attribute == "DATE"
        assert "3" in findings[0].activity_ids

    def test_convergence_packaged_in_composite_still_scanned(self):
        """A binary hidden inside a CompositeActivity must not escape.

        The binaries scan used to inspect only top-level activities; a MER
        package wrapping the union (is_binary False on the container) made
        the convergence point invisible.
        """
        wf = ETLWorkflow()
        schema = Schema(["K", "DATE", "V"])
        s1 = wf.add_node(RecordSet("1", "S1", schema, RecordSetKind.SOURCE, 10))
        s2 = wf.add_node(RecordSet("2", "S2", schema, RecordSetKind.SOURCE, 10))
        transform = wf.add_node(
            Activity(
                "3",
                t.FUNCTION_APPLY,
                {
                    "function": "date_us_to_eu",
                    "inputs": ("DATE",),
                    "output": "DATE",
                    "injective": True,
                },
            )
        )
        wf.add_edge(s1, transform)
        union = Activity("5", t.UNION, {})
        follower = Activity("6", t.NOT_NULL, {"attr": "K"}, selectivity=0.9)
        # The real MERGE transition only packages unary chains; build the
        # (hypothetical, but representable) binary-headed package directly.
        packaged = object.__new__(CompositeActivity)
        packaged.components = (union, follower)
        packaged.id = "5+6"
        packaged.template = union.template
        packaged.params = {}
        packaged.selectivity = union.selectivity * follower.selectivity
        packaged.name = "5+6"
        packaged._plan = follower._plan
        packaged._derive_cache = {}
        wf.add_node(packaged)
        wf.add_edge(transform, packaged, port=0)
        wf.add_edge(s2, packaged, port=1)
        gamma = wf.add_node(
            Activity(
                "7",
                t.AGGREGATION,
                {
                    "group_by": ("K", "DATE"),
                    "measure": "V",
                    "agg": "sum",
                    "output": "VM",
                },
                selectivity=0.4,
            )
        )
        wf.add_edge(packaged, gamma)
        dw = wf.add_node(
            RecordSet(
                "9", "DW", Schema(["K", "DATE", "VM"]), RecordSetKind.TARGET
            )
        )
        wf.add_edge(gamma, dw)

        findings = lint_workflow(wf)
        assert [f.rule for f in findings] == ["mixed-format-branches"]
        # The finding names the inner binary, not the composite container.
        assert "5" in findings[0].message


class TestRealScenarios:
    def test_fig1_is_clean(self, fig1):
        assert lint_workflow(fig1.workflow) == []

    def test_two_branch_is_clean(self, two_branch):
        assert lint_workflow(two_branch.workflow) == []

    def test_finding_str_rendering(self):
        src = RecordSet("1", "S", Schema(["A"]), RecordSetKind.SOURCE, 10)
        scrub = _in_place("2", "A")
        sigma = Activity(
            "3", t.SELECTION, {"attr": "A", "op": ">=", "value": 5}, selectivity=0.5
        )
        dw = RecordSet("4", "DW", Schema(["A"]), RecordSetKind.TARGET)
        findings = lint_workflow(_chain(src, scrub, sigma, dw))
        assert "format-sensitive-comparison(A)" in str(findings[0])
