"""White-box tests for the semi-incremental estimator's early cutoff."""

import pytest

import repro.core.cost.estimator as estimator_module
from repro.core.cost import ProcessedRowsCostModel, estimate, estimate_incremental
from repro.core.transitions import Swap


@pytest.fixture
def counting_node_outputs(monkeypatch):
    """Count how many nodes the estimator actually re-derives."""
    calls = []
    original = estimator_module._node_outputs

    def counted(workflow, model, node, cards):
        calls.append(node)
        return original(workflow, model, node, cards)

    monkeypatch.setattr(estimator_module, "_node_outputs", counted)
    return calls


class TestEarlyCutoff:
    def test_swap_recomputes_only_local_neighbourhood(
        self, fig1, model, counting_node_outputs
    ):
        """Swapping A2E and γ changes neither activity's output
        cardinality product, so the re-costing stops right after the
        swapped pair's consumer."""
        wf = fig1.workflow
        parent = estimate(wf, model)
        counting_node_outputs.clear()

        swap = Swap(wf.node_by_id("5"), wf.node_by_id("6"))
        successor = swap.apply(wf)
        estimate_incremental(successor, model, parent, swap.affected_nodes())
        recomputed_ids = {node.id for node in counting_node_outputs}
        # The two swapped activities are re-derived; γ's output cardinality
        # is unchanged at the junction, so the union/selection/target are
        # not revisited.
        assert "5" in recomputed_ids and "6" in recomputed_ids
        assert "8" not in recomputed_ids
        assert "9" not in recomputed_ids

    def test_full_estimate_touches_every_node(
        self, fig1, model, counting_node_outputs
    ):
        counting_node_outputs.clear()
        estimate(fig1.workflow, model)
        assert len(counting_node_outputs) == len(fig1.workflow)

    def test_cardinality_change_propagates(self, fig1, model, counting_node_outputs):
        """Distributing σ changes the union's input cardinalities, so the
        downstream chain is re-derived."""
        from repro.core.transitions import Distribute

        wf = fig1.workflow
        parent = estimate(wf, model)
        transition = Distribute(wf.node_by_id("7"), wf.node_by_id("8"))
        successor = transition.apply(wf)
        counting_node_outputs.clear()
        incremental = estimate_incremental(
            successor, model, parent, transition.affected_nodes()
        )
        recomputed_ids = {node.id for node in counting_node_outputs}
        assert {"8_1", "8_2", "7", "9"} <= recomputed_ids
        assert incremental.total == pytest.approx(
            estimate(successor, model).total
        )
