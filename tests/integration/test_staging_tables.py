"""Intermediate recordsets (staging tables) as optimization boundaries.

The paper's graph model "uniformly models situations where activities
interact with recordsets, either as data providers or data consumers".
A staging table in the middle of a flow is a hard boundary: local groups
end there, and no transition moves an activity across it — the persisted
contents are part of the design's contract.
"""

import pytest

from repro import optimize
from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.transitions import Swap, candidate_transitions
from repro.core.workflow import ETLWorkflow
from repro.engine import Executor, empirically_equivalent
from repro.templates import builtin as t


@pytest.fixture
def staged():
    """source -> f(V1->W1) -> STAGE -> σ(W1) -> NN(V2) -> target."""
    wf = ETLWorkflow()
    schema = Schema(["K", "V1", "V2"])
    staged_schema = Schema(["K", "W1", "V2"])
    src = wf.add_node(RecordSet("1", "S", schema, RecordSetKind.SOURCE, 100))
    convert = wf.add_node(
        Activity(
            "2",
            t.FUNCTION_APPLY,
            {"function": "scale_double", "inputs": ("V1",), "output": "W1"},
        )
    )
    stage = wf.add_node(RecordSet("3", "STAGE", staged_schema))
    sigma = wf.add_node(
        Activity(
            "4", t.SELECTION, {"attr": "W1", "op": ">=", "value": 10.0},
            selectivity=0.5,
        )
    )
    nn = wf.add_node(Activity("5", t.NOT_NULL, {"attr": "V2"}, selectivity=0.9))
    dw = wf.add_node(RecordSet("9", "DW", staged_schema, RecordSetKind.TARGET))
    wf.add_edge(src, convert)
    wf.add_edge(convert, stage)
    wf.add_edge(stage, sigma)
    wf.add_edge(sigma, nn)
    wf.add_edge(nn, dw)
    wf.validate()
    wf.propagate_schemas()
    return wf


class TestBoundaries:
    def test_local_groups_split_at_staging_table(self, staged):
        groups = [[a.id for a in g] for g in staged.local_groups()]
        assert groups == [["2"], ["4", "5"]]

    def test_no_transition_crosses_the_stage(self, staged):
        descriptions = [
            transition.describe()
            for transition in candidate_transitions(staged)
        ]
        assert descriptions == ["SWA(4,5)"]

    def test_swap_within_downstream_group_allowed(self, staged):
        sigma = staged.node_by_id("4")
        nn = staged.node_by_id("5")
        assert Swap(sigma, nn).is_applicable(staged)

    def test_optimizer_respects_stage(self, staged):
        result = optimize(staged, algorithm="es")
        assert result.completed
        # σ(W1) stays downstream of the stage in every reachable state;
        # within the group, σ (0.5) moves before NN (0.9)... they start in
        # that order already, so the initial state is optimal.
        assert result.best.signature == "1.2.3.4.5.9"

    def test_stage_contents_preserved_by_optimization(self, staged):
        result = optimize(staged, algorithm="es")
        data = {
            "S": [
                {"K": i, "V1": float(i), "V2": None if i % 5 == 0 else i}
                for i in range(40)
            ]
        }
        report = empirically_equivalent(
            staged, result.best.workflow, data, Executor()
        )
        assert report.equivalent


class TestExecution:
    def test_stage_passes_rows_through(self, staged):
        data = {
            "S": [{"K": 1, "V1": 10.0, "V2": 1}, {"K": 2, "V1": 1.0, "V2": 2}]
        }
        result = Executor().run(staged, data)
        assert result.targets["DW"] == [{"K": 1, "W1": 20.0, "V2": 1}]

    def test_stage_schema_mismatch_rejected(self):
        wf = ETLWorkflow()
        schema = Schema(["K", "V1"])
        src = wf.add_node(RecordSet("1", "S", schema, RecordSetKind.SOURCE, 10))
        stage = wf.add_node(RecordSet("2", "STAGE", Schema(["K", "OTHER"])))
        dw = wf.add_node(RecordSet("9", "DW", schema, RecordSetKind.TARGET))
        wf.add_edge(src, stage)
        wf.add_edge(stage, dw)
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError, match="declared"):
            wf.propagate_schemas()
