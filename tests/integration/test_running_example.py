"""End-to-end reproduction of the paper's running example (Figs. 1 and 2).

The introduction makes four concrete claims about this workflow; each test
pins one of them:

1. the selection can be propagated to both branches (Fig. 2);
2. it cannot be pushed below the $2E conversion (condition 3);
3. it cannot be pushed below the aggregation;
4. the aggregation *can* be swapped with the A2E date conversion.
"""

import pytest

from repro import optimize
from repro.core.transitions import Distribute, Swap
from repro.engine import Executor, empirically_equivalent


class TestIntroductionClaims:
    def test_selection_distributes_into_both_branches(self, fig1):
        wf = fig1.workflow
        distributed = Distribute(wf.node_by_id("7"), wf.node_by_id("8")).apply(wf)
        ids = {a.id for a in distributed.activities()}
        assert {"8_1", "8_2"} <= ids

    def test_selection_blocked_below_aggregation(self, fig1):
        wf = fig1.workflow
        distributed = Distribute(wf.node_by_id("7"), wf.node_by_id("8")).apply(wf)
        gamma = distributed.node_by_id("6")
        clone = distributed.node_by_id("8_2")
        assert not Swap(gamma, clone).is_applicable(distributed)

    def test_selection_blocked_below_conversion(self, fig1):
        """Even if γ were out of the way, σ(ECOST_M) could never precede
        $2E: exercise via a chain of checks on the branch."""
        wf = fig1.workflow
        distributed = Distribute(wf.node_by_id("7"), wf.node_by_id("8")).apply(wf)
        from repro.core.transitions import shift_backward

        clone = distributed.node_by_id("8_2")
        dollars = distributed.node_by_id("4")
        assert shift_backward(distributed, clone, dollars) is None

    def test_aggregation_swaps_with_date_conversion(self, fig1):
        wf = fig1.workflow
        swap = Swap(wf.node_by_id("5"), wf.node_by_id("6"))
        swapped = swap.apply(wf)
        assert swapped.consumers(wf.node_by_id("6")) == [wf.node_by_id("5")]


class TestFig2Reachability:
    def test_optimizer_finds_fig2_design(self, fig1):
        """All three algorithms converge on the Fig. 2 shape: selection
        distributed into both branches (pushed to the front of branch 1)
        and the aggregation before the date conversion in branch 2."""
        expected = "((1.8_1.3)//(2.4.6.8_2.5)).7.9"
        for algorithm in ("es", "hs", "greedy"):
            result = optimize(fig1.workflow, algorithm=algorithm)
            assert result.best.signature == expected, algorithm

    def test_fig2_design_cheaper_than_fig1(self, fig1):
        result = optimize(fig1.workflow)
        assert result.best_cost < result.initial_cost

    def test_fig2_design_equivalent_on_data(self, fig1):
        result = optimize(fig1.workflow)
        for seed in (0, 1, 2):
            report = empirically_equivalent(
                fig1.workflow,
                result.best.workflow,
                fig1.make_data(seed=seed),
                Executor(context=fig1.context),
            )
            assert report.equivalent

    def test_dw_rows_survive_threshold(self, fig1):
        result = optimize(fig1.workflow)
        executor = Executor(context=fig1.context)
        data = fig1.make_data(seed=4)
        out = executor.run(result.best.workflow, data)
        assert all(row["ECOST_M"] >= 100.0 for row in out.targets["DW"])

    def test_optimized_workflow_processes_fewer_rows(self, fig1):
        """The cost model's promise holds empirically: the optimized state
        pushes selections early and touches fewer rows overall."""
        executor = Executor(context=fig1.context)
        data = fig1.make_data(seed=4)
        before = executor.run(fig1.workflow, data).stats.total_rows_processed
        result = optimize(fig1.workflow)
        after = executor.run(result.best.workflow, data).stats.total_rows_processed
        assert after < before
