"""Smoke tests: the fast examples run end to end.

Examples are documentation that executes; this suite imports each fast
script from ``examples/`` and runs its ``main()`` so a refactor can never
silently break them.  The two long-running comparisons
(``algorithm_comparison``, ``retail_dwh_load``) are exercised at reduced
scale by their own logic elsewhere and excluded here for runtime.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "custom_templates",
    "incremental_delta_load",
]


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys):
    module = _load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), name


def test_quickstart_confirms_equivalence(capsys):
    module = _load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "same DW contents on sample data: True" in out


def test_delta_example_reports_shrunk_sort(capsys):
    module = _load_example("incremental_delta_load")
    module.main()
    out = capsys.readouterr().out
    assert "equivalent on data: True" in out
    assert "fewer" in out
