"""Grand tour: the full product surface on one workload, end to end.

generate → lint → optimize → physically plan → serialize → reload →
execute with checkpoints → calibrate → re-optimize — asserting semantic
equivalence at every hop.  If any two subsystems disagree about what a
workflow *is*, this test is where it shows.
"""

from repro import optimize
from repro.core.lint import lint_workflow
from repro.core.signature import state_signature
from repro.engine import (
    CheckpointingExecutor,
    CheckpointStore,
    as_multiset,
    calibrate_workflow,
    empirically_equivalent,
)
from repro.io import dumps, loads
from repro.physical import plan_physical
from repro.workloads import generate_workload


def test_grand_tour():
    workload = generate_workload("small", seed=11)
    data = workload.make_data(1, n=120)
    executor = CheckpointingExecutor(context=workload.context)

    # 1. The generated design honours the naming discipline.
    errors = [
        f for f in lint_workflow(workload.workflow) if f.level.value == "error"
    ]
    assert errors == []

    # 2. Logical optimization improves the design and keeps semantics.
    result = optimize(workload.workflow, algorithm="hs")
    assert result.best_cost < result.initial_cost
    assert empirically_equivalent(
        workload.workflow, result.best.workflow, data, executor
    )

    # 3. Physical planning prices the optimum; generous memory helps.
    generous = plan_physical(result.best.workflow, memory_rows=1e9)
    tight = plan_physical(result.best.workflow, memory_rows=1)
    assert generous.total_cost <= tight.total_cost

    # 4. The optimized design survives a JSON round-trip bit-for-bit.
    reloaded = loads(dumps(result.best.workflow))
    assert state_signature(reloaded) == result.best.signature

    # 5. Checkpointed execution of the reloaded design matches a plain run,
    #    including across a mid-run failure.
    reference = executor.run(reloaded, data)
    store = CheckpointStore()
    fail_at = reloaded.topological_order()[len(reloaded) // 2].id
    from repro.engine import SimulatedFailure

    try:
        executor.run(reloaded, data, checkpoints=store, fail_before=fail_at)
    except SimulatedFailure:
        pass
    resumed = executor.run(reloaded, data, checkpoints=store)
    for name, rows in reference.targets.items():
        assert as_multiset(resumed.targets[name]) == as_multiset(rows)

    # 6. Calibration with measured selectivities keeps semantics, and the
    #    re-optimized calibrated design is equivalent to the original.
    calibrated = calibrate_workflow(reloaded, data, executor)
    recalibrated = optimize(calibrated, algorithm="greedy")
    assert empirically_equivalent(
        workload.workflow, recalibrated.best.workflow, data, executor
    )
