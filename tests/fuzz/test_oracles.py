"""Unit tests for the three conformance checks."""

import pytest

from repro.core.cost import ProcessedRowsCostModel
from repro.engine import Executor
from repro.fuzz import ConformanceOracle, OracleConfig
from repro.fuzz.oracles import predicted_processed_rows
from repro.workloads import generate_workload


@pytest.fixture
def workload():
    return generate_workload("tiny", seed=3, rows_per_source=50)


@pytest.fixture
def oracle(workload):
    return ConformanceOracle(
        workload.workflow,
        workload.make_data(0),
        executor=Executor(context=workload.context),
    )


def _drop_one_selection(workflow):
    """A structurally valid but inequivalent variant: one filter removed."""
    victim = next(
        a
        for a in workflow.activities()
        if a.template.name == "selection" and a.selectivity < 1.0
    )
    mutated = workflow.copy()
    provider = mutated.providers(victim)[0]
    consumer = mutated.consumers(victim)[0]
    port = mutated.edge_port(victim, consumer)
    mutated.remove_node(victim)
    mutated.add_edge(provider, consumer, port=port)
    mutated.validate()
    mutated.propagate_schemas()
    return mutated


class TestCleanState:
    def test_baseline_passes_all_checks(self, workload, oracle):
        assert oracle.check(workload.workflow) == []

    def test_predictions_match_engine_counts(self, workload):
        data = workload.make_data(0)
        executor = Executor(context=workload.context)
        stats = executor.run(workload.workflow, data).stats
        from repro.engine.calibrate import calibrate_workflow

        calibrated = calibrate_workflow(workload.workflow, data, executor)
        predicted = predicted_processed_rows(
            calibrated,
            ProcessedRowsCostModel(),
            {name: len(rows) for name, rows in data.items()},
        )
        assert set(predicted) == set(stats.rows_processed)
        for activity_id, expected in predicted.items():
            assert expected == pytest.approx(
                stats.rows_processed[activity_id], abs=1e-6
            )


class TestViolationDetection:
    def test_dropped_filter_fails_symbolic_check(self, workload, oracle):
        mutated = _drop_one_selection(workload.workflow)
        kinds = {v.kind for v in oracle.check(mutated)}
        assert "symbolic" in kinds

    def test_dropped_filter_fails_empirical_check(self, workload, oracle):
        mutated = _drop_one_selection(workload.workflow)
        kinds = {v.kind for v in oracle.check(mutated)}
        assert "empirical" in kinds

    def test_checks_can_be_disabled(self, workload):
        mutated = _drop_one_selection(workload.workflow)
        oracle = ConformanceOracle(
            workload.workflow,
            workload.make_data(0),
            executor=Executor(context=workload.context),
            config=OracleConfig(
                check_symbolic=False, check_empirical=False, check_cost=False
            ),
        )
        assert oracle.check(mutated) == []

    def test_broken_cost_model_fails_conformance(self, workload):
        class LyingModel(ProcessedRowsCostModel):
            """Ignores selectivities: every unary output equals its input."""

            def output_cardinality(self, activity, input_cards):
                if activity.is_unary:
                    return input_cards[0]
                return super().output_cardinality(activity, input_cards)

        oracle = ConformanceOracle(
            workload.workflow,
            workload.make_data(0),
            executor=Executor(context=workload.context),
            model=LyingModel(),
            config=OracleConfig(check_symbolic=False, check_empirical=False),
        )
        kinds = {v.kind for v in oracle.check(workload.workflow)}
        assert kinds == {"cost"}

    def test_missing_source_data_reports_crash_not_exception(self, workload):
        oracle = ConformanceOracle(
            workload.workflow,
            workload.make_data(0),
            executor=Executor(context=workload.context),
        )
        other = generate_workload("tiny", seed=4, rows_per_source=50)
        violations = oracle.check(other.workflow)
        assert violations  # different workload is not equivalent
        assert all(v.kind in {"symbolic", "empirical", "crash"} for v in violations)
