"""Seeded-injection tests: a deliberately broken transition must be caught.

The fuzzer's value rests on the oracles actually firing, so these tests
monkeypatch ``Swap`` into an unsound transition — the guard-checked
rewiring silently *drops* the moved selection, a realistic "graph surgery
lost an edge" bug — and require that

* the fuzzer detects the violation (symbolic and empirical),
* the shrinker minimizes the failing chain to at most 3 steps and the
  source data to (near) nothing, and
* the emitted JSON repro artifact is deterministic.
"""

import json

import pytest

from repro.core.activity import CompositeActivity
from repro.core.transitions.swap import Swap
from repro.fuzz import (
    FuzzConfig,
    dump_artifact,
    fuzz_seed,
    run_fuzz,
    shrink_failure,
)
from repro.fuzz.shrink import repro_artifact

# Packaging moves are excluded so every step of the failing chain is a
# Swap; the minimal repro is then a single broken swap.
CONFIG = FuzzConfig(
    chain_length=6, rows_per_source=40, include_packaging=False
)

_REAL_REWIRE = Swap.rewire


def _broken_rewire(self, workflow):
    """Swap, then 'accidentally' drop the moved activity when it filters."""
    _REAL_REWIRE(self, workflow)
    victim = self.first
    if isinstance(victim, CompositeActivity):
        return
    if victim.template.name != "selection" or victim.selectivity >= 1.0:
        return
    provider = workflow.providers(victim)[0]
    consumer = workflow.consumers(victim)[0]
    port = workflow.edge_port(victim, consumer)
    workflow.remove_node(victim)
    workflow.add_edge(provider, consumer, port=port)


@pytest.fixture
def broken_swap(monkeypatch):
    monkeypatch.setattr(Swap, "rewire", _broken_rewire)


def _first_failure(max_seeds=30, kind=None):
    for seed in range(max_seeds):
        result = fuzz_seed(CONFIG, seed)
        if result.failure is None:
            continue
        if kind is None or kind in {v.kind for v in result.failure.violations}:
            return result.failure
    raise AssertionError("injected unsound swap never triggered")


class TestDetection:
    def test_fuzzer_catches_unsound_swap(self, broken_swap):
        failure = _first_failure()
        kinds = {v.kind for v in failure.violations}
        assert kinds & {"symbolic", "empirical"}
        assert failure.steps[-1].mnemonic == "SWA"

    def test_both_oracles_fire_across_seeds(self, broken_swap):
        # A dropped filter that still has an identical twin (a FAC/DIS
        # clone) leaves the post-condition *set* unchanged — only the
        # empirical oracle sees it; a dropped unique filter trips both.
        assert _first_failure(kind="empirical") is not None
        assert _first_failure(kind="symbolic") is not None

    def test_violations_carry_chain_position(self, broken_swap):
        failure = _first_failure()
        for violation in failure.violations:
            assert violation.step == len(failure.steps)
            assert violation.transition == failure.steps[-1].transition

    def test_run_fuzz_reports_and_attributes_failure(self, broken_swap):
        report = run_fuzz(CONFIG, seeds=10)
        assert not report.ok
        assert report.violations_by_transition["SWA"] >= 1
        assert "violating seed(s)" in report.summary()


class TestShrinking:
    def test_shrinks_to_minimal_chain(self, broken_swap):
        failure = _first_failure()
        shrunk = shrink_failure(failure)
        assert 1 <= len(shrunk.chain) <= 3
        assert shrunk.violations  # still reproduces after minimization
        assert shrunk.rows_per_source <= failure.rows_per_source

    def test_symbolic_failure_shrinks_data_to_zero(self, broken_swap):
        failure = _first_failure(kind="symbolic")
        shrunk = shrink_failure(failure)
        # The dropped-filter bug is visible in the post-condition alone,
        # so the binary search drives the data slice all the way down.
        assert shrunk.rows_per_source == 0

    def test_artifact_is_deterministic_json(self, broken_swap):
        failure = _first_failure()
        first = dump_artifact(shrink_failure(failure))
        second = dump_artifact(shrink_failure(failure))
        assert first == second
        document = json.loads(first)
        assert document["kind"] == "repro-fuzz-failure"
        assert document["chain"]
        assert document["violations"]
        assert document["initial_workflow"]["nodes"]
        assert document["failing_workflow"]["nodes"]

    def test_artifact_records_workload_coordinates(self, broken_swap):
        failure = _first_failure()
        document = repro_artifact(shrink_failure(failure))
        workload = document["workload"]
        assert workload["category"] == failure.category
        assert workload["seed"] == failure.seed
        assert workload["rows_per_source"] == CONFIG.rows_per_source
        assert workload["shrunk_rows_per_source"] <= CONFIG.rows_per_source


class TestCorpusPersistence:
    def test_failing_seed_persists_and_replays_first(self, broken_swap, tmp_path):
        corpus = str(tmp_path / "corpus")
        report = run_fuzz(CONFIG, seeds=10, corpus_dir=corpus)
        assert not report.ok
        from repro.fuzz import load_known_failures

        known = load_known_failures(corpus)
        assert known
        first_failure = report.failures[0]
        assert (first_failure["category"], first_failure["seed"]) in known
        assert (tmp_path / "corpus" / "summary.json").exists()
        artifact = first_failure["artifact"]
        assert json.loads(open(artifact, encoding="utf-8").read())["chain"]

        # A later (healed) run replays the recorded seeds first and stays
        # green, proving regression seeds survive across runs.
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(Swap, "rewire", _REAL_REWIRE)
            healed = run_fuzz(CONFIG, seeds=0, corpus_dir=corpus)
        assert healed.seeds_run == len(known)
        assert healed.ok
