"""Durability of corpus files: atomic writes survive mid-write crashes."""

import json
import os

import pytest

from repro.fuzz.corpus import _record_failure, load_known_failures
from repro.io.atomic import atomic_write_json, atomic_write_text


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"b": 2, "a": 1})
        assert json.load(open(path)) == {"a": 1, "b": 2}

    def test_replaces_existing(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert open(path).read() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "content")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_crash_during_serialization_keeps_old_content(self, tmp_path):
        """A failure before the replace leaves the previous file intact —
        the regression the old open(..., 'w') pattern could not give."""
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"generation": 1})

        class Unserializable:
            pass

        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": Unserializable()})
        assert json.load(open(path)) == {"generation": 1}
        assert os.listdir(tmp_path) == ["out.json"]  # temp cleaned up


class TestCorpusFailureFile:
    def test_record_and_load_roundtrip(self, tmp_path):
        corpus = str(tmp_path)
        _record_failure(corpus, "tiny", 7)
        _record_failure(corpus, "small", 3)
        _record_failure(corpus, "tiny", 7)  # deduplicated
        assert load_known_failures(corpus) == [("tiny", 7), ("small", 3)]

    def test_failures_file_is_valid_json_after_every_write(self, tmp_path):
        corpus = str(tmp_path)
        for seed in range(5):
            _record_failure(corpus, "tiny", seed)
            with open(os.path.join(corpus, "failures.json")) as handle:
                entries = json.load(handle)  # must never be torn
            assert len(entries) == seed + 1

    def test_no_temp_residue_in_corpus_dir(self, tmp_path):
        corpus = str(tmp_path)
        _record_failure(corpus, "tiny", 1)
        assert os.listdir(corpus) == ["failures.json"]
