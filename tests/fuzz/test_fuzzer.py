"""The chain fuzzer on the shipped (sound) transition set."""

import dataclasses

import pytest

from repro.core.signature import state_signature
from repro.fuzz import FuzzConfig, fuzz_seed, replay_chain, run_fuzz
from repro.workloads import generate_workload

CONFIG = FuzzConfig(chain_length=5, rows_per_source=40)


class TestFuzzSeed:
    def test_clean_on_shipped_transitions(self):
        for seed in range(5):
            result = fuzz_seed(CONFIG, seed)
            assert result.ok, result.failure

    def test_applies_and_counts_transitions(self):
        result = fuzz_seed(CONFIG, seed=0)
        assert result.states_checked == len(result.steps_applied) > 0
        assert sum(result.transition_counts.values()) == len(
            result.steps_applied
        )

    def test_deterministic_in_seed(self):
        first = fuzz_seed(CONFIG, seed=2)
        second = fuzz_seed(CONFIG, seed=2)
        assert first.steps_applied == second.steps_applied

    def test_packaging_can_be_excluded(self):
        config = dataclasses.replace(CONFIG, include_packaging=False)
        for seed in range(5):
            result = fuzz_seed(config, seed)
            assert set(result.transition_counts) <= {"SWA", "FAC", "DIS"}

    def test_chain_replays_to_same_state(self):
        result = fuzz_seed(CONFIG, seed=1)
        assert result.steps_applied
        chain = [step.transition for step in result.steps_applied]

        def replay():
            workload = generate_workload(
                result.category, seed=1, rows_per_source=CONFIG.rows_per_source
            )
            return replay_chain(workload.workflow, chain)

        first, second = replay(), replay()
        assert first is not None
        first.validate()
        assert state_signature(first) == state_signature(second)


class TestRunFuzz:
    def test_report_aggregates_and_is_clean(self):
        report = run_fuzz(CONFIG, seeds=4)
        assert report.ok
        assert report.seeds_run == 4
        assert report.states_checked > 0
        assert sum(report.transitions_applied.values()) == report.states_checked
        assert "no equivalence" in report.summary()

    def test_report_is_deterministic(self):
        first = run_fuzz(CONFIG, seeds=3)
        second = run_fuzz(CONFIG, seeds=3)
        assert first.to_dict() == second.to_dict()

    def test_rejects_unknown_category(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="unknown workload categories"):
            FuzzConfig(categories=("nope",))

    def test_rejects_empty_chain(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="chain_length"):
            FuzzConfig(chain_length=0)


@pytest.mark.slow
def test_fifty_seed_conformance_run():
    """The acceptance-criteria run: 50 seeds, zero violations."""
    report = run_fuzz(FuzzConfig(), seeds=50)
    assert report.ok, report.summary()
    assert report.seeds_run == 50


class TestStreamingFuzz:
    """Differential fuzzing with the oracle executor streaming: the full
    transition chain must stay equivalence- and cost-conformant when every
    execution goes through the batch pipeline."""

    def test_streaming_budget_keeps_seeds_clean(self):
        from repro.engine import ExecutionBudget

        config = dataclasses.replace(
            CONFIG, execution_budget=ExecutionBudget(batch_size=13)
        )
        for seed in range(8):
            result = fuzz_seed(config, seed)
            assert result.ok, result.failure

    def test_streaming_matches_plain_fuzz_outcome(self):
        from repro.engine import ExecutionBudget

        streaming_config = dataclasses.replace(
            CONFIG, execution_budget=ExecutionBudget(batch_size=7)
        )
        for seed in range(4):
            plain = fuzz_seed(CONFIG, seed)
            streamed = fuzz_seed(streaming_config, seed)
            assert [s.transition for s in plain.steps_applied] == [
                s.transition for s in streamed.steps_applied
            ]
            assert plain.ok == streamed.ok
