#!/usr/bin/env python
"""Streaming vs materializing execution: memory and throughput.

Records the streaming engine's acceptance numbers in
``BENCH_streaming.json``:

* peak resident rows and wall-clock for the materializing engine vs the
  streaming engine at several batch sizes on a generated large workload,
  with a hard check that the streaming runs return identical target flows
  and ``ExecutionStats``;
* a budgeted streaming run (``--max-resident-rows`` + spill directory)
  proving the recorded peak stays within the configured budget.

Timed configurations run once untimed (fused-kernel warm-up) and then
``--repeats`` times timed, recording the best run — steady-state
throughput, robust to scheduler noise on shared runners.

The materializing "peak resident rows" is the sum of all intermediate
flows' lengths — what the executor's ``flows`` dict holds live at the end
of a run — an honest floor on what that path keeps in memory.

Usage::

    python benchmarks/bench_streaming.py                    # large seed 0
    python benchmarks/bench_streaming.py --category small   # CI smoke size
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import ExecutionBudget, Executor  # noqa: E402
from repro.engine.tracing import TracingExecutor  # noqa: E402
from repro.obs import Recorder, summarize, use_recorder  # noqa: E402
from repro.workloads import generate_workload  # noqa: E402


def _materializing_resident_rows(executor, workflow, data) -> int:
    """Total rows the materializing executor holds across all flows."""
    from repro.core.recordset import RecordSet

    result = executor.run(workflow, data)
    # Every activity output is kept live in the flows dict until the run
    # ends; recompute that footprint from the stats (output rows per
    # activity) plus the source flows.
    total = sum(result.stats.rows_output.values())
    for node in workflow.topological_order():
        if isinstance(node, RecordSet) and node.is_source:
            total += len(data.get(node.name, ()))
    return total


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--category", default="large",
                        help="workload category (default: large)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rows", type=int, default=2000,
                        help="rows per source recordset (default: 2000)")
    parser.add_argument("--batch-sizes", default="256,1024,4096",
                        help="comma-separated streaming batch sizes")
    parser.add_argument("--max-resident-rows", type=int, default=None,
                        help="budget for the budgeted run (default: half "
                             "the materializing footprint)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per configuration; the "
                             "best (minimum) wall-clock is recorded "
                             "(default: 5)")
    parser.add_argument("--output", default="BENCH_streaming.json")
    args = parser.parse_args(argv)
    batch_sizes = [
        int(part) for part in args.batch_sizes.split(",") if part.strip()
    ]

    workload = generate_workload(
        args.category, seed=args.seed, rows_per_source=args.rows
    )
    data = workload.make_data(args.seed)
    total_source_rows = sum(len(rows) for rows in data.values())
    executor = Executor(context=workload.context)

    def best_seconds(run) -> float:
        # Best-of-N: a single sub-millisecond timing on a shared runner
        # is dominated by scheduler noise; the minimum over a few
        # repeats estimates the true cost floor and keeps the 10%
        # regression gate on rows_per_second from tripping on jitter.
        best = None
        for _ in range(max(1, args.repeats)):
            started = time.perf_counter()
            run()
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        return best

    base = executor.run(workload.workflow, data)
    materializing_seconds = best_seconds(
        lambda: executor.run(workload.workflow, data)
    )
    materializing_rows = _materializing_resident_rows(
        executor, workload.workflow, data
    )

    payload: dict = {
        "benchmark": "streaming",
        "category": args.category,
        "seed": args.seed,
        "rows_per_source": args.rows,
        "total_source_rows": total_source_rows,
        "activities": workload.activity_count,
        "materializing": {
            "seconds": round(materializing_seconds, 4),
            "resident_rows": materializing_rows,
            "rows_per_second": round(
                total_source_rows / materializing_seconds, 1
            ) if materializing_seconds > 0 else None,
        },
        "streaming": [],
    }

    divergence = False
    for batch_size in batch_sizes:
        budget = ExecutionBudget(batch_size=batch_size)
        # Warm-up: the columnar engine compiles its fused kernels lazily
        # on first contact with each chain/layout.  One untimed run pays
        # that one-time JIT cost so the recorded number is steady-state
        # throughput — what a long ETL load actually sees.
        streamed = executor.run(workload.workflow, data, budget=budget)
        seconds = best_seconds(
            lambda: executor.run(workload.workflow, data, budget=budget)
        )
        identical = (
            streamed.targets == base.targets
            and streamed.stats.rows_processed == base.stats.rows_processed
            and streamed.stats.rows_output == base.stats.rows_output
        )
        divergence = divergence or not identical
        payload["streaming"].append({
            "batch_size": batch_size,
            "seconds": round(seconds, 4),
            "peak_resident_rows": streamed.streaming.peak_resident_rows,
            "spilled_rows": streamed.streaming.spilled_rows,
            "rows_per_second": round(total_source_rows / seconds, 1)
            if seconds > 0 else None,
            "identical_to_materializing": identical,
        })

    # Budgeted run: cap resident rows well below the materializing
    # footprint and let over-budget buffers spill.
    max_resident = (
        args.max_resident_rows
        if args.max_resident_rows is not None
        else max(1024, materializing_rows // 2)
    )
    # The budgeted run doubles as the telemetry run: a tracing executor
    # records per-operator spans and resident-row gauges, and the summary
    # is embedded in the payload.
    recorder = Recorder()
    traced = TracingExecutor(context=workload.context)
    with tempfile.TemporaryDirectory(prefix="bench-spill-") as spill_dir:
        budget = ExecutionBudget(
            batch_size=min(batch_sizes),
            max_resident_rows=max_resident,
            spill_dir=spill_dir,
        )
        started = time.perf_counter()
        with use_recorder(recorder):
            bounded = traced.run(workload.workflow, data, budget=budget)
        seconds = time.perf_counter() - started
    identical = (
        bounded.targets == base.targets
        and bounded.stats.rows_processed == base.stats.rows_processed
    )
    divergence = divergence or not identical
    payload["budgeted"] = {
        "batch_size": budget.batch_size,
        "max_resident_rows": max_resident,
        "peak_resident_rows": bounded.streaming.peak_resident_rows,
        "within_budget": bounded.streaming.within_budget,
        "spilled_rows": bounded.streaming.spilled_rows,
        "seconds": round(seconds, 4),
        "identical_to_materializing": identical,
    }
    payload["telemetry"] = summarize(recorder.events())

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(f"materializing: {materializing_rows} resident rows, "
          f"{materializing_seconds:.3f}s")
    for entry in payload["streaming"]:
        print(f"streaming bs={entry['batch_size']}: "
              f"peak {entry['peak_resident_rows']} rows, "
              f"{entry['seconds']:.3f}s")
    budgeted = payload["budgeted"]
    print(f"budgeted (≤{budgeted['max_resident_rows']}): "
          f"peak {budgeted['peak_resident_rows']} rows, "
          f"spilled {budgeted['spilled_rows']}, "
          f"within budget: {budgeted['within_budget']}")
    if divergence:
        print("ERROR: streaming diverged from materializing", file=sys.stderr)
        return 1
    if not budgeted["within_budget"]:
        print("ERROR: budgeted run exceeded max_resident_rows",
              file=sys.stderr)
        return 1
    print(f"written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
