"""Ablation — randomized search vs the paper's algorithms.

Simulated annealing over the same transition space is the obvious
alternative to the paper's purpose-built heuristic.  This bench places it
on the quality/effort curve next to HS and HS-Greedy: SA with a few
thousand steps should approach HS quality at Greedy-to-HS cost, without
exploiting any ETL-specific structure (local groups, homologous sets).
"""

from __future__ import annotations

import pytest

from repro.core.search import annealing_search, greedy_search, heuristic_search
from repro.workloads import generate_workload

_SEEDS = (1, 2, 3)


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for seed in _SEEDS:
        workload = generate_workload("small", seed=seed)
        rows.append(
            (
                workload,
                heuristic_search(workload.workflow),
                greedy_search(workload.workflow),
                annealing_search(workload.workflow, seed=seed, steps=2000),
            )
        )
    return rows


def test_annealing_on_the_quality_curve(benchmark, comparison, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for workload, hs, greedy, sa in comparison:
        lines.append(
            f"small/{workload.seed}: HS {hs.best_cost:.0f} "
            f"({hs.visited_states}st) | Greedy {greedy.best_cost:.0f} "
            f"({greedy.visited_states}st) | SA {sa.best_cost:.0f} "
            f"({sa.visited_states}st)"
        )
        # SA must beat doing nothing and stay within 30% of HS.
        assert sa.best_cost < sa.initial_cost
        assert sa.best_cost <= hs.best_cost * 1.30
    with capsys.disabled():
        print("\nAblation: simulated annealing vs HS / HS-Greedy")
        print("\n".join(lines))


def test_bench_annealing_run(benchmark):
    workload = generate_workload("small", seed=1)
    result = benchmark.pedantic(
        lambda: annealing_search(workload.workflow, seed=1, steps=2000),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["improvement_percent"] = round(
        result.improvement_percent, 1
    )
