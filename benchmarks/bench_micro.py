"""Micro-benchmarks for the optimizer's hot-path primitives.

Search throughput is bounded by four operations, each exercised here on
a large (≈70-activity) workflow so regressions in the per-state cost are
caught independently of algorithm-level changes:

* copying a state graph,
* applying one swap (copy + rewire + validate + propagate),
* full cost estimation and semi-incremental re-costing,
* signature computation.
"""

from __future__ import annotations

import pytest

from repro.core.cost import ProcessedRowsCostModel, estimate, estimate_incremental
from repro.core.signature import state_signature
from repro.core.transitions import candidate_transitions
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def large_workflow():
    workload = generate_workload("large", seed=2)
    workload.workflow.validate()
    workload.workflow.propagate_schemas()
    return workload.workflow


@pytest.fixture(scope="module")
def first_swap(large_workflow):
    from repro.core.transitions import Swap

    for transition in candidate_transitions(large_workflow):
        if isinstance(transition, Swap) and transition.try_apply(large_workflow):
            return transition
    pytest.skip("no applicable swap found")


def test_bench_graph_copy(benchmark, large_workflow):
    duplicate = benchmark(large_workflow.copy)
    assert len(duplicate) == len(large_workflow)


def test_bench_schema_propagation(benchmark, large_workflow):
    derived = benchmark(large_workflow.propagate_schemas)
    assert derived


def test_bench_swap_application(benchmark, large_workflow, first_swap):
    successor = benchmark(lambda: first_swap.apply(large_workflow))
    assert successor is not large_workflow


def test_bench_full_estimate(benchmark, large_workflow):
    model = ProcessedRowsCostModel()
    report = benchmark(lambda: estimate(large_workflow, model))
    assert report.total > 0


def test_bench_incremental_estimate(benchmark, large_workflow, first_swap):
    model = ProcessedRowsCostModel()
    parent = estimate(large_workflow, model)
    successor = first_swap.apply(large_workflow)
    report = benchmark(
        lambda: estimate_incremental(
            successor, model, parent, first_swap.affected_nodes()
        )
    )
    assert report.total > 0


def test_bench_signature(benchmark, large_workflow):
    signature = benchmark(lambda: state_signature(large_workflow))
    assert signature
