"""Table 1 — quality of solution per algorithm and workload category.

Regenerates the paper's Table 1 from the shared experiment records and
asserts its *shape*:

* small: HS matches (budgeted) ES; HS-Greedy within a whisker;
* every category: HS quality >= HS-Greedy quality;
* the HS-vs-Greedy gap does not shrink from small to large.

The timed portion is one representative HS run per category.
"""

from __future__ import annotations

import pytest

from repro.core.search import heuristic_search
from repro.experiments import format_table1, table1_rows

from _config import bench_categories


def _rows_by_category(records):
    return {row["category"]: row for row in table1_rows(records)}


def test_table1_report(benchmark, experiment_records, capsys):
    """Regenerate and print Table 1 (timed: formatting only — the heavy
    optimization runs live in the session fixture)."""
    report = benchmark.pedantic(
        lambda: format_table1(experiment_records), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + report)
    rows = _rows_by_category(experiment_records)
    assert set(rows) == set(bench_categories())


def test_table1_shape_hs_tracks_es_on_small(experiment_records):
    rows = _rows_by_category(experiment_records)
    small = rows["small"]
    # Paper: ES 100, HS 100 (HS finds the small-category optimum).
    assert small["HS"] >= small["ES"] - 2.0


def test_table1_shape_hs_at_least_greedy(experiment_records):
    for row in table1_rows(experiment_records):
        assert row["HS"] >= row["HS-Greedy"] - 1e-9, row


@pytest.mark.parametrize("category", bench_categories())
def test_table1_timed_hs_run(benchmark, representative_workloads, category):
    workload = representative_workloads[category]
    result = benchmark.pedantic(
        lambda: heuristic_search(workload.workflow), rounds=1, iterations=1
    )
    benchmark.extra_info["category"] = category
    benchmark.extra_info["improvement_percent"] = round(
        result.improvement_percent, 1
    )
    benchmark.extra_info["visited_states"] = result.visited_states
    assert result.best_cost <= result.initial_cost
