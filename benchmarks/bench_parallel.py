#!/usr/bin/env python
"""Serial vs parallel HS and sharded streaming, plus the warm-cache rerun.

Records the parallel engine's acceptance numbers in ``BENCH_parallel.json``:

* wall-clock of ``jobs=1`` vs ``jobs=2,4`` HS on a generated scaling
  workload (default: ``large`` seed 0 — 9 local groups), with a hard check
  that every parallel run returns the byte-identical best signature, cost
  and visited count;
* wall-clock of serial streaming vs ``shards=2,4`` partitioned streaming
  on a deep 12-activity filter chain, with a hard check that every
  sharded run returns byte-identical targets and stats;
* a cold-vs-warm on-disk cache pair, recording the warm run's ``cache_hits``
  and time;
* the incremental fast path against its ``REPRO_FULL_RECOST`` slow twin
  (same budget, byte-identical result required) — the ISSUE 6 headline
  speedup;
* the pruned search modes (``beam_width=8``, branch-and-bound, dominance
  pruning): visited volume and wall-clock per mode, with a hard check
  that B&B and dominance preserve the unpruned best cost;
* the telemetry-overhead pair: the same cold serial search with a live
  :class:`Recorder` vs the ``NULL_RECORDER``, byte-identical result
  required; the delta is recorded as informational, never gated.

The speedup columns are only meaningful on multi-core machines — group
exploration and shard pipelines are CPU-bound, so on a single-core
container ``jobs>1``/``shards>1`` add pool overhead instead (the JSON
records ``cpu_count`` so the perf trajectory can tell those environments
apart).  ``--require-speedup`` turns the acceptance criterion into an
exit code: on a multi-core machine the best jobs>1 and shards>1 runs
must each beat serial.

Usage::

    python benchmarks/bench_parallel.py                     # large, jobs 2,4
    python benchmarks/bench_parallel.py --category small    # CI smoke size
    python benchmarks/bench_parallel.py --jobs 2 --shards 2 \\
        --require-speedup                                   # 2-core CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import SearchBudget, heuristic_search  # noqa: E402
from repro.core import flags  # noqa: E402
from repro.core.activity import Activity  # noqa: E402
from repro.core.recordset import RecordSet, RecordSetKind  # noqa: E402
from repro.core.schema import Schema  # noqa: E402
from repro.core.workflow import ETLWorkflow  # noqa: E402
from repro.engine import ExecutionBudget, Executor  # noqa: E402
from repro.engine.operators import (  # noqa: E402
    EngineContext,
    default_scalar_functions,
)
from repro.obs import (  # noqa: E402
    Recorder,
    summarize,
    use_recorder,
    verify_lineage,
)
from repro.templates import builtin as t  # noqa: E402
from repro.workloads import generate_workload  # noqa: E402
from repro.workloads.datagen import make_generic_rows  # noqa: E402


def _run(category: str, seed: int, budget: SearchBudget, recorder=None):
    workload = generate_workload(category, seed=seed)
    started = time.perf_counter()
    with use_recorder(recorder):
        result = heuristic_search(workload.workflow.copy(), budget=budget)
    return time.perf_counter() - started, result


def _deep_filter_chain() -> ETLWorkflow:
    """A 12-activity reduce pipeline (filters + scalar functions, overall
    selectivity ~2%): the partitionable ETL shape where shard compute
    dominates and the merged output stays small.  Shallow scenarios like
    ``two_branch`` ship most of their input back to the parent, so the
    serial merge eats the parallel win; this chain is the honest
    shards-pay case."""
    schema = Schema(["KEY", "SRC", "DATE", "V1", "V2", "V3"])
    wf = ETLWorkflow()
    prev = wf.add_node(
        RecordSet("src", "SRC", schema, RecordSetKind.SOURCE, 500000)
    )
    fn = t.FUNCTION_APPLY
    for activity in (
        # Full-volume prefix: every source row flows through these four.
        Activity("a1", t.NOT_NULL, {"attr": "V1"}, selectivity=0.95),
        Activity("a2", fn, {"function": "scale_double", "inputs": ("V1",),
                            "output": "W1", "injective": True}),
        Activity("a3", fn, {"function": "shift_up", "inputs": ("V2",),
                            "output": "W2", "injective": True}),
        Activity("a4", fn, {"function": "negate", "inputs": ("V3",),
                            "output": "W3", "injective": True}),
        # Reduce cascade: ~1% of the input survives to the target.
        Activity("a5", t.SELECTION,
                 {"attr": "W1", "op": ">=", "value": 100.0},
                 selectivity=0.5),
        Activity("a6", t.SELECTION,
                 {"attr": "W2", "op": ">=", "value": 1075.0},
                 selectivity=0.25),
        Activity("a7", t.SELECTION,
                 {"attr": "W3", "op": "<=", "value": -60.0},
                 selectivity=0.4),
        Activity("a8", fn, {"function": "scale_double", "inputs": ("W1",),
                            "output": "W4", "injective": True}),
        Activity("a9", t.SELECTION,
                 {"attr": "W4", "op": ">=", "value": 280.0},
                 selectivity=0.6),
        Activity("a10", fn, {"function": "shift_up", "inputs": ("W2",),
                             "output": "W5", "injective": True}),
        Activity("a11", t.SELECTION,
                 {"attr": "W5", "op": ">=", "value": 2090.0},
                 selectivity=0.4),
        Activity("a12", t.NOT_NULL, {"attr": "W4"}, selectivity=1.0),
    ):
        node = wf.add_node(activity)
        wf.add_edge(prev, node)
        prev = node
    dw = wf.add_node(
        RecordSet("dw", "DW", Schema(["KEY", "SRC", "DATE", "W3", "W4", "W5"]),
                  RecordSetKind.TARGET)
    )
    wf.add_edge(prev, dw)
    return wf


def _engine_section(seed: int, rows: int, shard_counts: list[int]):
    """Serial streaming vs shards=N partitioned streaming, byte-checked."""
    workflow = _deep_filter_chain()
    data = {"SRC": make_generic_rows(rows, seed, "SRC")}
    executor = Executor(
        context=EngineContext(scalar_functions=default_scalar_functions())
    )
    budget = ExecutionBudget(batch_size=4096)
    started = time.perf_counter()
    serial = executor.run(workflow, data, budget=budget)
    serial_seconds = time.perf_counter() - started
    out_rows = sum(len(rows_) for rows_ in serial.targets.values())
    print(f"  engine  shards=1  {serial_seconds:7.2f}s  "
          f"rows={rows} -> {out_rows}")
    runs = []
    for shards in shard_counts:
        started = time.perf_counter()
        sharded = executor.run(workflow, data, budget=budget, shards=shards)
        seconds = time.perf_counter() - started
        identical = (
            list(sharded.targets) == list(serial.targets)
            and sharded.targets == serial.targets
            and sharded.stats.rows_processed == serial.stats.rows_processed
            and sharded.stats.rows_output == serial.stats.rows_output
        )
        runs.append({
            "shards": shards,
            "seconds": round(seconds, 4),
            "speedup": round(serial_seconds / seconds, 3),
            "identical_to_serial": identical,
        })
        print(f"  engine  shards={shards}  {seconds:7.2f}s  "
              f"speedup={serial_seconds / seconds:.2f}x  "
              f"identical={identical}")
        if not identical:
            return None, "sharded engine run diverged from serial"
    return {
        "scenario": "deep_filter_chain",
        "rows_per_source": rows,
        "target_rows": out_rows,
        "serial_seconds": round(serial_seconds, 4),
        "runs": runs,
    }, None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--category", default="large",
                        help="workload category (default: large)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", default="2,4",
                        help="comma-separated parallel worker counts")
    parser.add_argument("--shards", default="2,4",
                        help="comma-separated engine shard counts")
    parser.add_argument("--engine-rows", type=int, default=None,
                        help="rows per source for the sharded-engine runs "
                             "(default: 2000000, or 150000 for --category "
                             "small)")
    parser.add_argument("--require-speedup", action="store_true",
                        help="exit 1 unless the best jobs>1 and shards>1 "
                             "runs beat serial (skipped when cpu_count<2)")
    parser.add_argument("--output", default="BENCH_parallel.json")
    parser.add_argument("--no-full-recost", action="store_true",
                        help="skip the slow-twin comparison run")
    args = parser.parse_args(argv)
    job_counts = [int(part) for part in args.jobs.split(",") if part.strip()]
    shard_counts = [
        int(part) for part in args.shards.split(",") if part.strip()
    ]
    engine_rows = args.engine_rows
    if engine_rows is None:
        engine_rows = 150000 if args.category == "small" else 2000000

    workload = generate_workload(args.category, seed=args.seed)
    probe = workload.workflow
    probe.validate()
    probe.propagate_schemas()
    local_groups = [g for g in probe.local_groups() if len(g) >= 2]

    # Telemetry rides along on the serial run; its per-phase summary is
    # embedded in the payload so a perf run carries its own breakdown.
    recorder = Recorder()
    serial_seconds, serial = _run(
        args.category, args.seed, SearchBudget(), recorder=recorder
    )
    print(f"{args.category} seed {args.seed}: "
          f"{workload.activity_count} activities, "
          f"{len(local_groups)} local groups")
    print(f"  jobs=1  {serial_seconds:7.2f}s  "
          f"visited={serial.visited_states}  best={serial.best.cost:.0f}")

    # Telemetry must be ~free when off: the same cold serial search with
    # the NULL_RECORDER, byte-identical result required.  The overhead
    # delta lands in the payload as informational (the diff gate lists
    # ``telemetry_overhead`` as INFO — recorded, never gated).
    off_seconds, off = _run(args.category, args.seed, SearchBudget())
    off_identical = (
        off.best.signature == serial.best.signature
        and off.best.cost == serial.best.cost
        and off.visited_states == serial.visited_states
    )
    overhead_pct = 100.0 * (serial_seconds - off_seconds) / off_seconds
    telemetry_overhead = {
        "on_seconds": round(serial_seconds, 4),
        "off_seconds": round(off_seconds, 4),
        "overhead_pct": round(overhead_pct, 2),
    }
    print(f"  telemetry on {serial_seconds:.2f}s / off {off_seconds:.2f}s "
          f"({overhead_pct:+.1f}% overhead, identical={off_identical})")
    if not off_identical:
        print("error: telemetry-off run diverged from recorder-on run",
              file=sys.stderr)
        return 1

    runs = []
    for jobs in job_counts:
        seconds, result = _run(
            args.category, args.seed, SearchBudget(jobs=jobs)
        )
        identical = (
            result.best.signature == serial.best.signature
            and result.best.cost == serial.best.cost
            and result.visited_states == serial.visited_states
        )
        runs.append({
            "jobs": jobs,
            "seconds": round(seconds, 4),
            "speedup": round(serial_seconds / seconds, 3),
            "identical_to_serial": identical,
        })
        print(f"  jobs={jobs}  {seconds:7.2f}s  "
              f"speedup={serial_seconds / seconds:.2f}x  "
              f"identical={identical}")
        if not identical:
            print("error: parallel run diverged from serial", file=sys.stderr)
            return 1

    engine, engine_error = _engine_section(
        args.seed, engine_rows, shard_counts
    )
    if engine_error is not None:
        print(f"error: {engine_error}", file=sys.stderr)
        return 1

    if args.require_speedup:
        cpu_count = os.cpu_count() or 1
        if cpu_count < 2:
            print("  speedup gate skipped: single-core machine")
        else:
            best_jobs = max(run["speedup"] for run in runs)
            best_shards = max(run["speedup"] for run in engine["runs"])
            print(f"  speedup gate: jobs {best_jobs:.2f}x, "
                  f"shards {best_shards:.2f}x (cpu_count={cpu_count})")
            if best_jobs < 1.0 or best_shards < 1.0:
                print("error: parallelism does not pay on this "
                      f"{cpu_count}-core machine "
                      f"(jobs {best_jobs:.2f}x, shards {best_shards:.2f}x)",
                      file=sys.stderr)
                return 1

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold_seconds, cold = _run(
            args.category, args.seed, SearchBudget(cache=cache_dir)
        )
        warm_seconds, warm = _run(
            args.category, args.seed, SearchBudget(cache=cache_dir)
        )
    warm_identical = (
        warm.best.signature == cold.best.signature
        and warm.visited_states == cold.visited_states
    )
    print(f"  cache   cold {cold_seconds:.2f}s -> warm {warm_seconds:.2f}s "
          f"({warm.cache_hits} hit(s), identical={warm_identical})")
    if warm.cache_hits == 0 or not warm_identical:
        print("error: warm cache run must hit and agree", file=sys.stderr)
        return 1

    # Fast path vs its obviously-correct slow twin: same search, every
    # transition forced through full copy/validation/recosting.  The twin
    # must agree byte for byte — the speedup is the ISSUE 6 headline.
    full_recost = None
    if not args.no_full_recost:
        previous = flags.set_full_recost(True)
        try:
            slow_seconds, slow = _run(
                args.category, args.seed, SearchBudget()
            )
        finally:
            flags.set_full_recost(previous)
        twin_identical = (
            slow.best.signature == serial.best.signature
            and slow.best.cost == serial.best.cost
            and slow.visited_states == serial.visited_states
        )
        full_recost = {
            "slow_seconds": round(slow_seconds, 4),
            "fast_seconds": round(serial_seconds, 4),
            "fast_speedup": round(slow_seconds / serial_seconds, 3),
            "identical_to_fast": twin_identical,
        }
        print(f"  twin    slow {slow_seconds:.2f}s -> fast "
              f"{serial_seconds:.2f}s "
              f"({slow_seconds / serial_seconds:.1f}x, "
              f"identical={twin_identical})")
        if not twin_identical:
            print("error: full-recost twin diverged from fast path",
                  file=sys.stderr)
            return 1

    # Pruned search modes.  B&B and dominance are required to keep the
    # unpruned best cost; the beam is lossy by design, so its cost is
    # recorded (and gated against its own baseline) but not checked here.
    modes = {}
    for name, kwargs, must_match in (
        ("beam8", {"beam_width": 8}, False),
        ("bound", {"bound": True}, True),
        ("dominance", {"prune_dominated": True}, True),
    ):
        seconds, result = _run(
            args.category, args.seed, SearchBudget(**kwargs)
        )
        preserved = result.best.cost == serial.best.cost
        modes[name] = {
            "seconds": round(seconds, 4),
            "visited_states": result.visited_states,
            "best_cost": result.best.cost,
            "best_cost_identical": preserved,
        }
        print(f"  {name:<7} {seconds:7.2f}s  "
              f"visited={result.visited_states}  "
              f"best={result.best.cost:.0f}  identical={preserved}")
        if must_match and not preserved:
            print(f"error: {name} changed the best cost", file=sys.stderr)
            return 1

    # Provenance check: the winning lineage must replay to the reported
    # best state, and the payload records its shape for the diff gate.
    replay = verify_lineage(serial)
    print(f"  lineage {len(serial.lineage)} step(s) replays to "
          f"cost {replay.cost:.0f}")

    payload = {
        "benchmark": "parallel",
        "category": args.category,
        "seed": args.seed,
        "activities": workload.activity_count,
        "local_groups": len(local_groups),
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 4),
        "visited_states": serial.visited_states,
        "best_cost": serial.best.cost,
        "lineage": {
            "steps": len(serial.lineage),
            "transition_mix": serial.transition_mix(),
            "replay_ok": True,
        },
        "runs": runs,
        "engine": engine,
        "full_recost": full_recost,
        "modes": modes,
        "cache": {
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_speedup": round(cold_seconds / warm_seconds, 3),
            "warm_cache_hits": warm.cache_hits,
            "identical_to_cold": warm_identical,
        },
        "telemetry": summarize(recorder.events()),
        "telemetry_overhead": telemetry_overhead,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
