"""Ablation — semi-incremental vs full state re-costing (section 4.1).

The paper computes state costs semi-incrementally ("the variation of the
cost from S to S' can be determined by computing only the cost of the
path from the affected activities towards the target").  This bench
measures the speedup of :func:`estimate_incremental` over full
:func:`estimate` across the successor states of a large workflow, and
asserts the two agree numerically.
"""

from __future__ import annotations

import pytest

from repro.core.cost import (
    ProcessedRowsCostModel,
    estimate,
    estimate_incremental,
)
from repro.core.transitions import successor_states
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def successor_set():
    workload = generate_workload("large", seed=1)
    model = ProcessedRowsCostModel()
    parent = estimate(workload.workflow, model)
    successors = list(successor_states(workload.workflow))
    return workload.workflow, model, parent, successors


def test_incremental_agrees_with_full(successor_set):
    _, model, parent, successors = successor_set
    for transition, successor in successors:
        incremental = estimate_incremental(
            successor, model, parent, transition.affected_nodes()
        )
        full = estimate(successor, model)
        assert incremental.total == pytest.approx(full.total)


def test_bench_full_recosting(benchmark, successor_set):
    _, model, _, successors = successor_set
    def run():
        return [estimate(successor, model).total for _, successor in successors]
    totals = benchmark(run)
    assert totals


def test_bench_incremental_recosting(benchmark, successor_set):
    _, model, parent, successors = successor_set
    def run():
        return [
            estimate_incremental(
                successor, model, parent, transition.affected_nodes()
            ).total
            for transition, successor in successors
        ]
    totals = benchmark(run)
    assert totals
