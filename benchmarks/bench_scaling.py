"""Scaling series — optimizer effort vs workflow size.

Table 2 gives three points per algorithm (20/40/70 activities); this
bench fills in the series across all four generator size bands and
asserts the growth shape: visited states and time grow with workflow
size for both heuristics, while HS-Greedy's effort stays one order of
magnitude below HS's across the range.
"""

from __future__ import annotations

import pytest

from repro.core.search import greedy_search, heuristic_search
from repro.workloads import generate_workload

_CATEGORIES = ("tiny", "small", "medium", "large")


@pytest.fixture(scope="module")
def scaling_series():
    series = []
    for category in _CATEGORIES:
        workload = generate_workload(category, seed=1)
        hs = heuristic_search(workload.workflow)
        greedy = greedy_search(workload.workflow)
        series.append((workload, hs, greedy))
    return series


def test_scaling_report(benchmark, scaling_series, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'category':<9}{'acts':>5}{'HS states':>11}{'HS s':>8}"
        f"{'GR states':>11}{'GR s':>8}{'HS/GR':>7}"
    ]
    for workload, hs, greedy in scaling_series:
        ratio = hs.visited_states / max(1, greedy.visited_states)
        lines.append(
            f"{workload.category:<9}{workload.activity_count:>5}"
            f"{hs.visited_states:>11}{hs.elapsed_seconds:>8.2f}"
            f"{greedy.visited_states:>11}{greedy.elapsed_seconds:>8.2f}"
            f"{ratio:>7.1f}"
        )
    with capsys.disabled():
        print("\nScaling series: optimizer effort vs workflow size")
        print("\n".join(lines))


def test_effort_grows_with_size(scaling_series):
    hs_states = [hs.visited_states for _, hs, _ in scaling_series]
    greedy_states = [g.visited_states for _, _, g in scaling_series]
    assert hs_states == sorted(hs_states)
    assert greedy_states == sorted(greedy_states)


def test_greedy_stays_an_order_of_magnitude_cheaper(scaling_series):
    for workload, hs, greedy in scaling_series[1:]:  # skip trivial tiny
        assert greedy.visited_states * 3 <= hs.visited_states, workload.category


@pytest.mark.parametrize("category", _CATEGORIES)
def test_bench_greedy_scaling(benchmark, category):
    workload = generate_workload(category, seed=1)
    result = benchmark.pedantic(
        lambda: greedy_search(workload.workflow), rounds=1, iterations=1
    )
    benchmark.extra_info["activities"] = workload.activity_count
    benchmark.extra_info["visited_states"] = result.visited_states
