"""Ablation — physical optimization on top of the logical optimizer (§6).

The paper leaves physical optimization as future work; this bench
quantifies what the layer adds and how memory budgets interact with the
*logical* choices:

* picking physical implementations for the logical optimum (hash
  variants where memory allows) cuts the modeled cost further;
* running the logical search directly against the physical cost model
  changes what "optimal" means: with abundant memory, blocking operators
  become linear, so filter push-down buys relatively less.
"""

from __future__ import annotations

import pytest

from repro.core.cost import ProcessedRowsCostModel, estimate
from repro.core.search import heuristic_search
from repro.physical import PhysicalCostModel, plan_physical
from repro.workloads import generate_workload

_SEEDS = (1, 2, 3)


@pytest.fixture(scope="module")
def physical_results():
    rows = []
    for seed in _SEEDS:
        workload = generate_workload("medium", seed=seed)
        logical = heuristic_search(workload.workflow)
        plan_generous = plan_physical(logical.best.workflow, memory_rows=1e9)
        plan_tight = plan_physical(logical.best.workflow, memory_rows=1)
        rows.append((workload, logical, plan_generous, plan_tight))
    return rows


def test_physical_layer_improves_logical_optimum(benchmark, physical_results, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    model = ProcessedRowsCostModel()
    for workload, logical, generous, tight in physical_results:
        logical_cost = estimate(logical.best.workflow, model).total
        lines.append(
            f"medium/{workload.seed}: logical {logical_cost:,.0f} -> "
            f"physical(mem=1e9) {generous.total_cost:,.0f}, "
            f"physical(mem=1) {tight.total_cost:,.0f}"
        )
        assert generous.total_cost <= logical_cost + 1e-9
        assert generous.total_cost <= tight.total_cost + 1e-9
        # With one row of memory every hash variant is infeasible, so the
        # plan degenerates to the sort-based logical pricing.
        assert tight.total_cost == pytest.approx(logical_cost)
    with capsys.disabled():
        print("\nAblation: physical planning on the logical optimum")
        print("\n".join(lines))


def test_bench_physical_planning(benchmark):
    workload = generate_workload("large", seed=1)
    plan = benchmark(lambda: plan_physical(workload.workflow, memory_rows=1e6))
    assert plan.total_cost > 0


def test_bench_logical_search_under_physical_model(benchmark, capsys):
    """Interleaved logical+physical: the search runs on physical costs."""
    workload = generate_workload("medium", seed=1)
    result = benchmark.pedantic(
        lambda: heuristic_search(
            workload.workflow, model=PhysicalCostModel(memory_rows=1e9)
        ),
        rounds=1,
        iterations=1,
    )
    plain = heuristic_search(workload.workflow)
    with capsys.disabled():
        print(
            f"\nAblation: logical search under physical costs — "
            f"improvement {result.improvement_percent:.0f}% "
            f"(vs {plain.improvement_percent:.0f}% under the sort-based model)"
        )
    assert result.best_cost <= result.initial_cost
