"""Table 2 — visited states, improvement over S0, and execution time.

Regenerates the paper's Table 2 from the shared experiment records and
asserts its shape:

* visited states: ES(budget-bound) and HS both visit far more states than
  HS-Greedy; HS visits an order of magnitude more than Greedy;
* improvement: both heuristics improve the initial state substantially
  (the paper reports 45-78 %);
* time: HS-Greedy is several times faster than HS (paper: 8-42x).

The timed portion is one representative run per (category, algorithm).
"""

from __future__ import annotations

import pytest

from repro.core.search import exhaustive_search, greedy_search, heuristic_search
from repro.experiments import format_table2, table2_rows

from _config import bench_categories, bench_config


def _rows_by_category(records):
    return {row["category"]: row for row in table2_rows(records)}


def test_table2_report(benchmark, experiment_records, capsys):
    """Regenerate and print Table 2 (timed: formatting only — the heavy
    optimization runs live in the session fixture)."""
    report = benchmark.pedantic(
        lambda: format_table2(experiment_records), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + report)
    assert set(_rows_by_category(experiment_records)) == set(bench_categories())


def test_table2_shape_greedy_visits_fewest(experiment_records):
    for row in table2_rows(experiment_records):
        greedy = row["HS-Greedy"]["visited_states"]
        assert greedy <= row["HS"]["visited_states"], row
        assert greedy <= row["ES"]["visited_states"], row


def test_table2_shape_hs_visits_many_more_than_greedy(experiment_records):
    for row in table2_rows(experiment_records):
        ratio = row["HS"]["visited_states"] / max(1, row["HS-Greedy"]["visited_states"])
        # Paper ratios: 13.6x (small), 9.2x (medium), 11.6x (large).
        assert ratio >= 3.0, row


def test_table2_shape_heuristics_improve_substantially(experiment_records):
    for row in table2_rows(experiment_records):
        assert row["HS"]["improvement_percent"] >= 20.0, row
        assert row["HS-Greedy"]["improvement_percent"] >= 15.0, row


def test_table2_shape_greedy_is_faster(experiment_records):
    for row in table2_rows(experiment_records):
        assert (
            row["HS-Greedy"]["time_seconds"] <= row["HS"]["time_seconds"]
        ), row


def test_table2_shape_es_exhausts_budget_on_large(experiment_records):
    """Paper: ES 'did not terminate' for medium and large workflows."""
    rows = _rows_by_category(experiment_records)
    for category in rows:
        if category in ("medium", "large"):
            assert not rows[category]["ES"]["completed"]


def _run(algorithm, workload):
    config = bench_config()
    if algorithm == "ES":
        return exhaustive_search(
            workload.workflow,
            max_states=config.es_max_states.get(workload.category),
            max_seconds=config.es_max_seconds,
        )
    if algorithm == "HS":
        return heuristic_search(workload.workflow)
    return greedy_search(workload.workflow)


@pytest.mark.parametrize("algorithm", ["ES", "HS", "HS-Greedy"])
@pytest.mark.parametrize("category", bench_categories())
def test_table2_timed_run(
    benchmark, representative_workloads, category, algorithm
):
    workload = representative_workloads[category]
    result = benchmark.pedantic(
        lambda: _run(algorithm, workload), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        category=category,
        algorithm=algorithm,
        visited_states=result.visited_states,
        improvement_percent=round(result.improvement_percent, 1),
        completed=result.completed,
    )
    assert result.best_cost <= result.initial_cost
