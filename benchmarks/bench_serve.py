#!/usr/bin/env python
"""The serving layer's acceptance numbers: latency tiers and hit rates.

Drives an in-process :class:`~repro.serve.server.BackgroundServer`
through the real wire protocol (TCP, line-delimited JSON) with a
scripted request mix and records ``BENCH_serve.json``:

* **cold** — every unique workflow optimized once against an empty
  daemon: the full-search latency a first-time client pays;
* **warm** — the same workflows re-requested under a *different* budget
  spelling (same outcome, different memo key), so the search re-runs
  against the now-warm shared transposition cache;
* **memo** — the cold requests repeated verbatim: answered from the
  result memo without searching.

For each tier the JSON records p50/p99 latency; for the memo tier a
burst throughput (requests/second).  Wall-clock numbers are
informational — the *gated* metrics are the deterministic ones: the
memo hit rate of the scripted mix, the transposition hit rate, and the
``identical_to_direct`` / ``warm_identical`` flags asserting that every
served answer is byte-identical to a direct in-process
:func:`repro.optimize` call (the bench exits 1 itself if they fail —
serving must never change the answer).

Usage::

    python benchmarks/bench_serve.py                      # small, 4x3 mix
    python benchmarks/bench_serve.py --category tiny --unique 2 --repeats 2
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import SearchBudget, optimize  # noqa: E402
from repro.serve import BackgroundServer, ServeConfig  # noqa: E402
from repro.serve.protocol import result_to_dict  # noqa: E402
from repro.workloads import generate_workload  # noqa: E402


def _percentile(samples: list[float], pct: float) -> float:
    ordered = sorted(samples)
    index = max(0, math.ceil(pct / 100.0 * len(ordered)) - 1)
    return ordered[index]


def _tier(samples: list[float]) -> dict[str, float]:
    return {
        "p50_ms": round(_percentile(samples, 50) * 1000, 3),
        "p99_ms": round(_percentile(samples, 99) * 1000, 3),
        "mean_ms": round(sum(samples) / len(samples) * 1000, 3),
    }


def _timed(client, workflow, budget: dict) -> tuple[float, dict]:
    started = time.perf_counter()
    reply = client.optimize(workflow, "hs", budget=budget)
    return time.perf_counter() - started, reply


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--category", default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--unique", type=int, default=4,
        help="distinct workflows in the request mix",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="memo-tier repeats per workflow",
    )
    parser.add_argument("--max-states", type=int, default=800)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args()

    budget = {"max_states": args.max_states}
    # Same stopping outcome, different memo key: max_seconds never binds
    # at one hour, so the warm tier re-searches instead of memo-hitting.
    warm_budget = {"max_states": args.max_states, "max_seconds": 3600.0}
    seeds = [args.seed + offset for offset in range(args.unique)]
    workflows = {
        seed: generate_workload(args.category, seed=seed).workflow
        for seed in seeds
    }

    print(f"serve bench: {args.unique} x {args.category} workflows, "
          f"{args.repeats} memo repeats, max_states={args.max_states}, "
          f"workers={args.workers}")

    # The reference answers the daemon must reproduce byte-for-byte.
    direct = {
        seed: result_to_dict(
            optimize(
                workflows[seed].copy(),
                "hs",
                budget=SearchBudget(max_states=args.max_states),
            )
        )
        for seed in seeds
    }

    config = ServeConfig(workers=args.workers, queue_size=64)
    cold_latencies: list[float] = []
    warm_latencies: list[float] = []
    memo_latencies: list[float] = []
    identical_to_direct = True
    warm_identical = True
    warm_cache_hits = 0

    with BackgroundServer(config) as background:
        with background.client() as client:
            for seed in seeds:
                seconds, reply = _timed(
                    client, workflows[seed].copy(), budget
                )
                cold_latencies.append(seconds)
                if reply["served_from"] != "search":
                    print(f"error: cold request for seed {seed} did not "
                          "search", file=sys.stderr)
                    return 1
                for field in ("best_cost", "best_signature", "lineage"):
                    if reply["result"][field] != direct[seed][field]:
                        identical_to_direct = False
                        print(f"error: served {field} for seed {seed} "
                              "diverged from direct optimize()",
                              file=sys.stderr)

            for seed in seeds:
                seconds, reply = _timed(
                    client, workflows[seed].copy(), warm_budget
                )
                warm_latencies.append(seconds)
                warm_cache_hits += reply["cache_hits"]
                for field in ("best_cost", "best_signature"):
                    if reply["result"][field] != direct[seed][field]:
                        warm_identical = False
                        print(f"error: warm-search {field} for seed {seed} "
                              "diverged", file=sys.stderr)

            burst_started = time.perf_counter()
            for _ in range(args.repeats):
                for seed in seeds:
                    seconds, reply = _timed(
                        client, workflows[seed].copy(), budget
                    )
                    memo_latencies.append(seconds)
                    if reply["served_from"] != "memo":
                        print(f"error: repeat request for seed {seed} "
                              "missed the memo", file=sys.stderr)
                        return 1
            burst_seconds = time.perf_counter() - burst_started
            stats = client.stats()

    latency = {
        "cold": _tier(cold_latencies),
        "warm": _tier(warm_latencies),
        "memo": _tier(memo_latencies),
        "memo_latency_ratio": round(
            _percentile(cold_latencies, 50) / _percentile(memo_latencies, 50),
            1,
        ),
    }
    for tier in ("cold", "warm", "memo"):
        row = latency[tier]
        print(f"  {tier:<5} p50 {row['p50_ms']:9.2f}ms   "
              f"p99 {row['p99_ms']:9.2f}ms")
    print(f"  memo answers {latency['memo_latency_ratio']}x faster than "
          f"cold (p50); identical_to_direct={identical_to_direct}")

    payload = {
        "benchmark": "serve",
        "category": args.category,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "workers": args.workers,
        "unique_workflows": args.unique,
        "repeats": args.repeats,
        "max_states": args.max_states,
        "latency": latency,
        "throughput": {
            "memo_requests": len(memo_latencies),
            "memo_requests_per_second": round(
                len(memo_latencies) / burst_seconds, 1
            ),
        },
        "memo": stats["memo"],
        "transposition": stats["transposition"],
        "queue": {
            "admitted": stats["queue"]["admitted"],
            "rejected_full": stats["queue"]["rejected_full"],
            "rejected_tenant": stats["queue"]["rejected_tenant"],
        },
        "identical_to_direct": identical_to_direct,
        "warm_identical": warm_identical,
        "warm_cache_hits": warm_cache_hits,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0 if identical_to_direct and warm_identical else 1


if __name__ == "__main__":
    sys.exit(main())
