"""Shared fixtures for the benchmark suite.

The paper's experiments (Tables 1 and 2) run 40 workflows across three
size categories; that scale is hours of laptop time in pure Python, so
the benches default to a reduced-but-faithful scale (see ``_config.py``
for the environment knobs).

The full (table-content) experiment runs once per session in the
``experiment_records`` fixture; the ``benchmark``-timed functions time
*representative single runs* so pytest-benchmark reports per-algorithm
optimization latency without re-running the whole suite per round.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.workloads import generate_workload

from _config import bench_categories, bench_config


@pytest.fixture(scope="session")
def experiment_records():
    """All (workflow, algorithm) run records — computed once per session."""
    return run_experiment(bench_config())


@pytest.fixture(scope="session")
def representative_workloads():
    """One workload per category, for the timed representative runs."""
    return {
        category: generate_workload(category, seed=1)
        for category in bench_categories()
    }
