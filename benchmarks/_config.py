"""Benchmark scale configuration (shared by conftest and bench modules).

Environment knobs:

* ``REPRO_BENCH_WORKFLOWS`` — workflows per category (default 2);
* ``REPRO_BENCH_FAST=1``    — small category only, for quick runs.
"""

from __future__ import annotations

import os

from repro.core.search import HSConfig
from repro.experiments import ExperimentConfig

__all__ = ["bench_scale", "bench_fast", "bench_categories", "bench_config"]


def bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKFLOWS", "2"))


def bench_fast() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") == "1"


def bench_categories() -> tuple[str, ...]:
    if bench_fast():
        return ("small",)
    return ("small", "medium", "large")


def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        categories=bench_categories(),
        workflows_per_category=bench_scale(),
        es_max_states={
            "small": 4_000,
            "medium": 2_000,
            "large": 1_000,
        },
        es_max_seconds=60.0,
        hs_config=HSConfig(),
    )
