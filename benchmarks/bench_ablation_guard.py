"""Ablation — the semantic swap guard is *necessary*, not just cautious.

DESIGN.md documents a conservative strengthening of the paper's four swap
conditions: value-level interactions (in-place transforms vs filters,
aggregation crossings) are invisible to schema subset checks.  This bench
switches the guard off (monkeypatched, runtime only) and shows that the
exhaustive search then reaches states that are **not** equivalent — the
engine produces different warehouse contents — whereas with the guard on,
every reachable state is verified equivalent.
"""

from __future__ import annotations

import pytest

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.search import exhaustive_search
from repro.core.search.state import SearchState
from repro.core.cost import ProcessedRowsCostModel
from repro.core.transitions import successor_states
from repro.core.transitions.swap import Swap
from repro.engine import (
    EngineContext,
    Executor,
    default_scalar_functions,
    empirically_equivalent,
)
from repro.templates import builtin as t


def _trap_state():
    """An in-place transform followed by a constant comparison on the same
    attribute: swapping them changes which rows survive."""
    from repro.core.workflow import ETLWorkflow

    wf = ETLWorkflow()
    src = wf.add_node(
        RecordSet("1", "S", Schema(["K", "V"]), RecordSetKind.SOURCE, 20)
    )
    scrub = wf.add_node(
        Activity(
            "2",
            t.FUNCTION_APPLY,
            {
                "function": "negate",
                "inputs": ("V",),
                "output": "V",
                "injective": True,
            },
            name="negate(V)",
        )
    )
    sigma = wf.add_node(
        Activity(
            "3",
            t.SELECTION,
            {"attr": "V", "op": ">=", "value": 0.0},
            selectivity=0.5,
            name="σ(V>=0)",
        )
    )
    dw = wf.add_node(RecordSet("9", "DW", Schema(["K", "V"]), RecordSetKind.TARGET))
    wf.add_edge(src, scrub)
    wf.add_edge(scrub, sigma)
    wf.add_edge(sigma, dw)
    wf.validate()
    wf.propagate_schemas()
    return wf


def _data():
    return {"S": [{"K": i, "V": float(i - 5)} for i in range(11)]}


def _executor():
    return Executor(
        context=EngineContext(scalar_functions=default_scalar_functions())
    )


def _all_reachable(workflow):
    model = ProcessedRowsCostModel()
    initial = SearchState.initial(workflow.copy(), model)
    seen = {initial.signature}
    frontier = [initial]
    states = [initial]
    while frontier:
        state = frontier.pop()
        for transition, successor_wf in successor_states(state.workflow):
            successor = state.successor(transition, successor_wf, model)
            if successor.signature in seen:
                continue
            seen.add(successor.signature)
            frontier.append(successor)
            states.append(successor)
    return states


def test_guard_on_every_reachable_state_is_equivalent(benchmark):
    workflow = _trap_state()
    states = benchmark.pedantic(
        lambda: _all_reachable(workflow), rounds=1, iterations=1
    )
    executor = _executor()
    for state in states:
        report = empirically_equivalent(
            workflow, state.workflow, _data(), executor
        )
        assert report.equivalent
    # The guard forbids the unsound swap, so the trap pair never reorders.
    assert len(states) == 1


def test_guard_off_reaches_inequivalent_states(monkeypatch, capsys):
    monkeypatch.setattr(Swap, "_semantic_guard", lambda self: None)
    workflow = _trap_state()
    states = _all_reachable(workflow)
    assert len(states) > 1  # the unsound swap is now reachable
    executor = _executor()
    broken = [
        state
        for state in states
        if not empirically_equivalent(
            workflow, state.workflow, _data(), executor
        )
    ]
    with capsys.disabled():
        print(
            f"\nAblation: semantic guard — without it the search reaches "
            f"{len(states) - 1} extra state(s), of which {len(broken)} "
            f"produce different warehouse contents"
        )
    assert broken, "disabling the guard must expose the unsound rewriting"
