"""Ablation — state identification via signatures (section 4.1).

"During the application of the transitions, we need to be able to discern
states from one another, so that we avoid generating (and computing the
cost of) the same state more than once."  This bench quantifies that:
how many successor generations ES performs versus how many *unique*
states the signature dedup admits, and what signature computation costs.
"""

from __future__ import annotations

import pytest

from repro.core.cost import ProcessedRowsCostModel
from repro.core.search import exhaustive_search
from repro.core.search.state import SearchState
from repro.core.signature import state_signature
from repro.core.transitions import successor_states
from repro.workloads import generate_workload, two_branch_scenario


def test_dedup_suppresses_duplicate_states(benchmark, capsys):
    """Count raw successor generations vs unique signatures over a full
    exhaustive exploration of the two-branch scenario."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scenario = two_branch_scenario()
    model = ProcessedRowsCostModel()
    seen: set[str] = set()
    generated = 0
    frontier = [SearchState.initial(scenario.workflow.copy(), model)]
    seen.add(frontier[0].signature)
    while frontier:
        state = frontier.pop()
        for transition, successor_wf in successor_states(state.workflow):
            generated += 1
            successor = state.successor(transition, successor_wf, model)
            if successor.signature in seen:
                continue
            seen.add(successor.signature)
            frontier.append(successor)
    with capsys.disabled():
        print(
            f"\nAblation: signatures — {generated} successors generated, "
            f"{len(seen)} unique states ({generated - len(seen)} duplicate "
            f"generations suppressed)"
        )
    # Without dedup the exploration would not even terminate (transitions
    # are invertible); with it the space is finite and small.
    assert generated > len(seen)


def test_signature_is_stable_for_equal_states():
    scenario = two_branch_scenario()
    assert state_signature(scenario.workflow) == state_signature(
        scenario.workflow.copy()
    )


def test_bench_signature_computation(benchmark):
    workload = generate_workload("large", seed=1)
    signature = benchmark(lambda: state_signature(workload.workflow))
    assert signature


def test_bench_es_with_dedup(benchmark):
    scenario = two_branch_scenario()
    result = benchmark.pedantic(
        lambda: exhaustive_search(scenario.workflow),
        rounds=1,
        iterations=1,
    )
    assert result.completed
    benchmark.extra_info["visited_states"] = result.visited_states
