"""Ablation — the contribution of HS's Phase I (section 4.2).

The paper: "Experiments have shown that the existence of the first phase
leads to a much better solution without consuming too many resources."
We approximate "HS without Phase I" by an HSConfig whose per-group
exploration budget is zero — Phases II/III still factorize/distribute,
and Phase IV gets the same crippled budget — and compare solution quality
and visited states against full HS.
"""

from __future__ import annotations

import pytest

from repro.core.search import HSConfig, heuristic_search
from repro.workloads import generate_workload

_SEEDS = (1, 2, 3)


def _run(workload, group_cap):
    config = HSConfig(group_cap=group_cap)
    return heuristic_search(workload.workflow, config=config)


@pytest.fixture(scope="module")
def ablation_results():
    results = []
    for seed in _SEEDS:
        workload = generate_workload("medium", seed=seed)
        full = _run(workload, group_cap=64)
        crippled = _run(workload, group_cap=0)
        results.append((workload, full, crippled))
    return results


def test_phase1_improves_solution(benchmark, ablation_results, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    better, lines = 0, []
    for workload, full, crippled in ablation_results:
        lines.append(
            f"medium/{workload.seed}: with Phase I {full.best_cost:.0f} "
            f"({full.improvement_percent:.0f}%), without "
            f"{crippled.best_cost:.0f} ({crippled.improvement_percent:.0f}%)"
        )
        assert full.best_cost <= crippled.best_cost + 1e-9
        if full.best_cost < crippled.best_cost * 0.999:
            better += 1
    with capsys.disabled():
        print("\nAblation: HS Phase I (group swap optimization)")
        print("\n".join(lines))
    # "much better solution": Phase I must win strictly on most workloads.
    assert better >= len(ablation_results) - 1


def test_phase1_cost_is_bounded(ablation_results):
    """Phase I must not blow up the search: visited states stay within a
    sane multiple of the crippled run."""
    for _, full, crippled in ablation_results:
        assert full.visited_states <= max(200, crippled.visited_states) * 100


def test_bench_hs_with_phase1(benchmark):
    workload = generate_workload("medium", seed=1)
    result = benchmark.pedantic(
        lambda: _run(workload, group_cap=64), rounds=1, iterations=1
    )
    benchmark.extra_info["improvement_percent"] = round(
        result.improvement_percent, 1
    )


def test_bench_hs_without_phase1(benchmark):
    workload = generate_workload("medium", seed=1)
    result = benchmark.pedantic(
        lambda: _run(workload, group_cap=0), rounds=1, iterations=1
    )
    benchmark.extra_info["improvement_percent"] = round(
        result.improvement_percent, 1
    )
