"""Ablation — MER pre-processing prunes the search space (Heuristic 3).

Merging constraint-bound pairs makes the optimizer treat them as one
opaque activity, so local groups have fewer orderings to explore.  The
paper's claim: "the search space is proactively reduced without
sacrificing any of the design requirements".  We measure visited states
with and without merge constraints on medium workflows.
"""

from __future__ import annotations

import pytest

from repro.core.search import heuristic_search
from repro.workloads import generate_workload


def _mergeable_pair(workflow):
    """First adjacent unary pair inside the largest local group."""
    groups = sorted(workflow.local_groups(), key=len, reverse=True)
    for group in groups:
        if len(group) >= 2:
            return (group[0].id, group[1].id)
    return None


@pytest.fixture(scope="module")
def merge_results():
    results = []
    for seed in (1, 2, 3):
        workload = generate_workload("medium", seed=seed)
        pair = _mergeable_pair(workload.workflow)
        if pair is None:
            continue
        free = heuristic_search(workload.workflow)
        constrained = heuristic_search(
            workload.workflow, merge_constraints=(pair,)
        )
        results.append((workload, pair, free, constrained))
    return results


def test_merge_reduces_visited_states(benchmark, merge_results, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    reduced = 0
    for workload, pair, free, constrained in merge_results:
        lines.append(
            f"medium/{workload.seed}: merge{pair} visited "
            f"{constrained.visited_states} vs free {free.visited_states}"
        )
        if constrained.visited_states <= free.visited_states:
            reduced += 1
    with capsys.disabled():
        print("\nAblation: MER pre-processing (Heuristic 3)")
        print("\n".join(lines))
    assert reduced >= len(merge_results) - 1


def test_merge_never_beats_free_search(merge_results):
    """Constraints can only restrict the space: the constrained optimum is
    never cheaper than the free one."""
    for _, _, free, constrained in merge_results:
        assert constrained.best_cost >= free.best_cost - 1e-9


def test_bench_constrained_search(benchmark):
    workload = generate_workload("medium", seed=1)
    pair = _mergeable_pair(workload.workflow)
    result = benchmark.pedantic(
        lambda: heuristic_search(workload.workflow, merge_constraints=(pair,)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["visited_states"] = result.visited_states
