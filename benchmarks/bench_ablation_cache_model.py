"""Ablation — the cost model decides DIS vs FAC (section 2.2's Fig. 4 logic).

The paper motivates distribution with selectivity ("the activity is highly
selective and is pushed towards the beginning") and factorization with
caching ("the lookup table can be cached").  Because the framework is
cost-model agnostic, swapping the model should flip the optimizer's
choice on the very same Fig. 4 state:

* processed-rows model  -> case 2 (σ distributed, SKs stay per-branch);
* cache-aware model     -> case 3 (σ distributed *and* SKs factorized).
"""

from __future__ import annotations

import pytest

from repro.core.cost import CacheAwareCostModel, ProcessedRowsCostModel, estimate
from repro.core.search import exhaustive_search
from repro.workloads import fig4_states


def _sk_count(workflow):
    return sum(
        1
        for activity in workflow.activities()
        if activity.template.name == "surrogate_key"
    )


def test_processed_rows_model_prefers_distribution(capsys):
    states = fig4_states(cardinality=8)
    result = exhaustive_search(states["initial"], ProcessedRowsCostModel())
    assert result.completed
    with capsys.disabled():
        print(
            f"\nAblation: cost model flips DIS/FAC — processed-rows best: "
            f"{result.best.signature} (cost {result.best_cost:.0f})"
        )
    # Two surrogate keys survive: the paper's case 2 shape.
    assert _sk_count(result.best.workflow) == 2


def test_cache_aware_model_prefers_factorization(capsys):
    states = fig4_states(cardinality=8)
    model = CacheAwareCostModel(setup_cost=100.0)
    result = exhaustive_search(states["initial"], model)
    assert result.completed
    with capsys.disabled():
        print(
            f"Ablation: cost model flips DIS/FAC — cache-aware best:     "
            f"{result.best.signature} (cost {result.best_cost:.0f})"
        )
    # One factorized surrogate key: the paper's case 3 shape.
    assert _sk_count(result.best.workflow) == 1


def test_flip_threshold():
    """With a negligible setup cost the cache-aware model behaves like the
    plain model; the preference flips as priming gets expensive."""
    states = fig4_states(cardinality=8)
    cheap = exhaustive_search(states["initial"], CacheAwareCostModel(setup_cost=0.0))
    costly = exhaustive_search(states["initial"], CacheAwareCostModel(setup_cost=500.0))
    assert _sk_count(cheap.best.workflow) == 2
    assert _sk_count(costly.best.workflow) == 1


@pytest.mark.parametrize(
    "model_name,model",
    [
        ("processed_rows", ProcessedRowsCostModel()),
        ("cache_aware", CacheAwareCostModel(setup_cost=100.0)),
    ],
)
def test_bench_fig4_under_model(benchmark, model_name, model):
    states = fig4_states(cardinality=8)
    result = benchmark.pedantic(
        lambda: exhaustive_search(states["initial"], model),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["model"] = model_name
    benchmark.extra_info["best_cost"] = result.best_cost
    assert result.completed
