"""Fig. 4 — the DIS/FAC cost example.

Regenerates the figure's three costed designs and asserts the paper's
qualitative claim: both the distributed and the factorized design are
cheaper than the initial one.  EXPERIMENTS.md documents the known
discrepancy between the paper's c1/c3 arithmetic and its own formulas;
c2 = 32 matches exactly.

The timed portion measures the optimizer discovering the improvement from
the initial Fig. 4 state.
"""

from __future__ import annotations

import pytest

from repro.core.cost import ProcessedRowsCostModel, estimate
from repro.core.search import exhaustive_search
from repro.experiments import format_fig4, run_fig4
from repro.workloads import fig4_states


def test_fig4_report(benchmark, capsys):
    rows = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + format_fig4(rows))
    by_case = {row.case: row for row in rows}
    assert by_case["distributed"].cost_total < by_case["initial"].cost_total
    assert by_case["factorized"].cost_total < by_case["initial"].cost_total


def test_fig4_c2_matches_paper_exactly():
    by_case = {row.case: row for row in run_fig4()}
    # The paper's c2 = 2(n + (n/2)log2(n/2)) = 32 for n=8; with the union
    # cost excluded our model reproduces it exactly.
    assert by_case["distributed"].cost_without_union == pytest.approx(32.0)


def test_fig4_optimizer_reaches_best_case(benchmark):
    """ES started from the initial Fig. 4 state finds a design at least as
    cheap as the best hand-built case."""
    states = fig4_states(cardinality=8)
    model = ProcessedRowsCostModel()
    hand_built_best = min(
        estimate(wf, model).total for wf in states.values()
    )
    result = benchmark.pedantic(
        lambda: exhaustive_search(states["initial"], model),
        rounds=1,
        iterations=1,
    )
    assert result.completed
    assert result.best_cost <= hand_built_best + 1e-9
    benchmark.extra_info["best_cost"] = result.best_cost
    benchmark.extra_info["hand_built_best"] = hand_built_best


@pytest.mark.parametrize("scale", [8, 64, 1024])
def test_fig4_claim_holds_across_scales(scale):
    """DIS keeps beating the initial design as flows grow."""
    model = ProcessedRowsCostModel()
    states = fig4_states(cardinality=scale)
    costs = {name: estimate(wf, model).total for name, wf in states.items()}
    assert costs["distributed"] < costs["initial"]
    assert costs["factorized"] < costs["initial"]
