"""Physical planning: choose an implementation for every activity.

Given a logical workflow (typically the logical optimizer's output), the
physical planner walks the graph once, propagating cardinalities, and
picks the cheapest *feasible* implementation per activity under a memory
budget.  :class:`PhysicalCostModel` exposes the same choice as a
:class:`~repro.core.cost.model.CostModel`, so the *logical* search can
run directly against physical costs — logical and physical optimization
then interleave the way the paper's future-work section envisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.activity import Activity, CompositeActivity
from repro.core.cost.model import ProcessedRowsCostModel
from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow, Node
from repro.engine.batches import ExecutionBudget
from repro.engine.executor import iter_components
from repro.exceptions import ReproError
from repro.physical.implementations import (
    PhysicalImplementation,
    implementations_for,
)

__all__ = ["PhysicalPlan", "plan_physical", "PhysicalCostModel"]

#: Effectively-unbounded memory, in rows.
UNLIMITED_MEMORY = float("inf")


@dataclass(frozen=True)
class PhysicalPlan:
    """A physical implementation choice per activity, with its cost."""

    choices: dict[Activity, PhysicalImplementation]
    activity_costs: dict[Activity, float]
    memory_rows: float

    @property
    def total_cost(self) -> float:
        return sum(self.activity_costs.values())

    def implementation_of(self, activity: Activity) -> PhysicalImplementation:
        try:
            return self.choices[activity]
        except KeyError:
            raise ReproError(
                f"activity {activity.id} is not part of this physical plan"
            ) from None

    def describe(self) -> str:
        lines = [f"physical plan (memory budget: {self.memory_rows:g} rows)"]
        for activity in sorted(self.choices, key=lambda a: a.id):
            implementation = self.choices[activity]
            cost = self.activity_costs[activity]
            lines.append(
                f"  [{activity.id}] {activity.name:<28} -> "
                f"{implementation.name:<20} cost={cost:,.0f}"
            )
        lines.append(f"  total: {self.total_cost:,.0f}")
        return "\n".join(lines)


def _cheapest_feasible(
    activity: Activity, cards: tuple[float, ...], memory: float
) -> tuple[PhysicalImplementation, float]:
    best: tuple[PhysicalImplementation, float] | None = None
    for implementation in implementations_for(activity):
        if not implementation.feasible(activity, cards, memory):
            continue
        cost = implementation.cost(cards)
        if best is None or cost < best[1]:
            best = (implementation, cost)
    if best is None:
        raise ReproError(
            f"no feasible physical implementation for activity "
            f"{activity.id} ({activity.name}) under a memory budget of "
            f"{memory:g} rows"
        )
    return best


def plan_physical(
    workflow: ETLWorkflow,
    memory_rows: float = UNLIMITED_MEMORY,
    cardinality_model: ProcessedRowsCostModel | None = None,
    budget: ExecutionBudget | None = None,
) -> PhysicalPlan:
    """Pick the cheapest feasible implementation for every activity.

    Composite (merged) activities are planned component-wise; their plan
    entries are keyed by the components.

    An :class:`ExecutionBudget` may be passed instead of ``memory_rows``:
    its ``max_resident_rows`` becomes the planner's memory budget, so the
    same object that bounds the streaming engine also drives the
    feasibility split (hash join vs. nested loop, hash vs. sort
    aggregation) the engine's spill behaviour mirrors.
    """
    if budget is not None and budget.max_resident_rows is not None:
        memory_rows = float(budget.max_resident_rows)
    model = (
        cardinality_model
        if cardinality_model is not None
        else ProcessedRowsCostModel()
    )
    choices: dict[Activity, PhysicalImplementation] = {}
    costs: dict[Activity, float] = {}
    cards: dict[Node, float] = {}
    for node in workflow.topological_order():
        if isinstance(node, RecordSet):
            if node.is_source:
                cards[node] = node.cardinality
            else:
                cards[node] = cards[workflow.providers(node)[0]]
            continue
        input_cards = tuple(cards[p] for p in workflow.providers(node))
        if isinstance(node, CompositeActivity):
            card = input_cards[0]
            for component in iter_components(node):
                implementation, cost = _cheapest_feasible(
                    component, (card,), memory_rows
                )
                choices[component] = implementation
                costs[component] = cost
                card = model.output_cardinality(component, (card,))
            cards[node] = card
        else:
            implementation, cost = _cheapest_feasible(
                node, input_cards, memory_rows
            )
            choices[node] = implementation
            costs[node] = cost
            cards[node] = model.output_cardinality(node, input_cards)
    return PhysicalPlan(
        choices=choices, activity_costs=costs, memory_rows=memory_rows
    )


class PhysicalCostModel(ProcessedRowsCostModel):
    """A logical-search cost model that prices via physical planning.

    Each activity costs whatever its cheapest feasible implementation
    costs under the configured memory budget; cardinalities propagate as
    in the processed-rows model.  Running the logical optimizer with this
    model makes logical rewritings compete on *physical* cost — e.g. with
    plenty of memory, hash implementations make aggregation linear, so
    pushing filters below it buys less than the sort-based model claims.
    """

    def __init__(self, memory_rows: float = UNLIMITED_MEMORY):
        self.memory_rows = float(memory_rows)

    def activity_cost(
        self, activity: Activity, input_cards: tuple[float, ...]
    ) -> float:
        if isinstance(activity, CompositeActivity):
            return self._composite_cost(activity, input_cards)
        self._check_arity(activity, input_cards)
        _, cost = _cheapest_feasible(activity, input_cards, self.memory_rows)
        return cost
