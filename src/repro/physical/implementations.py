"""Physical operator implementations for the logical templates.

The paper closes with "the physical optimization of ETL workflows (i.e.,
taking physical operators and access methods into consideration)" as an
open issue (section 6).  This subpackage builds that layer on top of the
logical optimizer: every logical template has one or more *physical
implementations*, each with its own cost formula and feasibility
constraint (typically a memory bound for hash-based variants).

The catalogue is deliberately textbook-shaped (Graefe [8] is the paper's
reference for query evaluation techniques):

========================  ==========================================
logical template          physical implementations
========================  ==========================================
row-wise filters/functions  ``scan`` — n
surrogate_key             ``hash_lookup`` — n (lookup fits memory);
                          ``sorted_merge`` — n·log2 n
aggregation / distinct    ``hash`` — n (groups fit memory);
                          ``sort`` — n·log2 n
union                     ``concat`` — n1 + n2
join                      ``hash_join`` — n1+n2 (build side fits);
                          ``sort_merge_join`` — n1·log2 n1 + n2·log2 n2
difference/intersection   ``hash_anti`` — n1+n2 (right side fits);
                          ``sort_merge`` — n1·log2 n1 + n2·log2 n2
========================  ==========================================
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.activity import Activity
from repro.core.cost.formulas import nlogn
from repro.exceptions import ReproError

__all__ = ["PhysicalImplementation", "implementations_for", "CATALOGUE"]

CostFn = Callable[[tuple[float, ...]], float]
FeasibleFn = Callable[[Activity, tuple[float, ...], float], bool]


def _always(activity: Activity, cards: tuple[float, ...], memory: float) -> bool:
    return True


@dataclass(frozen=True)
class PhysicalImplementation:
    """One way to execute a logical activity.

    Attributes:
        name: implementation identifier, e.g. ``"hash_join"``.
        cost: invocation cost given input cardinalities.
        feasible: whether the implementation can run for the given
            activity/input sizes under a memory budget (in rows).
    """

    name: str
    cost: CostFn
    feasible: FeasibleFn = _always

    def __repr__(self) -> str:
        return f"PhysicalImplementation({self.name})"


def _scan_cost(cards: tuple[float, ...]) -> float:
    return float(cards[0])


def _sort_cost(cards: tuple[float, ...]) -> float:
    return nlogn(cards[0])


def _concat_cost(cards: tuple[float, ...]) -> float:
    return float(cards[0] + cards[1])


def _sort_merge_cost(cards: tuple[float, ...]) -> float:
    return nlogn(cards[0]) + nlogn(cards[1])


def _hash_fits_groups(
    activity: Activity, cards: tuple[float, ...], memory: float
) -> bool:
    """Hash aggregation/dedup holds one entry per output group."""
    groups = activity.selectivity * cards[0]
    return groups <= memory


def _hash_lookup_fits(
    activity: Activity, cards: tuple[float, ...], memory: float
) -> bool:
    """The surrogate-key lookup table must fit in memory.

    The table size is a property of the key domain, not the flow; we use
    the declared ``lookup_size`` parameter when present and otherwise
    assume it fits (the common warehouse case).
    """
    size = activity.params.get("lookup_size")
    return True if size is None else float(size) <= memory


def _hash_build_fits(
    activity: Activity, cards: tuple[float, ...], memory: float
) -> bool:
    """Hash join/anti-join builds on the smaller input."""
    return min(cards) <= memory


_SCAN = PhysicalImplementation("scan", _scan_cost)

CATALOGUE: dict[str, tuple[PhysicalImplementation, ...]] = {
    "selection": (_SCAN,),
    "not_null": (_SCAN,),
    "range_check": (_SCAN,),
    "pk_check": (_SCAN,),
    "projection": (_SCAN,),
    "function_apply": (_SCAN,),
    "surrogate_key": (
        PhysicalImplementation("hash_lookup", _scan_cost, _hash_lookup_fits),
        PhysicalImplementation("sorted_merge", _sort_cost),
    ),
    "aggregation": (
        PhysicalImplementation("hash_aggregate", _scan_cost, _hash_fits_groups),
        PhysicalImplementation("sort_aggregate", _sort_cost),
    ),
    "distinct": (
        PhysicalImplementation("hash_dedup", _scan_cost, _hash_fits_groups),
        PhysicalImplementation("sort_dedup", _sort_cost),
    ),
    "union": (PhysicalImplementation("concat", _concat_cost),),
    "join": (
        PhysicalImplementation("hash_join", _concat_cost, _hash_build_fits),
        PhysicalImplementation("sort_merge_join", _sort_merge_cost),
    ),
    "difference": (
        PhysicalImplementation("hash_anti_join", _concat_cost, _hash_build_fits),
        PhysicalImplementation("sort_merge_diff", _sort_merge_cost),
    ),
    "intersection": (
        PhysicalImplementation("hash_semi_join", _concat_cost, _hash_build_fits),
        PhysicalImplementation("sort_merge_intersect", _sort_merge_cost),
    ),
}


def implementations_for(activity: Activity) -> tuple[PhysicalImplementation, ...]:
    """The physical alternatives of one activity's template.

    Unknown (custom) templates fall back to a single scan implementation
    matching their declared cost shape — a safe default users override by
    extending :data:`CATALOGUE`.
    """
    found = CATALOGUE.get(activity.template.name)
    if found:
        return found
    from repro.templates.base import CostShape

    shape = activity.template.cost_shape
    if shape is CostShape.LINEAR:
        return (_SCAN,)
    if shape is CostShape.SORT:
        return (PhysicalImplementation("sort", _sort_cost),)
    if shape is CostShape.MERGE:
        return (PhysicalImplementation("concat", _concat_cost),)
    if shape is CostShape.SORT_MERGE:
        return (PhysicalImplementation("sort_merge", _sort_merge_cost),)
    raise ReproError(f"no physical implementation for {activity.template.name!r}")
