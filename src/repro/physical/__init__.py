"""Physical optimization layer (the paper's section 6 future work)."""

from repro.physical.implementations import (
    CATALOGUE,
    PhysicalImplementation,
    implementations_for,
)
from repro.physical.planner import (
    PhysicalCostModel,
    PhysicalPlan,
    plan_physical,
)

__all__ = [
    "PhysicalImplementation",
    "implementations_for",
    "CATALOGUE",
    "PhysicalPlan",
    "plan_physical",
    "PhysicalCostModel",
]
