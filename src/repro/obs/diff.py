"""Telemetry / benchmark diffing: the perf-trajectory regression gate.

``repro report CURRENT --compare BASELINE`` loads two files — telemetry
JSONL written by ``--telemetry`` or bench JSON written by the benchmark
scripts — flattens each into dotted-path numeric metrics, and compares the
shared metrics under per-metric threshold policies.  CI runs the
benchmarks in smoke mode and compares against the committed snapshots in
``benchmarks/baselines/``, so a PR that regresses a gated metric fails
with exit code 3 and the diff artifact attached (Liu's shared-caching ETL
lesson: cache and parallel wins only stay won when every run is compared
against a recorded baseline).

Policy design: wall-clock metrics (``*seconds``) are machine-dependent,
so they are *reported* but never *gated* — the gate rides on the
deterministic metrics: costs, visited-state volumes, resident-row peaks,
spill volumes, cache hits, and the boolean equivalence checks
(``identical_to_*``, ``within_budget``), which fail on any flip to
false.  Two wall-clock *ratios* are the exceptions: ``rows_per_second``
(the columnar engine's headline number, 10% threshold) and ``speedup``
(the parallel planes' headline — jobs=N search and shards=N streaming vs
serial, 20% threshold).  Ratios divide out most machine variation and CI
machines for this repo are homogeneous, so a drop beyond threshold
gates, protecting the fused-kernel and parallelism wins the same way
``visited_states`` protects the search pruning.  The warm-cache and
fast-path speedup twins stay informational: their wins are already gated
deterministically (``cache_hits``, ``identical_to_fast``) and their
denominators are ~10ms runs — pure jitter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.report import load_events, summarize

__all__ = [
    "MetricPolicy",
    "MetricDiff",
    "DiffReport",
    "DEFAULT_POLICIES",
    "DEFAULT_THRESHOLD_PCT",
    "flatten_metrics",
    "load_metrics",
    "compare_metrics",
    "compare_files",
]

DEFAULT_THRESHOLD_PCT = 10.0

#: Direction spellings — how a metric's growth is judged.
HIGHER_IS_WORSE = "higher_is_worse"
LOWER_IS_WORSE = "lower_is_worse"
INFO = "info"


@dataclass(frozen=True)
class MetricPolicy:
    """How one family of metrics (substring-matched) is compared."""

    pattern: str
    direction: str
    threshold_pct: float = DEFAULT_THRESHOLD_PCT

    def matches(self, metric: str) -> bool:
        return self.pattern in metric


#: First match wins; the trailing catch-all leaves unknown metrics
#: informational so new payload fields never break the gate by accident.
DEFAULT_POLICIES: tuple[MetricPolicy, ...] = (
    # Throughput is gated: the columnar engine's headline metric may not
    # drop more than 10% against the committed baseline (see module doc).
    MetricPolicy("rows_per_second", LOWER_IS_WORSE, DEFAULT_THRESHOLD_PCT),
    # Ratio twins whose wins are already gated deterministically (the
    # warm cache via cache_hits, the fast path via its identical flag):
    # their denominators are ~10ms runs, pure jitter — report only.
    MetricPolicy("warm_speedup", INFO),
    MetricPolicy("fast_speedup", INFO),
    # Parallelism's headline ratio (jobs=N search / shards=N streaming vs
    # serial): a sustained drop means the fan-out stopped paying — gate
    # it like rows_per_second, with a wider threshold because the smoke
    # runs are sub-second and the ratio jitters more than throughput.
    MetricPolicy("speedup", LOWER_IS_WORSE, 20.0),
    # Serving bench: wall-clock latency and throughput depend on the
    # host — report only.  Memo effectiveness is gated below instead
    # (the bench scripts its request mix, so hit rates are exact).
    MetricPolicy("latency", INFO),
    MetricPolicy("requests_per_second", INFO),
    # Recorder-on vs NULL_RECORDER cold-search delta (bench_parallel):
    # wall-clock noise on shared runners dwarfs the real overhead, so the
    # ratio is surfaced in `repro report --compare` but never gated.
    MetricPolicy("telemetry_overhead", INFO),
    # Machine-dependent: report, never gate.
    MetricPolicy("seconds", INFO),
    MetricPolicy("cpu_count", INFO),
    MetricPolicy("format_version", INFO),
    MetricPolicy("span_events", INFO),
    # Run-shape configuration, not outcomes.
    MetricPolicy("seed", INFO),
    MetricPolicy("jobs", INFO),
    MetricPolicy("batch_size", INFO),
    MetricPolicy("rows_per_source", INFO),
    MetricPolicy("total_source_rows", INFO),
    MetricPolicy("max_resident_rows", INFO),
    MetricPolicy("chain_length", INFO),
    MetricPolicy("activities", INFO),
    MetricPolicy("local_groups", INFO),
    # Boolean invariants: any flip to false is a regression.
    MetricPolicy("identical", LOWER_IS_WORSE, 0.0),
    MetricPolicy("within_budget", LOWER_IS_WORSE, 0.0),
    # Deterministic outcomes: the actual perf trajectory.
    MetricPolicy("best_cost", HIGHER_IS_WORSE),
    MetricPolicy("visited_states", HIGHER_IS_WORSE),
    MetricPolicy("peak_resident_rows", HIGHER_IS_WORSE),
    MetricPolicy("resident_rows", HIGHER_IS_WORSE),
    MetricPolicy("spilled_rows", HIGHER_IS_WORSE),
    MetricPolicy("lineage.steps", HIGHER_IS_WORSE),
    # Cache effectiveness: fewer hits is the regression.  The serve
    # bench's hit rates come from a scripted request mix, so any drop is
    # a real memo/cache-keying change, not noise.
    MetricPolicy("hit_rate", LOWER_IS_WORSE, 0.0),
    MetricPolicy("cache_hits", LOWER_IS_WORSE),
    MetricPolicy("outcome=hit", LOWER_IS_WORSE),
    MetricPolicy("merge_conflicts", HIGHER_IS_WORSE),
    # Telemetry counters measure work done; doing more of it is worse.
    MetricPolicy("counters.", HIGHER_IS_WORSE),
    # Everything else (span timing aggregates, gauges, new fields).
    MetricPolicy("", INFO),
)


def _policy_for(
    metric: str, policies: Iterable[MetricPolicy]
) -> MetricPolicy:
    for policy in policies:
        if policy.matches(metric):
            return policy
    return MetricPolicy("", INFO)


def flatten_metrics(payload: Any, prefix: str = "") -> dict[str, float]:
    """Flatten nested JSON into dotted-path numeric metrics.

    Booleans become 1/0 (so invariant flags gate like any other metric);
    strings and nulls are dropped — they carry no magnitude to compare.
    """
    metrics: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            metrics.update(flatten_metrics(value, path))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            metrics.update(flatten_metrics(value, f"{prefix}[{index}]"))
    elif isinstance(payload, bool):
        metrics[prefix] = 1.0 if payload else 0.0
    elif isinstance(payload, (int, float)):
        metrics[prefix] = float(payload)
    return metrics


def load_metrics(path: str) -> dict[str, float]:
    """Load a telemetry JSONL or bench/summary JSON file as flat metrics.

    Telemetry files (JSON-lines led by a ``{"type": "meta", ...}`` record)
    are aggregated through :func:`repro.obs.report.summarize` first, so a
    raw span stream and an embedded ``"telemetry"`` summary compare on the
    same metric paths.
    """
    with open(path, encoding="utf-8") as handle:
        head = ""
        for line in handle:
            if line.strip():
                head = line.strip()
                break
    is_jsonl = False
    try:
        first = json.loads(head) if head else None
        is_jsonl = isinstance(first, dict) and first.get("type") == "meta"
    except ValueError:
        is_jsonl = False
    if is_jsonl:
        return flatten_metrics(summarize(load_events(path)))
    with open(path, encoding="utf-8") as handle:
        return flatten_metrics(json.load(handle))


@dataclass(frozen=True)
class MetricDiff:
    """One metric's comparison outcome."""

    metric: str
    baseline: float | None
    current: float | None
    delta_pct: float | None
    direction: str
    threshold_pct: float
    status: str  # ok | improved | regressed | added | removed | info

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "delta_pct": self.delta_pct,
            "direction": self.direction,
            "threshold_pct": self.threshold_pct,
            "status": self.status,
        }


@dataclass
class DiffReport:
    """All compared metrics plus the verdict the CI gate acts on."""

    baseline_path: str
    current_path: str
    rows: list[MetricDiff] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDiff]:
        return [row for row in self.rows if row.status == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "baseline": self.baseline_path,
            "current": self.current_path,
            "ok": self.ok,
            "regressions": [row.metric for row in self.regressions],
            "rows": [row.to_dict() for row in self.rows],
        }

    def render(self, include_info: bool = False) -> str:
        """Fixed-width table; gated rows always, info rows on request."""
        rows = [
            row
            for row in self.rows
            if include_info or row.status != "info"
        ]
        lines = [
            f"baseline: {self.baseline_path}",
            f"current : {self.current_path}",
        ]
        if rows:
            width = max(max(len(r.metric) for r in rows), len("metric"))
            lines.append(
                f"{'metric':<{width}}  {'baseline':>14}  {'current':>14}  "
                f"{'delta %':>9}  status"
            )
            for row in rows:
                base = "—" if row.baseline is None else f"{row.baseline:,.4g}"
                cur = "—" if row.current is None else f"{row.current:,.4g}"
                delta = (
                    "—" if row.delta_pct is None else f"{row.delta_pct:+.1f}"
                )
                lines.append(
                    f"{row.metric:<{width}}  {base:>14}  {cur:>14}  "
                    f"{delta:>9}  {row.status}"
                )
        else:
            lines.append("no gated metrics in common")
        verdict = (
            "no regressions"
            if self.ok
            else f"{len(self.regressions)} regression(s)"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _diff_one(
    metric: str,
    baseline: float,
    current: float,
    policy: MetricPolicy,
    fail_threshold: float | None,
) -> MetricDiff:
    if baseline == 0.0:
        delta_pct = 0.0 if current == 0.0 else (100.0 if current > 0 else -100.0)
    else:
        delta_pct = 100.0 * (current - baseline) / abs(baseline)
    threshold = (
        fail_threshold
        if fail_threshold is not None and policy.direction != INFO
        else policy.threshold_pct
    )
    if policy.direction == INFO:
        status = "info"
    else:
        worse = delta_pct if policy.direction == HIGHER_IS_WORSE else -delta_pct
        if worse > threshold:
            status = "regressed"
        elif worse < -threshold and delta_pct != 0.0:
            status = "improved"
        else:
            status = "ok"
    return MetricDiff(
        metric=metric,
        baseline=baseline,
        current=current,
        delta_pct=round(delta_pct, 4),
        direction=policy.direction,
        threshold_pct=threshold,
        status=status,
    )


def compare_metrics(
    baseline: dict[str, float],
    current: dict[str, float],
    policies: Iterable[MetricPolicy] = DEFAULT_POLICIES,
    fail_threshold: float | None = None,
    baseline_path: str = "<baseline>",
    current_path: str = "<current>",
) -> DiffReport:
    """Compare two flat metric dicts under the policy table.

    ``fail_threshold`` (the ``--fail-on-regress PCT`` spelling) overrides
    every gated policy's threshold; zero-threshold boolean invariants stay
    strict because a flipped flag exceeds any percentage.
    """
    policies = tuple(policies)
    report = DiffReport(baseline_path=baseline_path, current_path=current_path)
    for metric in sorted(set(baseline) | set(current)):
        in_base = metric in baseline
        in_cur = metric in current
        policy = _policy_for(metric, policies)
        if in_base and in_cur:
            report.rows.append(
                _diff_one(
                    metric, baseline[metric], current[metric], policy,
                    fail_threshold,
                )
            )
        else:
            report.rows.append(
                MetricDiff(
                    metric=metric,
                    baseline=baseline.get(metric),
                    current=current.get(metric),
                    delta_pct=None,
                    direction=policy.direction,
                    threshold_pct=policy.threshold_pct,
                    status="removed" if in_base else "added",
                )
            )
    return report


def compare_files(
    baseline_path: str,
    current_path: str,
    policies: Iterable[MetricPolicy] = DEFAULT_POLICIES,
    fail_threshold: float | None = None,
) -> DiffReport:
    """Load and compare two telemetry/bench files (see :func:`load_metrics`)."""
    return compare_metrics(
        load_metrics(baseline_path),
        load_metrics(current_path),
        policies=policies,
        fail_threshold=fail_threshold,
        baseline_path=baseline_path,
        current_path=current_path,
    )
