"""``repro top``: a live one-screen summary of a running serve daemon.

The renderer is pure — ``status`` + ``stats`` dicts in (as returned by
the daemon's protocol ops), text out — so tests exercise it without a
terminal.  :func:`run_top` is the thin polling loop the CLI drives: it
re-polls ``status``/``stats`` every ``interval`` seconds and derives
req/s from the counter delta between polls (first poll falls back to
lifetime totals over uptime).

Latency percentiles come from the ``histograms`` section of ``stats``
(daemon-side :class:`~repro.obs.telemetry.Histogram` summaries), so the
screen shows live p50/p90/p99 without scraping or re-parsing the
Prometheus exposition.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["render_top", "render_exemplars", "run_top"]

#: Histogram labels surfaced on the screen, in display order.
_LATENCY_ROWS = (
    "serve.request_latency_seconds",
    "serve.queue_wait_seconds",
    "serve.search_seconds",
    "serve.memo_lookup_seconds",
    "search.transposition_lookup_seconds",
)


def _requests_per_second(
    stats: dict[str, Any],
    previous: dict[str, Any] | None,
    elapsed: float | None,
    uptime: float,
) -> float:
    counters = stats.get("counters", {})
    total = sum(
        value
        for key, value in counters.items()
        if key.startswith("serve.requests")
    )
    if previous is not None and elapsed and elapsed > 0:
        before = sum(
            value
            for key, value in previous.get("counters", {}).items()
            if key.startswith("serve.requests")
        )
        return max(0.0, (total - before) / elapsed)
    return total / uptime if uptime > 0 else 0.0


def _ms(value: Any) -> str:
    if value is None:
        return f"{'—':>9}"
    return f"{1000 * float(value):>9.2f}"


def render_top(
    status: dict[str, Any],
    stats: dict[str, Any],
    previous: dict[str, Any] | None = None,
    elapsed: float | None = None,
) -> str:
    """Render one screenful from a daemon's ``status`` and ``stats``."""
    uptime = float(status.get("uptime_seconds", 0.0))
    queue = status.get("queue", {})
    memo = stats.get("memo", {})
    transposition = stats.get("transposition", {})
    counters = stats.get("counters", {})
    rate = _requests_per_second(stats, previous, elapsed, uptime)
    total_requests = sum(
        value
        for key, value in counters.items()
        if key.startswith("serve.requests")
    )
    errors = counters.get("serve.errors", 0)
    rejected = queue.get("rejected_full", 0) + queue.get("rejected_tenant", 0)
    lines = [
        (
            f"repro serve · pid {status.get('pid', '?')} · "
            f"up {uptime:.0f}s · workers {status.get('workers', '?')} · "
            f"max_jobs {status.get('max_jobs', '?')}"
        ),
        (
            f"requests: {total_requests} total · {rate:.2f} req/s · "
            f"errors {errors}"
        ),
        (
            f"queue: depth {queue.get('depth', 0)}/"
            f"{queue.get('capacity', 0)} · "
            f"admitted {queue.get('admitted', 0)} · rejected {rejected} "
            f"(full {queue.get('rejected_full', 0)}, "
            f"tenant {queue.get('rejected_tenant', 0)})"
        ),
        (
            f"memo: {memo.get('entries', 0)}/{memo.get('capacity', 0)} "
            f"entries · hit rate {100 * memo.get('hit_rate', 0.0):.1f}% · "
            f"transposition hit rate "
            f"{100 * transposition.get('hit_rate', 0.0):.1f}%"
        ),
    ]
    inflight = stats.get("queue", {}).get("inflight", {})
    tenants = stats.get("tenants", {})
    if tenants or inflight:
        cells = [
            f"{tenant}={inflight.get(tenant, 0)}/{tenants.get(tenant, 0)}"
            for tenant in sorted(set(tenants) | set(inflight))
        ]
        lines.append(
            "tenants (inflight/requests): " + "  ".join(cells)
        )
    histograms = stats.get("histograms", {})
    if histograms:
        width = max(len(label) for label in _LATENCY_ROWS)
        lines.append("")
        lines.append(
            f"{'latency':<{width}}  {'count':>7}  {'p50 ms':>9}  "
            f"{'p90 ms':>9}  {'p99 ms':>9}"
        )
        for label in _LATENCY_ROWS:
            row = histograms.get(label)
            if row is None:
                continue
            lines.append(
                f"{label:<{width}}  {row.get('count', 0):>7}  "
                f"{_ms(row.get('p50'))}  {_ms(row.get('p90'))}  "
                f"{_ms(row.get('p99'))}"
            )
    return "\n".join(lines)


def render_exemplars(snapshot: dict[str, Any]) -> str:
    """Render an ``exemplars`` op snapshot as two short tables."""
    lines: list[str] = []
    for section, title in (("slowest", "slowest"), ("failed", "failed")):
        entries = snapshot.get(section, [])
        lines.append(f"{title} requests ({len(entries)}):")
        if not entries:
            lines.append("  (none)")
            continue
        for entry in entries:
            latency = 1000 * float(entry.get("latency_seconds", 0.0))
            queued = 1000 * float(entry.get("queued_seconds", 0.0))
            spans = len(entry.get("spans", []))
            outcome = (
                "ok" if entry.get("ok") else entry.get("code", "failed")
            )
            lines.append(
                f"  {entry.get('trace_id', '?'):<18} "
                f"{entry.get('tenant', '?'):<10} "
                f"{entry.get('algorithm', '?'):<10} "
                f"{latency:>9.2f}ms  queued {queued:>8.2f}ms  "
                f"{spans:>4} spans  {outcome}"
            )
    return "\n".join(lines)


def run_top(
    client: Any,
    interval: float = 2.0,
    iterations: int = 0,
    show_exemplars: bool = False,
    clear: bool = False,
    write: Callable[[str], None] = print,
) -> int:
    """Poll ``client`` and render screens; returns the screens rendered.

    ``iterations=0`` polls forever (until interrupted); tests and smoke
    jobs pass ``iterations=1`` for a single deterministic screen.
    """
    previous: dict[str, Any] | None = None
    previous_at: float | None = None
    rendered = 0
    while True:
        status = client.status()
        stats = client.stats()
        now = time.monotonic()
        elapsed = now - previous_at if previous_at is not None else None
        screen = render_top(status, stats, previous=previous, elapsed=elapsed)
        if show_exemplars:
            screen = f"{screen}\n\n{render_exemplars(client.exemplars())}"
        write(("\x1b[2J\x1b[H" + screen) if clear else screen)
        rendered += 1
        previous, previous_at = stats, now
        if iterations and rendered >= iterations:
            return rendered
        time.sleep(interval)
