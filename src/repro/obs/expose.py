"""Prometheus text-format exposition for recorder event streams.

:func:`render_prometheus` turns the JSON-able event list produced by
:meth:`~repro.obs.telemetry.Recorder.events` into the Prometheus text
exposition format (``text/plain; version=0.0.4``): counters become
``<name>_total``, gauges keep their name (with a ``_max`` twin for the
high-water mark), and log2-bucketed :class:`~repro.obs.telemetry.Histogram`
events become cumulative ``_bucket{le="..."}`` series plus ``_sum`` /
``_count``, which is exactly what a scraper needs to compute quantiles
server-side.

The renderer is pure (events in, text out) so the serve daemon, tests,
and offline tools can all share it; the daemon serves the result both
over the line-JSON protocol (``metrics`` op) and over a plain-HTTP
``GET /metrics`` endpoint (``--metrics-port``).  Stdlib only.
"""

from __future__ import annotations

import re
from typing import Any

__all__ = [
    "CONTENT_TYPE",
    "render_prometheus",
]

#: The content type Prometheus scrapers expect for text exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str) -> str:
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return f"{prefix}{sanitized}"


def _label_name(name: str) -> str:
    sanitized = _LABEL_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(tags: dict[str, Any], extra: dict[str, str] | None = None) -> str:
    pairs = {_label_name(k): _escape_label(v) for k, v in sorted(tags.items())}
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    rendered = ",".join(f'{k}="{v}"' for k, v in pairs.items())
    return f"{{{rendered}}}"


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    events: list[dict[str, Any]], prefix: str = "repro_"
) -> str:
    """Render counter/gauge/histogram events as Prometheus exposition text.

    Span and structured events are skipped — they belong to the tracing
    plane, not the metrics plane.  Duplicate (name, tags) series (e.g.
    events pooled from several recorders) are aggregated: counter values
    and histogram buckets sum, gauges keep the last value / overall max.
    """
    counters: dict[tuple[str, str], float] = {}
    gauges: dict[tuple[str, str], tuple[float | None, float | None]] = {}
    histograms: dict[tuple[str, str], dict[str, Any]] = {}
    kinds: dict[str, str] = {}

    for event in events:
        kind = event.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            continue
        name = _metric_name(event.get("name", ""), prefix)
        tags = event.get("tags") or {}
        labels = _labels(tags)
        key = (name, labels)
        if kind == "counter":
            kinds.setdefault(name, "counter")
            counters[key] = counters.get(key, 0.0) + float(
                event.get("value", 0) or 0
            )
        elif kind == "gauge":
            kinds.setdefault(name, "gauge")
            last, peak = gauges.get(key, (None, None))
            value = event.get("value")
            maximum = event.get("max")
            if value is not None:
                last = float(value)
            if maximum is not None:
                peak = (
                    float(maximum)
                    if peak is None
                    else max(peak, float(maximum))
                )
            gauges[key] = (last, peak)
        else:
            kinds.setdefault(name, "histogram")
            merged = histograms.setdefault(
                key, {"count": 0, "sum": 0.0, "zero": 0, "buckets": {}}
            )
            merged["count"] += int(event.get("count", 0))
            merged["sum"] += float(event.get("sum", 0.0))
            merged["zero"] += int(event.get("zero", 0))
            for index, bucket_count in (event.get("buckets") or {}).items():
                bucket = int(index)
                merged["buckets"][bucket] = merged["buckets"].get(
                    bucket, 0
                ) + int(bucket_count)

    lines: list[str] = []
    emitted_type: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in emitted_type:
            lines.append(f"# TYPE {name} {kind}")
            emitted_type.add(name)

    for (name, labels), value in sorted(counters.items()):
        type_line(f"{name}_total", "counter")
        lines.append(f"{name}_total{labels} {_format_value(value)}")

    for (name, labels), (last, peak) in sorted(gauges.items()):
        type_line(name, "gauge")
        lines.append(f"{name}{labels} {_format_value(last)}")
        if peak is not None:
            type_line(f"{name}_max", "gauge")
            lines.append(f"{name}_max{labels} {_format_value(peak)}")

    for (name, labels), merged in sorted(histograms.items()):
        type_line(name, "histogram")
        tags_only = labels[1:-1] if labels else ""
        cumulative = merged["zero"]
        series: list[tuple[str, int]] = []
        if merged["zero"]:
            series.append(("0", cumulative))
        for index in sorted(merged["buckets"]):
            cumulative += merged["buckets"][index]
            series.append((_format_value(2.0**index), cumulative))
        for upper, count in series:
            le = f'le="{upper}"'
            joined = f"{tags_only},{le}" if tags_only else le
            lines.append(f"{name}_bucket{{{joined}}} {count}")
        inf = 'le="+Inf"'
        joined = f"{tags_only},{inf}" if tags_only else inf
        lines.append(f"{name}_bucket{{{joined}}} {merged['count']}")
        lines.append(f"{name}_sum{labels} {_format_value(merged['sum'])}")
        lines.append(f"{name}_count{labels} {merged['count']}")

    return "\n".join(lines) + "\n" if lines else ""
