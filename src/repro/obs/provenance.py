"""Optimizer provenance: the decision log and the replayable lineage.

The paper's whole contribution is *which transition sequence* (SWA / FAC /
DIS / MER / SPL) turns the initial workflow into the minimum-cost one, yet
a bare :class:`~repro.core.search.result.OptimizationResult` only reports
the endpoint.  This module closes that gap from two sides:

* **The decision log** — :func:`record_transition` emits one structured
  telemetry event per *considered* transition (kind, target nodes, cost
  before/after, accepted/rejected plus the rejection reason) through the
  active :class:`~repro.obs.telemetry.Recorder`.  All four algorithms call
  it; worker-side events ship back through the existing result-merge path,
  so one JSONL file holds the whole search's reasoning regardless of
  ``jobs``.
* **The lineage** — every :class:`~repro.core.search.state.SearchState`
  carries the chain of :class:`~repro.core.search.state.LineageStep`\\ s
  that produced it, and ``OptimizationResult.lineage`` exposes the winning
  chain.  :func:`replay_lineage` re-applies that chain through the real
  transition system (descriptions name concrete node ids, so the replay is
  exact) and :func:`verify_lineage` asserts the replay lands on the
  reported best state — turning the provenance from a claim into a proof.

Kougka et al.'s survey of data-centric workflow optimization singles out
provenance of rewrite decisions as the layer most optimizers drop; this is
that layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.cost.estimator import estimate
from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.signature import state_signature
from repro.core.transitions.base import Transition
from repro.core.transitions.factorize import Distribute, Factorize
from repro.core.transitions.merge import Merge, Split
from repro.core.transitions.swap import Swap
from repro.core.workflow import ETLWorkflow
from repro.exceptions import ReproError
from repro.obs.telemetry import get_recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at call sites: repro.core.search's package __init__
    # pulls the algorithm modules, which import this module — a top-level
    # import here would close that cycle during ``import repro.obs``.
    from repro.core.search.state import LineageStep

__all__ = [
    "TRANSITION_EVENT",
    "LineageReplay",
    "LineageMismatch",
    "record_transition",
    "rejection_reason",
    "transition_targets",
    "build_transition",
    "parse_transition",
    "replay_lineage",
    "verify_lineage",
    "lineage_mix",
]

#: Event name of one considered-transition record in the telemetry stream.
TRANSITION_EVENT = "search.transition"


class LineageMismatch(ReproError):
    """A lineage replay did not reproduce the recorded best state."""


def transition_targets(transition: Transition) -> tuple[str, ...]:
    """The node ids a transition is bound to (its provenance targets).

    Unlike ``affected_nodes()`` — which is only complete after ``rewire``
    ran — the bound targets are known before application, so rejected
    transitions carry them too.
    """
    if isinstance(transition, Swap):
        return (transition.first.id, transition.second.id)
    if isinstance(transition, Factorize):
        return (transition.binary.id, transition.first.id, transition.second.id)
    if isinstance(transition, Distribute):
        return (transition.binary.id, transition.activity.id)
    if isinstance(transition, Merge):
        return (transition.first.id, transition.second.id)
    if isinstance(transition, Split):
        return (transition.merged.id,)
    return ()


def rejection_reason(
    transition: Transition, workflow: ETLWorkflow
) -> str | None:
    """The diagnostic a rejected transition would raise, or ``None`` when
    telemetry is off (the re-application that harvests the message is only
    worth paying for a recorded event)."""
    if not get_recorder().active:
        return None
    try:
        transition.apply(workflow)
    except ReproError as exc:
        return str(exc)
    return "applicable (raced)"  # pragma: no cover - defensive


def record_transition(
    *,
    algorithm: str,
    transition: Transition,
    cost_before: float | None,
    cost_after: float | None = None,
    accepted: bool,
    reason: str | None = None,
    counter_outcome: str | None = None,
) -> None:
    """Record one considered transition: aggregate counter + decision event.

    The counter keeps the PR-4 ``search.transitions`` aggregate intact
    (``outcome`` defaults to applied/rejected by acceptance, but e.g. SA
    distinguishes Metropolis rejections via ``counter_outcome``); the
    event carries the full decision — targets, both costs, and the reason
    a rejected transition was turned down.  A no-op when telemetry is off.
    """
    recorder = get_recorder()
    if not recorder.active:
        return
    outcome = counter_outcome or ("applied" if accepted else "rejected")
    recorder.counter(
        "search.transitions", mnemonic=transition.mnemonic, outcome=outcome
    ).add()
    recorder.record_event(
        TRANSITION_EVENT,
        algorithm=algorithm,
        mnemonic=transition.mnemonic,
        transition=transition.describe(),
        targets=list(transition_targets(transition)),
        cost_before=cost_before,
        cost_after=cost_after,
        accepted=accepted,
        reason=reason,
    )


# -- lineage replay ----------------------------------------------------------------


def build_transition(
    workflow: ETLWorkflow, mnemonic: str, targets: tuple[str, ...]
) -> Transition:
    """Rebuild a transition from its structured ``(mnemonic, targets)``
    payload against a state.

    The targets are the ids :func:`transition_targets` recorded at
    application time, carried verbatim — no string parsing — so a replay
    binds exactly even when node ids contain ``,``/``(``/``)``.  Raises
    :class:`~repro.exceptions.ReproError` when the payload shape is
    unrecognized or a target id is absent from ``workflow``.
    """
    ids = tuple(str(target) for target in targets)
    try:
        if mnemonic == "SWA" and len(ids) == 2:
            return Swap(
                workflow.node_by_id(ids[0]), workflow.node_by_id(ids[1])
            )
        if mnemonic == "FAC" and len(ids) == 3:
            return Factorize(
                workflow.node_by_id(ids[0]),
                workflow.node_by_id(ids[1]),
                workflow.node_by_id(ids[2]),
            )
        if mnemonic == "DIS" and len(ids) == 2:
            return Distribute(
                workflow.node_by_id(ids[0]), workflow.node_by_id(ids[1])
            )
        if mnemonic == "MER" and len(ids) == 2:
            return Merge(
                workflow.node_by_id(ids[0]), workflow.node_by_id(ids[1])
            )
        if mnemonic == "SPL" and len(ids) == 1:
            return Split(workflow.node_by_id(ids[0]))
    except ReproError as exc:
        raise ReproError(
            f"lineage step {mnemonic}{ids!r} does not bind: {exc}"
        ) from exc
    raise ReproError(
        f"unrecognized transition payload {mnemonic!r} with "
        f"{len(ids)} target(s)"
    )


def parse_transition(workflow: ETLWorkflow, description: str) -> Transition:
    """Rebuild a transition from its ``describe()`` string against a state.

    **Legacy fallback**: structured lineage steps carry their bound node
    ids directly (see :func:`build_transition`); this parser exists only
    for pre-structured serialized lineages (raw strings, old step dicts).
    It assumes node ids free of ``,``/``(``/``)`` — ids containing those
    characters misparse here, which is exactly why the structured payload
    is the primary path.  Raises :class:`~repro.exceptions.ReproError`
    when the description is malformed or names nodes absent from
    ``workflow``.
    """
    head, _, rest = description.partition("(")
    if not rest.endswith(")"):
        raise ReproError(f"malformed transition description {description!r}")
    args = [part.strip() for part in rest[:-1].split(",")]
    mnemonic = head.strip()
    try:
        if mnemonic == "SWA" and len(args) == 2:
            return Swap(
                workflow.node_by_id(args[0]), workflow.node_by_id(args[1])
            )
        if mnemonic == "FAC" and len(args) == 3:
            return Factorize(
                workflow.node_by_id(args[0]),
                workflow.node_by_id(args[1]),
                workflow.node_by_id(args[2]),
            )
        if mnemonic == "DIS" and len(args) == 2:
            return Distribute(
                workflow.node_by_id(args[0]), workflow.node_by_id(args[1])
            )
        if mnemonic == "MER" and len(args) == 3:
            # describe() renders MER(a1+a2, a1, a2): the trailing two args
            # are the components, the first is the composite-to-be.
            return Merge(
                workflow.node_by_id(args[1]), workflow.node_by_id(args[2])
            )
        if mnemonic == "SPL" and len(args) == 1:
            return Split(workflow.node_by_id(args[0]))
    except ReproError as exc:
        raise ReproError(
            f"lineage step {description!r} does not bind: {exc}"
        ) from exc
    raise ReproError(f"unrecognized transition description {description!r}")


def _step_description(step: "LineageStep | dict | str") -> str:
    if isinstance(step, dict):
        return str(step["transition"])
    transition = getattr(step, "transition", None)  # LineageStep duck-type
    if isinstance(transition, str):
        return transition
    return str(step)


def _step_payload(
    step: "LineageStep | dict | str",
) -> tuple[str, tuple[str, ...]] | None:
    """The structured ``(mnemonic, targets)`` of a step, if it carries one.

    ``None`` (raw strings, legacy dicts/steps without targets) sends the
    step down the string-parsing fallback.
    """
    if isinstance(step, dict):
        mnemonic, targets = step.get("mnemonic"), step.get("targets")
    else:
        mnemonic = getattr(step, "mnemonic", None)
        targets = getattr(step, "targets", None)
    if isinstance(mnemonic, str) and targets:
        return mnemonic, tuple(str(target) for target in targets)
    return None


@dataclass(frozen=True)
class LineageReplay:
    """Outcome of replaying a lineage from an initial workflow."""

    workflow: ETLWorkflow
    signature: str
    cost: float
    initial_cost: float
    #: The replayed chain with freshly estimated per-step costs.
    steps: tuple["LineageStep", ...]

    @property
    def cost_deltas(self) -> tuple[float, ...]:
        """Per-step cost change (negative = the step reduced the cost)."""
        deltas: list[float] = []
        previous = self.initial_cost
        for step in self.steps:
            deltas.append(step.cost_after - previous)
            previous = step.cost_after
        return tuple(deltas)


def replay_lineage(
    workflow: ETLWorkflow,
    lineage,
    model: CostModel | None = None,
) -> LineageReplay:
    """Re-apply a recorded lineage through the transition system.

    Args:
        workflow: the initial state ``S0`` (not mutated).
        lineage: an iterable of :class:`LineageStep`, step dicts, or raw
            description strings (the three serialized forms).
        model: cost model for the per-step re-estimates (defaults to the
            paper's processed-rows model).

    Raises:
        ReproError: when a step fails to parse or to apply — a lineage
            that does not replay is corrupt provenance, never a soft miss.
    """
    from repro.core.search.state import LineageStep

    model = model if model is not None else ProcessedRowsCostModel()
    current = workflow.copy()
    current.validate()
    current.propagate_schemas()
    initial_cost = estimate(current, model).total
    steps: list[LineageStep] = []
    for raw in lineage:
        payload = _step_payload(raw)
        if payload is not None:
            transition = build_transition(current, *payload)
        else:
            transition = parse_transition(current, _step_description(raw))
        current = transition.apply(current)
        steps.append(
            LineageStep(
                mnemonic=transition.mnemonic,
                transition=transition.describe(),
                cost_after=estimate(current, model).total,
                targets=transition_targets(transition),
            )
        )
    final_cost = steps[-1].cost_after if steps else initial_cost
    return LineageReplay(
        workflow=current,
        signature=state_signature(current),
        cost=final_cost,
        initial_cost=initial_cost,
        steps=tuple(steps),
    )


def verify_lineage(result, model: CostModel | None = None) -> LineageReplay:
    """Replay ``result.lineage`` from ``result.initial`` and check it lands
    on the reported best state.

    Returns the replay on success; raises :class:`LineageMismatch` when
    the final signature diverges or the replayed cost disagrees with
    ``best_cost`` beyond float-replay tolerance (incremental estimates may
    differ from a full re-estimate in the last ulp).
    """
    replay = replay_lineage(result.initial.workflow, result.lineage, model)
    if replay.signature != result.best.signature:
        raise LineageMismatch(
            f"lineage replay reached state {replay.signature[:16]}..., "
            f"but the result reports best {result.best.signature[:16]}..."
        )
    best_cost = result.best_cost
    scale = max(abs(best_cost), abs(replay.cost), 1.0)
    if abs(replay.cost - best_cost) > 1e-6 * scale:
        raise LineageMismatch(
            f"lineage replay cost {replay.cost!r} disagrees with the "
            f"reported best cost {best_cost!r}"
        )
    return replay


def lineage_mix(lineage) -> dict[str, int]:
    """Transition-mix counters of any serialized lineage form."""
    counts: dict[str, int] = {}
    for raw in lineage:
        if isinstance(raw, dict):
            mnemonic = str(raw.get("mnemonic", ""))
        else:
            found = getattr(raw, "mnemonic", None)  # LineageStep duck-type
            mnemonic = (
                found if isinstance(found, str) else str(raw).partition("(")[0]
            )
        counts[mnemonic] = counts.get(mnemonic, 0) + 1
    return dict(sorted(counts.items()))
