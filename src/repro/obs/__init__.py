"""Observability: structured telemetry for search, engine, and fuzz runs.

The subsystem has two halves:

* :mod:`repro.obs.telemetry` — :class:`Span` / :class:`Counter` /
  :class:`Gauge` primitives, the thread- and process-safe
  :class:`Recorder`, and the process-wide active-recorder slot
  (:func:`get_recorder` / :func:`use_recorder`) instrumented call sites
  read from;
* :mod:`repro.obs.report` — aggregation of a recorded JSONL file into
  the per-phase / per-operator summary ``repro report`` renders and the
  benchmarks embed.

Telemetry is opt-in: until a :class:`Recorder` is installed, every
instrumented call site talks to the :data:`NULL_RECORDER` and the
overhead is a few attribute lookups.  Enabling it never changes any
optimizer or engine *output* — parallel runs ship their span buffers back
alongside their results, so ``jobs=N`` stays byte-identical to serial.
"""

from repro.obs.report import load_events, render_summary, summarize
from repro.obs.telemetry import (
    FORMAT_VERSION,
    NULL_RECORDER,
    Counter,
    Gauge,
    Recorder,
    Span,
    get_recorder,
    set_recorder,
    use_recorder,
)

__all__ = [
    "FORMAT_VERSION",
    "NULL_RECORDER",
    "Counter",
    "Gauge",
    "Recorder",
    "Span",
    "get_recorder",
    "load_events",
    "render_summary",
    "set_recorder",
    "summarize",
    "use_recorder",
]
