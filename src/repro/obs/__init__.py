"""Observability: telemetry, provenance, reporting, and regression diffing.

The subsystem has four layers:

* :mod:`repro.obs.telemetry` — :class:`Span` / :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` primitives, structured events,
  request-scoped trace stamping (:meth:`Recorder.trace`), the thread-
  and process-safe :class:`Recorder`, and the process-wide
  active-recorder slot (:func:`get_recorder` / :func:`use_recorder`)
  instrumented call sites read from;
* :mod:`repro.obs.expose` — the Prometheus text-format renderer behind
  the serve daemon's ``metrics`` op and ``--metrics-port`` endpoint;
* :mod:`repro.obs.top` — the ``repro top`` live-summary renderer and
  polling loop over a running daemon's ``status``/``stats`` ops;
* :mod:`repro.obs.provenance` — the optimizer decision log (one
  structured event per *considered* transition) and the replayable
  lineage: :func:`replay_lineage` / :func:`verify_lineage` re-apply a
  result's winning transition chain through the real transition system
  and prove it lands on the reported best state;
* :mod:`repro.obs.report` — aggregation of a recorded JSONL file into
  the per-phase / per-operator summary ``repro report`` renders and the
  benchmarks embed;
* :mod:`repro.obs.diff` — the regression gate: compares two telemetry /
  bench files metric-by-metric under per-metric threshold policies
  (``repro report --compare BASELINE``, exit 3 on regression).

Telemetry is opt-in: until a :class:`Recorder` is installed, every
instrumented call site talks to the :data:`NULL_RECORDER` and the
overhead is a few attribute lookups.  Enabling it never changes any
optimizer or engine *output* — parallel runs ship their span buffers back
alongside their results, so ``jobs=N`` stays byte-identical to serial.
"""

from repro.obs.telemetry import (
    FORMAT_VERSION,
    NULL_RECORDER,
    Counter,
    Gauge,
    Histogram,
    Recorder,
    Span,
    get_recorder,
    new_trace_id,
    set_recorder,
    use_recorder,
)
from repro.obs.expose import CONTENT_TYPE, render_prometheus
from repro.obs.diff import (
    DEFAULT_POLICIES,
    DiffReport,
    MetricDiff,
    MetricPolicy,
    compare_files,
    compare_metrics,
    flatten_metrics,
    load_metrics,
)
from repro.obs.provenance import (
    TRANSITION_EVENT,
    LineageMismatch,
    LineageReplay,
    lineage_mix,
    parse_transition,
    record_transition,
    rejection_reason,
    replay_lineage,
    transition_targets,
    verify_lineage,
)
from repro.obs.report import (
    filter_trace,
    load_events,
    render_summary,
    render_trace,
    summarize,
)
from repro.obs.top import render_exemplars, render_top, run_top

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_POLICIES",
    "FORMAT_VERSION",
    "NULL_RECORDER",
    "TRANSITION_EVENT",
    "Counter",
    "DiffReport",
    "Gauge",
    "Histogram",
    "LineageMismatch",
    "LineageReplay",
    "MetricDiff",
    "MetricPolicy",
    "Recorder",
    "Span",
    "compare_files",
    "compare_metrics",
    "filter_trace",
    "flatten_metrics",
    "get_recorder",
    "lineage_mix",
    "load_events",
    "load_metrics",
    "new_trace_id",
    "parse_transition",
    "record_transition",
    "rejection_reason",
    "render_exemplars",
    "render_prometheus",
    "render_summary",
    "render_top",
    "render_trace",
    "replay_lineage",
    "run_top",
    "set_recorder",
    "summarize",
    "transition_targets",
    "use_recorder",
    "verify_lineage",
]
