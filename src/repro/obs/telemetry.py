"""Structured telemetry: spans, counters, gauges, and the recorder.

The optimizer is a state-space search whose behaviour — states visited,
transitions fired, local-group phases, cost-model evaluations — was
previously invisible except for a handful of aggregate fields on
:class:`~repro.core.search.result.OptimizationResult`.  This module is the
measurement substrate every perf-facing subsystem reports through:

* :class:`Span` — one nested, monotonic-clocked, tagged measurement;
  spans form a tree via ``parent_id`` (per-thread stacks keep nesting
  correct under concurrent use);
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — named, tagged
  registries for event counts (transition applicability, transposition
  hits/misses), level measurements (ledger peak-resident rows), and
  latency distributions (serve request latency percentiles);
* :class:`Recorder` — the thread-safe sink.  Worker processes record
  into a private :class:`Recorder` and ship ``events()`` back with their
  results; the parent :meth:`Recorder.absorb`\\ s the buffer, so one JSONL
  file describes the whole run regardless of ``jobs``.

Recorders also carry *trace* context: :meth:`Recorder.trace` stamps
everything a thread records (and every buffer it absorbs) with a
``trace`` tag, so one serve request's span tree can be pulled back out
of a daemon-lifetime event stream that interleaves many requests.

Everything is stdlib-only.  Instrumented call sites obtain the active
recorder with :func:`get_recorder`; when telemetry is off that returns
the :data:`NULL_RECORDER`, whose every operation is a no-op, so
instrumentation costs almost nothing when disabled.

Serialization is JSON-lines through :func:`repro.io.atomic.atomic_write_text`
(temp file + ``os.replace``), so a crash mid-flush never leaves a torn
telemetry file behind.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.io.atomic import atomic_write_text

__all__ = [
    "FORMAT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "Recorder",
    "NULL_RECORDER",
    "get_recorder",
    "new_trace_id",
    "set_recorder",
    "use_recorder",
]

FORMAT_VERSION = 1

#: Tags are flattened to ``(key, value)`` tuples sorted by key — the
#: registry identity of a counter or gauge.
_TagKey = tuple[tuple[str, Any], ...]


def _tag_key(tags: dict[str, Any]) -> _TagKey:
    return tuple(sorted(tags.items()))


class Counter:
    """A monotonically increasing event count (e.g. transposition hits).

    Mutation is locked: registry instruments are shared between daemon
    worker threads, and ``self.value += amount`` is a read-modify-write
    across bytecodes — unlocked, two threads bumping the same counter
    can lose updates.
    """

    __slots__ = ("name", "tags", "value", "_lock")

    def __init__(self, name: str, tags: dict[str, Any]):
        self.name = name
        self.tags = tags
        self.value = 0
        self._lock = threading.Lock()

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def to_event(self) -> dict[str, Any]:
        return {
            "type": "counter",
            "name": self.name,
            "value": self.value,
            "tags": dict(self.tags),
        }


class Gauge:
    """A level measurement; remembers the last and the maximum value set."""

    __slots__ = ("name", "tags", "value", "max", "_lock")

    def __init__(self, name: str, tags: dict[str, Any]):
        self.name = name
        self.tags = tags
        self.value: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if self.max is None or value > self.max:
                self.max = value

    def to_event(self) -> dict[str, Any]:
        with self._lock:
            return {
                "type": "gauge",
                "name": self.name,
                "value": self.value,
                "max": self.max,
                "tags": dict(self.tags),
            }


def _bucket_index(value: float) -> int:
    # frexp gives value = m * 2**e with 0.5 <= m < 1; a value exactly on
    # a power of two (m == 0.5) belongs to the lower bucket so bounds
    # stay half-open: bucket i covers (2**(i-1), 2**i].
    mantissa, exponent = math.frexp(value)
    return exponent - 1 if mantissa == 0.5 else exponent


class Histogram:
    """A log2-bucketed latency/size distribution: mergeable, fixed error.

    Observations land in power-of-two buckets — index ``i`` covers
    ``(2**(i-1), 2**i]``, non-positive values a dedicated zero bucket —
    so the instrument needs no a-priori range configuration, quantile
    estimates are upper bounds with at most 2x relative error, and two
    histograms merge by summing per-index counts.  Merging is how worker
    buffers, daemon snapshots, and JSONL files combine (:meth:`merge_event`).
    """

    __slots__ = ("name", "tags", "count", "sum", "zero", "buckets", "_lock")

    def __init__(self, name: str, tags: dict[str, Any]):
        self.name = name
        self.tags = tags
        self.count = 0
        self.sum = 0.0
        self.zero = 0
        self.buckets: dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if value <= 0.0:
                self.zero += 1
                return
            index = _bucket_index(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge_event(self, event: dict[str, Any]) -> None:
        """Fold a serialized histogram event into this instrument."""
        with self._lock:
            self.count += int(event.get("count", 0))
            self.sum += float(event.get("sum", 0.0))
            self.zero += int(event.get("zero", 0))
            for index, bucket_count in (event.get("buckets") or {}).items():
                key = int(index)
                self.buckets[key] = self.buckets.get(key, 0) + int(bucket_count)

    def _percentile_locked(self, quantile: float) -> float | None:
        if self.count == 0:
            return None
        rank = max(1, math.ceil(quantile * self.count))
        seen = self.zero
        if seen >= rank:
            return 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return float(2.0**index)
        return float(2.0 ** max(self.buckets))

    def percentile(self, quantile: float) -> float | None:
        """The bucket upper bound at ``quantile`` (0..1); None when empty."""
        with self._lock:
            return self._percentile_locked(quantile)

    def summary(self) -> dict[str, Any]:
        """count/sum/mean plus p50/p90/p99 as one JSON-able dict."""
        with self._lock:
            count = self.count
            total = self.sum
            p50 = self._percentile_locked(0.50)
            p90 = self._percentile_locked(0.90)
            p99 = self._percentile_locked(0.99)
        return {
            "count": count,
            "sum": round(total, 6),
            "mean": round(total / count, 6) if count else None,
            "p50": p50,
            "p90": p90,
            "p99": p99,
        }

    def to_event(self) -> dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "name": self.name,
                "tags": dict(self.tags),
                "count": self.count,
                "sum": self.sum,
                "zero": self.zero,
                "buckets": {
                    str(index): bucket_count
                    for index, bucket_count in sorted(self.buckets.items())
                },
            }


@dataclass
class Span:
    """One finished measurement in the span tree."""

    name: str
    seconds: float
    span_id: str
    parent_id: str | None = None
    tags: dict[str, Any] = field(default_factory=dict)

    def to_event(self) -> dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "seconds": self.seconds,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tags": dict(self.tags),
        }


class Recorder:
    """Thread-safe telemetry sink: spans, events, counters, gauges, JSONL
    export.

    Span ids embed the recording process's pid; on top of that,
    :meth:`absorb` namespaces every absorbed buffer's ids (``w{n}:{id}``)
    so buffers from recycled pool workers — which restart their local id
    counters per task — never collide with the parent's ids or with each
    other, and the span tree stays well-formed across process boundaries.
    """

    #: Instrumented call sites may branch on this to skip building tags.
    active = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: list[dict[str, Any]] = []
        self._events: list[dict[str, Any]] = []
        self._counters: dict[tuple[str, _TagKey], Counter] = {}
        self._gauges: dict[tuple[str, _TagKey], Gauge] = {}
        self._histograms: dict[tuple[str, _TagKey], Histogram] = {}
        self._local = threading.local()
        self._trace = threading.local()
        self._ids = itertools.count(1)
        self._absorbed = itertools.count(1)
        self._origin = os.getpid()
        #: Optional live-progress hook: called with each finished span's
        #: event dict, outside the recorder lock, on the recording thread.
        #: The serve daemon streams ``search.*`` spans to clients this way.
        #: Callbacks must not raise; exceptions propagate to the span site.
        self.on_span: Callable[[dict[str, Any]], None] | None = None

    # -- span tree --------------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_span_id(self) -> str:
        with self._lock:
            return f"{self._origin}-{next(self._ids)}"

    def current_span_id(self) -> str | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- trace context ----------------------------------------------------------

    def current_trace_id(self) -> str | None:
        """The calling thread's active trace id, if inside :meth:`trace`."""
        return getattr(self._trace, "id", None)

    @contextmanager
    def trace(self, trace_id: str | None) -> Iterator[str | None]:
        """Stamp everything this thread records with ``trace=trace_id``.

        ``None`` clears the context for the block (records nothing), so
        worker tasks can wrap unconditionally with whatever trace id they
        were shipped — absent one included.

        Spans and structured events recorded inside the block — and every
        buffer absorbed inside it, which is how worker-process spans
        shipped back through :class:`WorkerPool` inherit the id — get a
        ``trace`` tag unless they already carry one, so a single serve
        request's tree stays reassemblable after the daemon's recorder
        has interleaved many requests into one stream.
        """
        previous = getattr(self._trace, "id", None)
        self._trace.id = trace_id
        try:
            yield trace_id
        finally:
            self._trace.id = previous

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[None]:
        """Measure the enclosed block on the monotonic clock."""
        trace = getattr(self._trace, "id", None)
        if trace is not None and "trace" not in tags:
            tags["trace"] = trace
        span_id = self._next_span_id()
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(span_id)
        started = self._clock()
        try:
            yield
        finally:
            seconds = self._clock() - started
            stack.pop()
            event = Span(
                name=name,
                seconds=seconds,
                span_id=span_id,
                parent_id=parent,
                tags=tags,
            ).to_event()
            with self._lock:
                self._spans.append(event)
            callback = self.on_span
            if callback is not None:
                callback(event)

    def record_span(self, name: str, seconds: float, **tags: Any) -> None:
        """Record an externally measured span (e.g. a worker-side timing)."""
        trace = getattr(self._trace, "id", None)
        if trace is not None and "trace" not in tags:
            tags["trace"] = trace
        event = Span(
            name=name,
            seconds=seconds,
            span_id=self._next_span_id(),
            parent_id=self.current_span_id(),
            tags=tags,
        ).to_event()
        with self._lock:
            self._spans.append(event)

    def record_event(self, name: str, **fields: Any) -> None:
        """Record a structured point-in-time event (e.g. a considered
        transition in the search provenance log).

        Unlike counters, events keep every occurrence with its full
        payload, so the JSONL file carries the decision log itself, not
        just its aggregates.
        """
        trace = getattr(self._trace, "id", None)
        if trace is not None and "trace" not in fields:
            fields["trace"] = trace
        event = {"type": "event", "name": name, "fields": fields}
        with self._lock:
            self._events.append(event)

    # -- registries -------------------------------------------------------------

    def counter(self, name: str, **tags: Any) -> Counter:
        key = (name, _tag_key(tags))
        with self._lock:
            found = self._counters.get(key)
            if found is None:
                found = Counter(name, tags)
                self._counters[key] = found
            return found

    def gauge(self, name: str, **tags: Any) -> Gauge:
        key = (name, _tag_key(tags))
        with self._lock:
            found = self._gauges.get(key)
            if found is None:
                found = Gauge(name, tags)
                self._gauges[key] = found
            return found

    def histogram(self, name: str, **tags: Any) -> Histogram:
        key = (name, _tag_key(tags))
        with self._lock:
            found = self._histograms.get(key)
            if found is None:
                found = Histogram(name, tags)
                self._histograms[key] = found
            return found

    # -- merge + export ---------------------------------------------------------

    def events(self) -> list[dict[str, Any]]:
        """A snapshot of everything recorded so far, as JSON-able dicts."""
        with self._lock:
            events = list(self._spans)
            events.extend(dict(e) for e in self._events)
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        events.extend(c.to_event() for c in counters)
        events.extend(g.to_event() for g in gauges)
        events.extend(h.to_event() for h in histograms)
        return events

    def absorb(self, events: list[dict[str, Any]] | None) -> None:
        """Merge a buffer shipped back from a worker (or another recorder).

        Span events are appended (parentless roots are re-parented under
        the caller's current span, so worker work nests under the phase
        that dispatched it); structured events are appended as-is; counter
        values are summed and gauges maxed into this recorder's registries.

        Absorbed span ids are namespaced ``w{n}:{id}`` with ``n`` unique
        per absorbed buffer: pool workers are recycled across tasks, so
        two tasks that ran on the same worker (or on any two workers after
        a fork) can ship buffers whose *local* span ids coincide — without
        the namespace those ids would collide in the parent's span tree.
        ``parent_id`` references internal to the buffer are remapped along
        with the ids they point at; references to spans outside the buffer
        (already-namespaced nested absorbs) are left untouched.

        When the absorbing thread is inside :meth:`trace`, absorbed spans
        and structured events missing a ``trace`` tag are stamped with the
        active id; tags the buffer already carries are preserved.
        """
        if not events:
            return
        with self._lock:
            namespace = f"w{next(self._absorbed)}"
        local_ids = {
            event["span_id"]
            for event in events
            if event.get("type") == "span" and event.get("span_id")
        }
        parent = self.current_span_id()
        trace = self.current_trace_id()
        for event in events:
            kind = event.get("type")
            if kind == "span":
                merged = dict(event)
                span_id = merged.get("span_id")
                if span_id is not None:
                    merged["span_id"] = f"{namespace}:{span_id}"
                parent_id = merged.get("parent_id")
                if parent_id is None:
                    merged["parent_id"] = parent
                elif parent_id in local_ids:
                    merged["parent_id"] = f"{namespace}:{parent_id}"
                if trace is not None:
                    tags = merged.get("tags") or {}
                    if "trace" not in tags:
                        merged["tags"] = {**tags, "trace": trace}
                with self._lock:
                    self._spans.append(merged)
            elif kind == "event":
                merged = dict(event)
                if trace is not None:
                    fields = merged.get("fields") or {}
                    if "trace" not in fields:
                        merged["fields"] = {**fields, "trace": trace}
                with self._lock:
                    self._events.append(merged)
            elif kind == "counter":
                self.counter(event["name"], **event.get("tags", {})).add(
                    event.get("value", 0)
                )
            elif kind == "gauge":
                gauge = self.gauge(event["name"], **event.get("tags", {}))
                for value in (event.get("value"), event.get("max")):
                    if value is not None:
                        gauge.set(value)
            elif kind == "histogram":
                self.histogram(
                    event["name"], **event.get("tags", {})
                ).merge_event(event)

    def flush_jsonl(self, path: str | os.PathLike) -> None:
        """Write all events as JSON lines, atomically (never a torn file)."""
        lines = [
            json.dumps(
                {"type": "meta", "format_version": FORMAT_VERSION},
                sort_keys=True,
            )
        ]
        lines.extend(
            json.dumps(event, sort_keys=True, default=str)
            for event in self.events()
        )
        atomic_write_text(os.fspath(path), "\n".join(lines) + "\n")


class _NullCounter:
    __slots__ = ()
    value = 0

    def add(self, amount: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    value = None
    max = None

    def set(self, value: float) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    count = 0
    sum = 0.0
    zero = 0
    buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        return None

    def merge_event(self, event: dict[str, Any]) -> None:
        return None

    def percentile(self, quantile: float) -> float | None:
        return None

    def summary(self) -> dict[str, Any]:
        return {
            "count": 0,
            "sum": 0.0,
            "mean": None,
            "p50": None,
            "p90": None,
            "p99": None,
        }


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class _NullRecorder(Recorder):
    """The disabled recorder: every operation is a cheap no-op."""

    active = False

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[None]:
        yield

    def record_span(self, name: str, seconds: float, **tags: Any) -> None:
        return None

    def record_event(self, name: str, **fields: Any) -> None:
        return None

    def counter(self, name: str, **tags: Any) -> Counter:
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str, **tags: Any) -> Gauge:
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str, **tags: Any) -> Histogram:
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    @contextmanager
    def trace(self, trace_id: str | None) -> Iterator[str | None]:
        yield trace_id

    def current_trace_id(self) -> str | None:
        return None

    def absorb(self, events: list[dict[str, Any]] | None) -> None:
        return None

    def events(self) -> list[dict[str, Any]]:
        return []


NULL_RECORDER = _NullRecorder()

_trace_ids = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique trace id (the daemon issues one per serve request)."""
    return f"t{os.getpid():x}-{next(_trace_ids):x}"

_active: Recorder = NULL_RECORDER

#: Per-thread recorder override (see :func:`use_recorder`).  The serve
#: daemon runs concurrent optimizations on worker threads, each under its
#: own recorder; a process-global slot would let one request's install
#: clobber another's mid-flight.
_thread_active = threading.local()


def get_recorder() -> Recorder:
    """The active recorder: this thread's :func:`use_recorder` override if
    one is in effect, else the process-wide :func:`set_recorder` slot
    (:data:`NULL_RECORDER` when off)."""
    override = getattr(_thread_active, "recorder", None)
    return override if override is not None else _active


def set_recorder(recorder: Recorder | None) -> Recorder:
    """Install ``recorder`` process-wide (``None`` disables); returns the
    previous process-wide recorder.  Threads inside a :func:`use_recorder`
    block keep their scoped recorder regardless."""
    global _active
    previous = _active
    _active = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def use_recorder(recorder: Recorder | None) -> Iterator[Recorder]:
    """Temporarily install ``recorder`` as the *calling thread's* active
    recorder (``None`` silences telemetry for the block).

    The override is thread-scoped: concurrent threads can each record
    under their own recorder without interleaving, which is what keeps
    per-request telemetry separate in the serve daemon.  Single-threaded
    behaviour is unchanged.
    """
    previous = getattr(_thread_active, "recorder", None)
    _thread_active.recorder = (
        recorder if recorder is not None else NULL_RECORDER
    )
    try:
        yield get_recorder()
    finally:
        _thread_active.recorder = previous
