"""Structured telemetry: spans, counters, gauges, and the recorder.

The optimizer is a state-space search whose behaviour — states visited,
transitions fired, local-group phases, cost-model evaluations — was
previously invisible except for a handful of aggregate fields on
:class:`~repro.core.search.result.OptimizationResult`.  This module is the
measurement substrate every perf-facing subsystem reports through:

* :class:`Span` — one nested, monotonic-clocked, tagged measurement;
  spans form a tree via ``parent_id`` (per-thread stacks keep nesting
  correct under concurrent use);
* :class:`Counter` / :class:`Gauge` — named, tagged registries for event
  counts (transition applicability, transposition hits/misses) and level
  measurements (ledger peak-resident rows);
* :class:`Recorder` — the thread-safe sink.  Worker processes record
  into a private :class:`Recorder` and ship ``events()`` back with their
  results; the parent :meth:`Recorder.absorb`\\ s the buffer, so one JSONL
  file describes the whole run regardless of ``jobs``.

Everything is stdlib-only.  Instrumented call sites obtain the active
recorder with :func:`get_recorder`; when telemetry is off that returns
the :data:`NULL_RECORDER`, whose every operation is a no-op, so
instrumentation costs almost nothing when disabled.

Serialization is JSON-lines through :func:`repro.io.atomic.atomic_write_text`
(temp file + ``os.replace``), so a crash mid-flush never leaves a torn
telemetry file behind.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.io.atomic import atomic_write_text

__all__ = [
    "FORMAT_VERSION",
    "Counter",
    "Gauge",
    "Span",
    "Recorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "use_recorder",
]

FORMAT_VERSION = 1

#: Tags are flattened to ``(key, value)`` tuples sorted by key — the
#: registry identity of a counter or gauge.
_TagKey = tuple[tuple[str, Any], ...]


def _tag_key(tags: dict[str, Any]) -> _TagKey:
    return tuple(sorted(tags.items()))


class Counter:
    """A monotonically increasing event count (e.g. transposition hits)."""

    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: dict[str, Any]):
        self.name = name
        self.tags = tags
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def to_event(self) -> dict[str, Any]:
        return {
            "type": "counter",
            "name": self.name,
            "value": self.value,
            "tags": dict(self.tags),
        }


class Gauge:
    """A level measurement; remembers the last and the maximum value set."""

    __slots__ = ("name", "tags", "value", "max")

    def __init__(self, name: str, tags: dict[str, Any]):
        self.name = name
        self.tags = tags
        self.value: float | None = None
        self.max: float | None = None

    def set(self, value: float) -> None:
        self.value = value
        if self.max is None or value > self.max:
            self.max = value

    def to_event(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            "name": self.name,
            "value": self.value,
            "max": self.max,
            "tags": dict(self.tags),
        }


@dataclass
class Span:
    """One finished measurement in the span tree."""

    name: str
    seconds: float
    span_id: str
    parent_id: str | None = None
    tags: dict[str, Any] = field(default_factory=dict)

    def to_event(self) -> dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "seconds": self.seconds,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tags": dict(self.tags),
        }


class Recorder:
    """Thread-safe telemetry sink: spans, events, counters, gauges, JSONL
    export.

    Span ids embed the recording process's pid; on top of that,
    :meth:`absorb` namespaces every absorbed buffer's ids (``w{n}:{id}``)
    so buffers from recycled pool workers — which restart their local id
    counters per task — never collide with the parent's ids or with each
    other, and the span tree stays well-formed across process boundaries.
    """

    #: Instrumented call sites may branch on this to skip building tags.
    active = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: list[dict[str, Any]] = []
        self._events: list[dict[str, Any]] = []
        self._counters: dict[tuple[str, _TagKey], Counter] = {}
        self._gauges: dict[tuple[str, _TagKey], Gauge] = {}
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._absorbed = itertools.count(1)
        self._origin = os.getpid()
        #: Optional live-progress hook: called with each finished span's
        #: event dict, outside the recorder lock, on the recording thread.
        #: The serve daemon streams ``search.*`` spans to clients this way.
        #: Callbacks must not raise; exceptions propagate to the span site.
        self.on_span: Callable[[dict[str, Any]], None] | None = None

    # -- span tree --------------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_span_id(self) -> str:
        with self._lock:
            return f"{self._origin}-{next(self._ids)}"

    def current_span_id(self) -> str | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[None]:
        """Measure the enclosed block on the monotonic clock."""
        span_id = self._next_span_id()
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(span_id)
        started = self._clock()
        try:
            yield
        finally:
            seconds = self._clock() - started
            stack.pop()
            event = Span(
                name=name,
                seconds=seconds,
                span_id=span_id,
                parent_id=parent,
                tags=tags,
            ).to_event()
            with self._lock:
                self._spans.append(event)
            callback = self.on_span
            if callback is not None:
                callback(event)

    def record_span(self, name: str, seconds: float, **tags: Any) -> None:
        """Record an externally measured span (e.g. a worker-side timing)."""
        event = Span(
            name=name,
            seconds=seconds,
            span_id=self._next_span_id(),
            parent_id=self.current_span_id(),
            tags=tags,
        ).to_event()
        with self._lock:
            self._spans.append(event)

    def record_event(self, name: str, **fields: Any) -> None:
        """Record a structured point-in-time event (e.g. a considered
        transition in the search provenance log).

        Unlike counters, events keep every occurrence with its full
        payload, so the JSONL file carries the decision log itself, not
        just its aggregates.
        """
        event = {"type": "event", "name": name, "fields": fields}
        with self._lock:
            self._events.append(event)

    # -- registries -------------------------------------------------------------

    def counter(self, name: str, **tags: Any) -> Counter:
        key = (name, _tag_key(tags))
        with self._lock:
            found = self._counters.get(key)
            if found is None:
                found = Counter(name, tags)
                self._counters[key] = found
            return found

    def gauge(self, name: str, **tags: Any) -> Gauge:
        key = (name, _tag_key(tags))
        with self._lock:
            found = self._gauges.get(key)
            if found is None:
                found = Gauge(name, tags)
                self._gauges[key] = found
            return found

    # -- merge + export ---------------------------------------------------------

    def events(self) -> list[dict[str, Any]]:
        """A snapshot of everything recorded so far, as JSON-able dicts."""
        with self._lock:
            events = list(self._spans)
            events.extend(dict(e) for e in self._events)
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
        events.extend(c.to_event() for c in counters)
        events.extend(g.to_event() for g in gauges)
        return events

    def absorb(self, events: list[dict[str, Any]] | None) -> None:
        """Merge a buffer shipped back from a worker (or another recorder).

        Span events are appended (parentless roots are re-parented under
        the caller's current span, so worker work nests under the phase
        that dispatched it); structured events are appended as-is; counter
        values are summed and gauges maxed into this recorder's registries.

        Absorbed span ids are namespaced ``w{n}:{id}`` with ``n`` unique
        per absorbed buffer: pool workers are recycled across tasks, so
        two tasks that ran on the same worker (or on any two workers after
        a fork) can ship buffers whose *local* span ids coincide — without
        the namespace those ids would collide in the parent's span tree.
        ``parent_id`` references internal to the buffer are remapped along
        with the ids they point at; references to spans outside the buffer
        (already-namespaced nested absorbs) are left untouched.
        """
        if not events:
            return
        with self._lock:
            namespace = f"w{next(self._absorbed)}"
        local_ids = {
            event["span_id"]
            for event in events
            if event.get("type") == "span" and event.get("span_id")
        }
        parent = self.current_span_id()
        for event in events:
            kind = event.get("type")
            if kind == "span":
                merged = dict(event)
                span_id = merged.get("span_id")
                if span_id is not None:
                    merged["span_id"] = f"{namespace}:{span_id}"
                parent_id = merged.get("parent_id")
                if parent_id is None:
                    merged["parent_id"] = parent
                elif parent_id in local_ids:
                    merged["parent_id"] = f"{namespace}:{parent_id}"
                with self._lock:
                    self._spans.append(merged)
            elif kind == "event":
                with self._lock:
                    self._events.append(dict(event))
            elif kind == "counter":
                self.counter(event["name"], **event.get("tags", {})).add(
                    event.get("value", 0)
                )
            elif kind == "gauge":
                gauge = self.gauge(event["name"], **event.get("tags", {}))
                for value in (event.get("value"), event.get("max")):
                    if value is not None:
                        gauge.set(value)

    def flush_jsonl(self, path: str | os.PathLike) -> None:
        """Write all events as JSON lines, atomically (never a torn file)."""
        lines = [
            json.dumps(
                {"type": "meta", "format_version": FORMAT_VERSION},
                sort_keys=True,
            )
        ]
        lines.extend(
            json.dumps(event, sort_keys=True, default=str)
            for event in self.events()
        )
        atomic_write_text(os.fspath(path), "\n".join(lines) + "\n")


class _NullCounter:
    __slots__ = ()
    value = 0

    def add(self, amount: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    value = None
    max = None

    def set(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()


class _NullRecorder(Recorder):
    """The disabled recorder: every operation is a cheap no-op."""

    active = False

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[None]:
        yield

    def record_span(self, name: str, seconds: float, **tags: Any) -> None:
        return None

    def record_event(self, name: str, **fields: Any) -> None:
        return None

    def counter(self, name: str, **tags: Any) -> Counter:
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str, **tags: Any) -> Gauge:
        return _NULL_GAUGE  # type: ignore[return-value]

    def absorb(self, events: list[dict[str, Any]] | None) -> None:
        return None

    def events(self) -> list[dict[str, Any]]:
        return []


NULL_RECORDER = _NullRecorder()

_active: Recorder = NULL_RECORDER

#: Per-thread recorder override (see :func:`use_recorder`).  The serve
#: daemon runs concurrent optimizations on worker threads, each under its
#: own recorder; a process-global slot would let one request's install
#: clobber another's mid-flight.
_thread_active = threading.local()


def get_recorder() -> Recorder:
    """The active recorder: this thread's :func:`use_recorder` override if
    one is in effect, else the process-wide :func:`set_recorder` slot
    (:data:`NULL_RECORDER` when off)."""
    override = getattr(_thread_active, "recorder", None)
    return override if override is not None else _active


def set_recorder(recorder: Recorder | None) -> Recorder:
    """Install ``recorder`` process-wide (``None`` disables); returns the
    previous process-wide recorder.  Threads inside a :func:`use_recorder`
    block keep their scoped recorder regardless."""
    global _active
    previous = _active
    _active = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def use_recorder(recorder: Recorder | None) -> Iterator[Recorder]:
    """Temporarily install ``recorder`` as the *calling thread's* active
    recorder (``None`` silences telemetry for the block).

    The override is thread-scoped: concurrent threads can each record
    under their own recorder without interleaving, which is what keeps
    per-request telemetry separate in the serve daemon.  Single-threaded
    behaviour is unchanged.
    """
    previous = getattr(_thread_active, "recorder", None)
    _thread_active.recorder = (
        recorder if recorder is not None else NULL_RECORDER
    )
    try:
        yield get_recorder()
    finally:
        _thread_active.recorder = previous
