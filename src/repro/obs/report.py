"""Turn a telemetry JSONL file into a per-phase / per-operator summary.

``repro report telemetry.jsonl`` renders the tables; the benchmarks embed
the same :func:`summarize` dict into their ``BENCH_*.json`` payloads so a
perf run carries its own span/counter breakdown.

Spans are aggregated by ``(name, detail)`` where the detail is the first
identifying tag present (phase, activity/operator id, chain, category,
...) — this groups the hot rows the way a human reads them: HS phases
line up as four rows, engine operators as one row per activity.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable

from repro.obs.telemetry import Histogram

__all__ = [
    "load_events",
    "summarize",
    "render_summary",
    "filter_trace",
    "render_trace",
]

#: Tag keys that identify a span row in the summary, in priority order.
_DETAIL_TAGS = (
    "phase",
    "activity",
    "operator",
    "component",
    "chain",
    "category",
    "algorithm",
)


def load_events(path: str) -> list[dict[str, Any]]:
    """Parse a telemetry JSONL file (meta lines included)."""
    events: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            events.append(json.loads(line))
    return events


def _span_detail(tags: dict[str, Any]) -> str:
    for key in _DETAIL_TAGS:
        if key in tags:
            return f"{key}={tags[key]}"
    return ""


def _label(name: str, tags: dict[str, Any], detail: str = "") -> str:
    if detail:
        return f"{name}[{detail}]"
    # ``trace`` is a tracing-plane tag (one value per request); letting it
    # into the label would split every aggregate row per request.
    parts = ",".join(
        f"{k}={v}" for k, v in sorted(tags.items()) if k != "trace"
    )
    if parts:
        return f"{name}[{parts}]"
    return name


def _percentile(sorted_values: list[float], quantile: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sample."""
    rank = max(1, math.ceil(quantile * len(sorted_values)))
    return sorted_values[rank - 1]


def _event_detail(fields: dict[str, Any]) -> str:
    """Aggregation key for structured events.

    Provenance events (``search.transition``) group by the decision that
    was made — algorithm × mnemonic × accepted — which reads as "HS
    considered 214 SWAs and accepted 180"; other events group by name.
    """
    parts: list[str] = []
    if "algorithm" in fields:
        parts.append(f"algorithm={fields['algorithm']}")
    if "mnemonic" in fields:
        parts.append(f"mnemonic={fields['mnemonic']}")
    if "accepted" in fields:
        parts.append(
            "accepted" if fields["accepted"] else "rejected"
        )
    return ",".join(parts)


def summarize(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate events into a JSON-able summary dict."""
    span_rows: dict[str, dict[str, Any]] = {}
    span_samples: dict[str, list[float]] = {}
    counter_rows: dict[str, int] = {}
    gauge_rows: dict[str, dict[str, Any]] = {}
    histogram_rows: dict[str, Histogram] = {}
    event_rows: dict[str, int] = {}
    span_count = 0
    event_count = 0
    for event in events:
        kind = event.get("type")
        if kind == "event":
            event_count += 1
            fields = event.get("fields", {})
            detail = _event_detail(fields)
            label = (
                f"{event['name']}[{detail}]" if detail else str(event["name"])
            )
            event_rows[label] = event_rows.get(label, 0) + 1
        elif kind == "span":
            span_count += 1
            tags = event.get("tags", {})
            label = _label(event["name"], tags, _span_detail(tags))
            row = span_rows.setdefault(
                label,
                {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0},
            )
            seconds = float(event.get("seconds", 0.0))
            row["count"] += 1
            row["total_seconds"] += seconds
            row["max_seconds"] = max(row["max_seconds"], seconds)
            span_samples.setdefault(label, []).append(seconds)
        elif kind == "counter":
            label = _label(event["name"], event.get("tags", {}))
            counter_rows[label] = counter_rows.get(label, 0) + int(
                event.get("value", 0)
            )
        elif kind == "gauge":
            label = _label(event["name"], event.get("tags", {}))
            row = gauge_rows.setdefault(label, {"value": None, "max": None})
            for key in ("value", "max"):
                value = event.get(key)
                if value is not None and (
                    row[key] is None or value > row[key]
                ):
                    row[key] = value
        elif kind == "histogram":
            label = _label(event["name"], event.get("tags", {}))
            merged = histogram_rows.setdefault(
                label, Histogram(event["name"], {})
            )
            merged.merge_event(event)
    for label, row in span_rows.items():
        row["mean_seconds"] = (
            row["total_seconds"] / row["count"] if row["count"] else 0.0
        )
        samples = sorted(span_samples.get(label, ()))
        row["p50_seconds"] = _percentile(samples, 0.50) if samples else 0.0
        row["p95_seconds"] = _percentile(samples, 0.95) if samples else 0.0
        for key in (
            "total_seconds",
            "max_seconds",
            "mean_seconds",
            "p50_seconds",
            "p95_seconds",
        ):
            row[key] = round(row[key], 6)
    return {
        "span_events": span_count,
        "structured_events": event_count,
        "spans": dict(sorted(span_rows.items())),
        "counters": dict(sorted(counter_rows.items())),
        "gauges": dict(sorted(gauge_rows.items())),
        "histograms": {
            label: histogram.summary()
            for label, histogram in sorted(histogram_rows.items())
        },
        "events": dict(sorted(event_rows.items())),
    }


def render_summary(summary: dict[str, Any]) -> str:
    """Render a :func:`summarize` dict as fixed-width tables."""
    lines: list[str] = []
    spans = summary.get("spans", {})
    if spans:
        width = max(len(label) for label in spans)
        width = max(width, len("span"))
        lines.append(
            f"{'span':<{width}}  {'count':>7}  {'total ms':>10}  "
            f"{'mean ms':>10}  {'p50 ms':>10}  {'p95 ms':>10}  "
            f"{'max ms':>10}"
        )
        for label, row in spans.items():
            p50 = row.get("p50_seconds", row["mean_seconds"])
            p95 = row.get("p95_seconds", row["max_seconds"])
            lines.append(
                f"{label:<{width}}  {row['count']:>7}  "
                f"{1000 * row['total_seconds']:>10.2f}  "
                f"{1000 * row['mean_seconds']:>10.2f}  "
                f"{1000 * p50:>10.2f}  "
                f"{1000 * p95:>10.2f}  "
                f"{1000 * row['max_seconds']:>10.2f}"
            )
    else:
        lines.append("no spans recorded")
    counters = summary.get("counters", {})
    if counters:
        width = max(max(len(label) for label in counters), len("counter"))
        lines.append("")
        lines.append(f"{'counter':<{width}}  {'value':>12}")
        for label, value in counters.items():
            lines.append(f"{label:<{width}}  {value:>12}")
    gauges = summary.get("gauges", {})
    if gauges:
        width = max(max(len(label) for label in gauges), len("gauge"))
        lines.append("")
        lines.append(f"{'gauge':<{width}}  {'last':>12}  {'max':>12}")
        for label, row in gauges.items():
            last = row["value"] if row["value"] is not None else "—"
            peak = row["max"] if row["max"] is not None else "—"
            lines.append(f"{label:<{width}}  {last:>12}  {peak:>12}")
    histogram_rows = summary.get("histograms", {})
    if histogram_rows:
        width = max(
            max(len(label) for label in histogram_rows), len("histogram")
        )
        lines.append("")
        lines.append(
            f"{'histogram':<{width}}  {'count':>7}  {'mean ms':>10}  "
            f"{'p50 ms':>10}  {'p90 ms':>10}  {'p99 ms':>10}"
        )
        for label, row in histogram_rows.items():
            cells = []
            for key in ("mean", "p50", "p90", "p99"):
                value = row.get(key)
                cells.append(
                    f"{1000 * value:>10.2f}" if value is not None else f"{'—':>10}"
                )
            lines.append(
                f"{label:<{width}}  {row.get('count', 0):>7}  "
                + "  ".join(cells)
            )
    event_rows = summary.get("events", {})
    if event_rows:
        width = max(max(len(label) for label in event_rows), len("event"))
        lines.append("")
        lines.append(f"{'event':<{width}}  {'count':>12}")
        for label, value in event_rows.items():
            lines.append(f"{label:<{width}}  {value:>12}")
    return "\n".join(lines)


def filter_trace(
    events: Iterable[dict[str, Any]], trace_id: str
) -> list[dict[str, Any]]:
    """The subset of ``events`` belonging to one request's trace.

    Spans match on their ``trace`` tag, structured events on their
    ``trace`` field; counters, gauges, and histograms are aggregate
    instruments with no per-request identity, so they never match.
    """
    matched: list[dict[str, Any]] = []
    for event in events:
        kind = event.get("type")
        if kind == "span":
            if (event.get("tags") or {}).get("trace") == trace_id:
                matched.append(event)
        elif kind == "event":
            if (event.get("fields") or {}).get("trace") == trace_id:
                matched.append(event)
    return matched


def render_trace(events: Iterable[dict[str, Any]]) -> str:
    """Render one trace's spans as an indented tree (file order preserved
    among siblings).  Spans whose parent is outside the filtered set are
    promoted to roots, so a partial file still renders."""
    spans = [e for e in events if e.get("type") == "span"]
    structured = [e for e in events if e.get("type") == "event"]
    if not spans:
        return "no spans in trace"
    by_id = {
        span["span_id"]: span for span in spans if span.get("span_id")
    }
    children: dict[str | None, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    lines: list[str] = []

    def walk(span: dict[str, Any], depth: int) -> None:
        tags = {
            k: v
            for k, v in (span.get("tags") or {}).items()
            if k != "trace"
        }
        detail = (
            " " + ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
            if tags
            else ""
        )
        seconds = float(span.get("seconds", 0.0))
        lines.append(
            f"{'  ' * depth}{span.get('name')}  "
            f"{1000 * seconds:.2f}ms{detail}"
        )
        for child in children.get(span.get("span_id"), ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    if structured:
        lines.append(f"+ {len(structured)} structured event(s) in trace")
    return "\n".join(lines)
