"""Turn a telemetry JSONL file into a per-phase / per-operator summary.

``repro report telemetry.jsonl`` renders the tables; the benchmarks embed
the same :func:`summarize` dict into their ``BENCH_*.json`` payloads so a
perf run carries its own span/counter breakdown.

Spans are aggregated by ``(name, detail)`` where the detail is the first
identifying tag present (phase, activity/operator id, chain, category,
...) — this groups the hot rows the way a human reads them: HS phases
line up as four rows, engine operators as one row per activity.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = ["load_events", "summarize", "render_summary"]

#: Tag keys that identify a span row in the summary, in priority order.
_DETAIL_TAGS = (
    "phase",
    "activity",
    "operator",
    "component",
    "chain",
    "category",
    "algorithm",
)


def load_events(path: str) -> list[dict[str, Any]]:
    """Parse a telemetry JSONL file (meta lines included)."""
    events: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            events.append(json.loads(line))
    return events


def _span_detail(tags: dict[str, Any]) -> str:
    for key in _DETAIL_TAGS:
        if key in tags:
            return f"{key}={tags[key]}"
    return ""


def _label(name: str, tags: dict[str, Any], detail: str = "") -> str:
    if detail:
        return f"{name}[{detail}]"
    if tags:
        parts = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
        return f"{name}[{parts}]"
    return name


def _event_detail(fields: dict[str, Any]) -> str:
    """Aggregation key for structured events.

    Provenance events (``search.transition``) group by the decision that
    was made — algorithm × mnemonic × accepted — which reads as "HS
    considered 214 SWAs and accepted 180"; other events group by name.
    """
    parts: list[str] = []
    if "algorithm" in fields:
        parts.append(f"algorithm={fields['algorithm']}")
    if "mnemonic" in fields:
        parts.append(f"mnemonic={fields['mnemonic']}")
    if "accepted" in fields:
        parts.append(
            "accepted" if fields["accepted"] else "rejected"
        )
    return ",".join(parts)


def summarize(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate events into a JSON-able summary dict."""
    span_rows: dict[str, dict[str, Any]] = {}
    counter_rows: dict[str, int] = {}
    gauge_rows: dict[str, dict[str, Any]] = {}
    event_rows: dict[str, int] = {}
    span_count = 0
    event_count = 0
    for event in events:
        kind = event.get("type")
        if kind == "event":
            event_count += 1
            fields = event.get("fields", {})
            detail = _event_detail(fields)
            label = (
                f"{event['name']}[{detail}]" if detail else str(event["name"])
            )
            event_rows[label] = event_rows.get(label, 0) + 1
        elif kind == "span":
            span_count += 1
            tags = event.get("tags", {})
            label = _label(event["name"], tags, _span_detail(tags))
            row = span_rows.setdefault(
                label,
                {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0},
            )
            seconds = float(event.get("seconds", 0.0))
            row["count"] += 1
            row["total_seconds"] += seconds
            row["max_seconds"] = max(row["max_seconds"], seconds)
        elif kind == "counter":
            label = _label(event["name"], event.get("tags", {}))
            counter_rows[label] = counter_rows.get(label, 0) + int(
                event.get("value", 0)
            )
        elif kind == "gauge":
            label = _label(event["name"], event.get("tags", {}))
            row = gauge_rows.setdefault(label, {"value": None, "max": None})
            for key in ("value", "max"):
                value = event.get(key)
                if value is not None and (
                    row[key] is None or value > row[key]
                ):
                    row[key] = value
    for row in span_rows.values():
        row["mean_seconds"] = (
            row["total_seconds"] / row["count"] if row["count"] else 0.0
        )
        for key in ("total_seconds", "max_seconds", "mean_seconds"):
            row[key] = round(row[key], 6)
    return {
        "span_events": span_count,
        "structured_events": event_count,
        "spans": dict(sorted(span_rows.items())),
        "counters": dict(sorted(counter_rows.items())),
        "gauges": dict(sorted(gauge_rows.items())),
        "events": dict(sorted(event_rows.items())),
    }


def render_summary(summary: dict[str, Any]) -> str:
    """Render a :func:`summarize` dict as fixed-width tables."""
    lines: list[str] = []
    spans = summary.get("spans", {})
    if spans:
        width = max(len(label) for label in spans)
        width = max(width, len("span"))
        lines.append(
            f"{'span':<{width}}  {'count':>7}  {'total ms':>10}  "
            f"{'mean ms':>10}  {'max ms':>10}"
        )
        for label, row in spans.items():
            lines.append(
                f"{label:<{width}}  {row['count']:>7}  "
                f"{1000 * row['total_seconds']:>10.2f}  "
                f"{1000 * row['mean_seconds']:>10.2f}  "
                f"{1000 * row['max_seconds']:>10.2f}"
            )
    else:
        lines.append("no spans recorded")
    counters = summary.get("counters", {})
    if counters:
        width = max(max(len(label) for label in counters), len("counter"))
        lines.append("")
        lines.append(f"{'counter':<{width}}  {'value':>12}")
        for label, value in counters.items():
            lines.append(f"{label:<{width}}  {value:>12}")
    gauges = summary.get("gauges", {})
    if gauges:
        width = max(max(len(label) for label in gauges), len("gauge"))
        lines.append("")
        lines.append(f"{'gauge':<{width}}  {'last':>12}  {'max':>12}")
        for label, row in gauges.items():
            last = row["value"] if row["value"] is not None else "—"
            peak = row["max"] if row["max"] is not None else "—"
            lines.append(f"{label:<{width}}  {last:>12}  {peak:>12}")
    event_rows = summary.get("events", {})
    if event_rows:
        width = max(max(len(label) for label in event_rows), len("event"))
        lines.append("")
        lines.append(f"{'event':<{width}}  {'count':>12}")
        for label, value in event_rows.items():
            lines.append(f"{label:<{width}}  {value:>12}")
    return "\n".join(lines)
