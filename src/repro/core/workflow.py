"""The ETL workflow graph — the *state* of the search problem (section 2.1).

An ETL workflow is a DAG ``G(V, E)`` with ``V = A ∪ RS`` (activities and
recordsets) and ``E = Pr`` (data-provider relationships).  This module
implements the graph, its structural validation, schema propagation
("after each transition ... schemata are automatically re-generated"),
and the *local groups* decomposition HS uses (maximal linear paths of unary
activities, bounded by binary activities and recordsets).

Binary activities have ordered inputs: every edge carries a ``port``
attribute (0 or 1); difference is the only shipped non-commutative binary,
but ports are maintained uniformly.

Workflows are mutable while being built; search code treats states as
immutable and lets transitions work on :meth:`ETLWorkflow.copy` copies
(node objects — activities and recordsets — are shared between copies,
which keeps state generation cheap).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from dataclasses import dataclass

import networkx as nx

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.exceptions import SchemaError, WorkflowError

__all__ = ["Node", "DerivedSchemas", "ETLWorkflow"]

Node = Activity | RecordSet


@dataclass(frozen=True)
class DerivedSchemas:
    """The regenerated input/output schemata of one node in one state."""

    inputs: tuple[Schema, ...]
    output: Schema


class ETLWorkflow:
    """A directed acyclic graph of activities and recordsets."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._ids: set[str] = set()
        self._topo_cache: list[Node] | None = None
        self._providers_cache: dict[Node, list[Node]] | None = None

    def _invalidate(self) -> None:
        self._topo_cache = None
        self._providers_cache = None

    # -- construction ----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Add an activity or recordset; returns it for chaining."""
        if not isinstance(node, (Activity, RecordSet)):
            raise WorkflowError(f"not a workflow node: {node!r}")
        if node in self._graph:
            raise WorkflowError(f"node {node!r} already in workflow")
        if node.id in self._ids:
            raise WorkflowError(f"duplicate node id {node.id!r}: {node!r}")
        self._graph.add_node(node)
        self._ids.add(node.id)
        self._invalidate()
        return node

    def add_edge(self, provider: Node, consumer: Node, port: int = 0) -> None:
        """Record that ``consumer`` receives data from ``provider``.

        ``port`` selects the input schema of a binary consumer (0 = left,
        1 = right); unary consumers always use port 0.
        """
        for node in (provider, consumer):
            if node not in self._graph:
                raise WorkflowError(f"node {node!r} not in workflow")
        if port not in (0, 1):
            raise WorkflowError(f"port must be 0 or 1, got {port}")
        if self._graph.has_edge(provider, consumer):
            raise WorkflowError(
                f"edge {provider.id} -> {consumer.id} already exists"
            )
        self._graph.add_edge(provider, consumer, port=port)
        self._invalidate()

    def remove_edge(self, provider: Node, consumer: Node) -> None:
        self._graph.remove_edge(provider, consumer)
        self._invalidate()

    def remove_node(self, node: Node) -> None:
        self._graph.remove_node(node)
        self._ids.discard(node.id)
        self._invalidate()

    def copy(self) -> "ETLWorkflow":
        """A structural copy sharing the (immutable) node objects."""
        duplicate = ETLWorkflow()
        duplicate._graph = self._graph.copy()
        duplicate._ids = set(self._ids)
        return duplicate

    # -- inspection --------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

    def __contains__(self, node: object) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def nodes(self) -> Iterator[Node]:
        return iter(self._graph.nodes)

    def activities(self) -> Iterator[Activity]:
        return (n for n in self._graph.nodes if isinstance(n, Activity))

    def recordsets(self) -> Iterator[RecordSet]:
        return (n for n in self._graph.nodes if isinstance(n, RecordSet))

    def sources(self) -> list[RecordSet]:
        """The recordsets in RS_S, ordered by id."""
        found = [n for n in self.recordsets() if n.is_source]
        return sorted(found, key=lambda n: n.id)

    def targets(self) -> list[RecordSet]:
        """The recordsets in RS_T, ordered by id."""
        found = [n for n in self.recordsets() if n.is_target]
        return sorted(found, key=lambda n: n.id)

    def node_by_id(self, node_id: str) -> Node:
        for node in self._graph.nodes:
            if node.id == node_id:
                return node
        raise WorkflowError(f"no node with id {node_id!r}")

    def providers(self, node: Node) -> list[Node]:
        """Data providers of ``node``, ordered by input port (cached)."""
        cache = self._providers_cache
        if cache is None:
            cache = {}
            self._providers_cache = cache
        cached = cache.get(node)
        if cached is None:
            cached = sorted(
                self._graph.predecessors(node),
                key=lambda p: self._graph.edges[p, node]["port"],
            )
            cache[node] = cached
        return cached

    def consumers(self, node: Node) -> list[Node]:
        """Data consumers of ``node`` (ordered by node id for determinism)."""
        return sorted(self._graph.successors(node), key=lambda n: n.id)

    def edge_port(self, provider: Node, consumer: Node) -> int:
        return self._graph.edges[provider, consumer]["port"]

    def topological_order(self) -> list[Node]:
        """A deterministic topological order (ties broken by node id).

        Kahn's algorithm with an id-ordered ready heap; raises
        :class:`~repro.exceptions.WorkflowError` on cycles.  Cached; any
        mutation of the graph invalidates the cache.  Search code treats
        workflows as immutable once built, so the cache is computed once
        per state.
        """
        if self._topo_cache is None:
            pred = self._graph.pred
            succ = self._graph.succ
            in_degree = {node: len(pred[node]) for node in pred}
            ready = [
                (node.id, node) for node, degree in in_degree.items() if degree == 0
            ]
            heapq.heapify(ready)
            order: list[Node] = []
            while ready:
                _, node = heapq.heappop(ready)
                order.append(node)
                for consumer in succ[node]:
                    in_degree[consumer] -= 1
                    if in_degree[consumer] == 0:
                        heapq.heappush(ready, (consumer.id, consumer))
            if len(order) != len(in_degree):
                raise WorkflowError("workflow graph contains a cycle")
            self._topo_cache = order
        return self._topo_cache

    def downstream(self, node: Node) -> set[Node]:
        """All nodes reachable from ``node`` (excluding itself)."""
        return set(nx.descendants(self._graph, node))

    # -- validation -----------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural well-formedness rules of section 2.1.

        Raises :class:`~repro.exceptions.WorkflowError` when the graph is
        not a DAG, an activity lacks a provider or consumer, an arity does
        not match the in-degree, or input ports are wired inconsistently.
        """
        if self._graph.number_of_nodes() == 0:
            raise WorkflowError("empty workflow")
        self.topological_order()  # raises on cycles
        pred = self._graph.pred
        succ = self._graph.succ
        for node in self._graph.nodes:
            in_deg = len(pred[node])
            out_deg = len(succ[node])
            if isinstance(node, Activity):
                if in_deg != node.arity:
                    raise WorkflowError(
                        f"activity {node.id} ({node.name}) has arity "
                        f"{node.arity} but {in_deg} provider(s)"
                    )
                if out_deg == 0:
                    raise WorkflowError(
                        f"activity {node.id} ({node.name}) has no consumer"
                    )
                ports = sorted(
                    data["port"] for data in pred[node].values()
                )
                expected = list(range(node.arity))
                if ports != expected:
                    raise WorkflowError(
                        f"activity {node.id}: input ports {ports} != {expected}"
                    )
            else:  # RecordSet
                if node.kind is RecordSetKind.SOURCE:
                    if in_deg != 0:
                        raise WorkflowError(
                            f"source recordset {node.name} has a provider"
                        )
                    if out_deg == 0:
                        raise WorkflowError(
                            f"source recordset {node.name} has no consumer"
                        )
                elif node.kind is RecordSetKind.TARGET:
                    if out_deg != 0:
                        raise WorkflowError(
                            f"target recordset {node.name} has a consumer"
                        )
                    if in_deg != 1:
                        raise WorkflowError(
                            f"target recordset {node.name} must have exactly "
                            f"one provider, has {in_deg}"
                        )
                else:
                    if in_deg != 1 or out_deg == 0:
                        raise WorkflowError(
                            f"intermediate recordset {node.name} must have one "
                            f"provider and at least one consumer"
                        )

    # -- schema propagation (section 3.2 / Theorem 1) ----------------------------------

    def propagate_schemas(self) -> dict[Node, DerivedSchemas]:
        """Regenerate every node's input/output schemata from the sources.

        Walks the graph in topological order, deriving each activity's
        output schema from its providers via the template rules.  Raises
        :class:`~repro.exceptions.SchemaError` when an activity's
        functionality schema is not covered by its input, when union-family
        branches disagree, or when a target recordset would receive data
        under a schema incompatible with its declared one.

        A state is *valid* exactly when this method succeeds — which is how
        the library enforces swap conditions (3) and (4) "both before and
        after" a transition: the transition is attempted on a copy and the
        copy is propagated.
        """
        derived: dict[Node, DerivedSchemas] = {}
        for node in self.topological_order():
            provider_outputs = tuple(
                derived[p].output for p in self.providers(node)
            )
            if isinstance(node, RecordSet):
                if node.is_source:
                    derived[node] = DerivedSchemas((), node.schema)
                    continue
                received = provider_outputs[0]
                if not received.compatible(node.schema):
                    raise SchemaError(
                        f"recordset {node.name} declared {node.schema} but "
                        f"receives {received}"
                    )
                derived[node] = DerivedSchemas(provider_outputs, node.schema)
                continue
            output = node.derive_output(provider_outputs)
            derived[node] = DerivedSchemas(provider_outputs, output)
        return derived

    def is_valid(self) -> bool:
        """True when the workflow is structurally and schema-wise sound."""
        try:
            self.validate()
            self.propagate_schemas()
        except (WorkflowError, SchemaError):
            return False
        return True

    # -- local groups (section 3.2) ---------------------------------------------------

    def local_groups(self) -> list[list[Activity]]:
        """Maximal linear paths of unary activities.

        Borders are binary activities and recordsets (and fan-out points).
        For Fig. 1 the groups are ``{3}``, ``{4,5,6}`` and ``{8}``.
        Groups are returned in topological order of their first member.
        """
        groups: list[list[Activity]] = []
        for node in self.topological_order():
            if not isinstance(node, Activity) or not node.is_unary:
                continue
            if self._starts_group(node):
                group = [node]
                current: Node = node
                while True:
                    consumers = self.consumers(current)
                    if len(consumers) != 1:
                        break
                    nxt = consumers[0]
                    if not isinstance(nxt, Activity) or not nxt.is_unary:
                        break
                    group.append(nxt)
                    current = nxt
                groups.append(group)
        return groups

    def _starts_group(self, activity: Activity) -> bool:
        providers = self.providers(activity)
        if len(providers) != 1:
            return False
        provider = providers[0]
        if not isinstance(provider, Activity) or not provider.is_unary:
            return True
        # A unary provider with fan-out ends its own chain, so this
        # activity starts a fresh group.
        return len(self.consumers(provider)) != 1

    def group_of(self, activity: Activity) -> list[Activity]:
        """The local group containing ``activity``."""
        for group in self.local_groups():
            if activity in group:
                return group
        raise WorkflowError(
            f"activity {activity.id} is not part of any local group"
        )

    def __repr__(self) -> str:
        n_act = sum(1 for _ in self.activities())
        n_rs = sum(1 for _ in self.recordsets())
        return f"ETLWorkflow({n_act} activities, {n_rs} recordsets)"
