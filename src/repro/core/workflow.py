"""The ETL workflow graph — the *state* of the search problem (section 2.1).

An ETL workflow is a DAG ``G(V, E)`` with ``V = A ∪ RS`` (activities and
recordsets) and ``E = Pr`` (data-provider relationships).  This module
implements the graph, its structural validation, schema propagation
("after each transition ... schemata are automatically re-generated"),
and the *local groups* decomposition HS uses (maximal linear paths of unary
activities, bounded by binary activities and recordsets).

Binary activities have ordered inputs: every edge carries a ``port``
attribute (0 or 1); difference is the only shipped non-commutative binary,
but ports are maintained uniformly.

Workflows are mutable while being built; search code treats states as
immutable and lets transitions work on :meth:`ETLWorkflow.copy` copies
(node objects — activities and recordsets — are shared between copies,
which keeps state generation cheap).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from dataclasses import dataclass

import networkx as nx

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.exceptions import SchemaError, WorkflowError

__all__ = ["Node", "DerivedSchemas", "ETLWorkflow"]

Node = Activity | RecordSet


@dataclass(frozen=True)
class DerivedSchemas:
    """The regenerated input/output schemata of one node in one state."""

    inputs: tuple[Schema, ...]
    output: Schema


class ETLWorkflow:
    """A directed acyclic graph of activities and recordsets."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._ids: set[str] = set()
        self._topo_cache: list[Node] | None = None
        self._providers_cache: dict[Node, list[Node]] | None = None
        self._consumers_cache: dict[Node, list[Node]] | None = None
        self._schema_cache: dict[Node, DerivedSchemas] | None = None
        self._targets_cache: list[RecordSet] | None = None
        # Copy-on-write bookkeeping: nodes whose succ/pred inner dicts
        # are private to this instance.  A fresh workflow owns everything
        # it builds; a copy() owns nothing until a mutation clones the
        # touched inner dict (see _own_succ/_own_pred).
        self._owned_succ: set[Node] = set()
        self._owned_pred: set[Node] = set()

    def _own_succ(self, node: Node) -> dict:
        succ = self._graph._succ
        if node not in self._owned_succ:
            succ[node] = dict(succ[node])
            self._owned_succ.add(node)
        return succ[node]

    def _own_pred(self, node: Node) -> dict:
        pred = self._graph._pred
        if node not in self._owned_pred:
            pred[node] = dict(pred[node])
            self._owned_pred.add(node)
        return pred[node]

    def _invalidate(self) -> None:
        """Drop every derived cache (node population changed)."""
        self._topo_cache = None
        self._providers_cache = None
        self._consumers_cache = None
        self._schema_cache = None
        self._targets_cache = None

    def _invalidate_edge(self, provider: Node, consumer: Node) -> None:
        """Targeted eviction for one edge change.

        Only the consumer's provider list and the provider's consumer
        list are stale; the rest of the adjacency caches survive, which
        is what makes rewired copies cheap on the search hot path (a SWA
        touches six edges, so six entries are evicted instead of the
        whole cache).  Node population is unchanged, so the targets
        cache survives too.
        """
        self._topo_cache = None
        self._schema_cache = None
        providers_cache = self._providers_cache
        if providers_cache is not None:
            providers_cache.pop(consumer, None)
        consumers_cache = self._consumers_cache
        if consumers_cache is not None:
            consumers_cache.pop(provider, None)

    # -- construction ----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Add an activity or recordset; returns it for chaining."""
        if not isinstance(node, (Activity, RecordSet)):
            raise WorkflowError(f"not a workflow node: {node!r}")
        if node in self._graph:
            raise WorkflowError(f"node {node!r} already in workflow")
        if node.id in self._ids:
            raise WorkflowError(f"duplicate node id {node.id!r}: {node!r}")
        self._graph.add_node(node)
        self._owned_succ.add(node)
        self._owned_pred.add(node)
        self._ids.add(node.id)
        self._invalidate()
        return node

    def add_edge(self, provider: Node, consumer: Node, port: int = 0) -> None:
        """Record that ``consumer`` receives data from ``provider``.

        ``port`` selects the input schema of a binary consumer (0 = left,
        1 = right); unary consumers always use port 0.
        """
        for node in (provider, consumer):
            if node not in self._graph:
                raise WorkflowError(f"node {node!r} not in workflow")
        if port not in (0, 1):
            raise WorkflowError(f"port must be 0 or 1, got {port}")
        if self._graph.has_edge(provider, consumer):
            raise WorkflowError(
                f"edge {provider.id} -> {consumer.id} already exists"
            )
        data = {"port": port}
        self._own_succ(provider)[consumer] = data
        self._own_pred(consumer)[provider] = data
        self._invalidate_edge(provider, consumer)

    def remove_edge(self, provider: Node, consumer: Node) -> None:
        try:
            del self._own_succ(provider)[consumer]
            del self._own_pred(consumer)[provider]
        except KeyError:
            raise WorkflowError(
                f"no edge {provider.id} -> {consumer.id}"
            ) from None
        self._invalidate_edge(provider, consumer)

    def remove_node(self, node: Node) -> None:
        graph = self._graph
        if node not in graph._node:
            raise WorkflowError(f"node {node!r} not in workflow")
        for consumer in list(graph._succ[node]):
            del self._own_pred(consumer)[node]
        for provider in list(graph._pred[node]):
            del self._own_succ(provider)[node]
        del graph._node[node]
        del graph._succ[node]
        del graph._pred[node]
        self._owned_succ.discard(node)
        self._owned_pred.discard(node)
        self._ids.discard(node.id)
        self._invalidate()

    def copy(self) -> "ETLWorkflow":
        """A copy-on-write structural copy sharing the node objects.

        State generation is the search hot path, so instead of cloning
        the adjacency (as ``nx.DiGraph.copy`` would, one Python-level
        insert per node and edge), the copy *shares* the parent's inner
        succ/pred dicts and owns none of them; every graph mutation goes
        through this class, and the mutators clone an inner dict the
        first time they touch it (``_own_succ``/``_own_pred``).  A SWA
        successor therefore clones four small dicts out of ~2·N.

        Node-attribute dicts are shared too (nothing ever writes them);
        edge-data dicts are shared because :meth:`add_edge` refuses
        duplicate edges, so a data dict is never updated in place.  The
        adjacency caches carry over; rewiring evicts what it touches.
        The parent must not be mutated afterwards — search code treats
        states as immutable once explored, which is what makes the
        sharing sound.
        """
        duplicate = ETLWorkflow()
        graph = duplicate._graph
        graph._node.update(self._graph._node)
        graph._succ.update(self._graph._succ)
        graph._pred.update(self._graph._pred)
        # Both sides now share the inner dicts, so neither may write them
        # in place: dropping this instance's ownership forces any later
        # mutation of *either* side through the clone-on-write path.
        self._owned_succ.clear()
        self._owned_pred.clear()
        duplicate._ids = set(self._ids)
        if self._providers_cache is not None:
            duplicate._providers_cache = dict(self._providers_cache)
        if self._consumers_cache is not None:
            duplicate._consumers_cache = dict(self._consumers_cache)
        duplicate._targets_cache = self._targets_cache
        return duplicate

    # -- inspection --------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

    def __contains__(self, node: object) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def nodes(self) -> Iterator[Node]:
        return iter(self._graph._node)

    def activities(self) -> Iterator[Activity]:
        return (n for n in self._graph._node if isinstance(n, Activity))

    def recordsets(self) -> Iterator[RecordSet]:
        return (n for n in self._graph._node if isinstance(n, RecordSet))

    def sources(self) -> list[RecordSet]:
        """The recordsets in RS_S, ordered by id."""
        found = [n for n in self.recordsets() if n.is_source]
        return sorted(found, key=lambda n: n.id)

    def targets(self) -> list[RecordSet]:
        """The recordsets in RS_T, ordered by id (cached; edge changes
        cannot alter the target population, only node changes can)."""
        cached = self._targets_cache
        if cached is None:
            found = [n for n in self.recordsets() if n.is_target]
            cached = sorted(found, key=lambda n: n.id)
            self._targets_cache = cached
        return cached

    def node_by_id(self, node_id: str) -> Node:
        for node in self._graph.nodes:
            if node.id == node_id:
                return node
        raise WorkflowError(f"no node with id {node_id!r}")

    def providers(self, node: Node) -> list[Node]:
        """Data providers of ``node``, ordered by input port (cached)."""
        cache = self._providers_cache
        if cache is None:
            cache = {}
            self._providers_cache = cache
        cached = cache.get(node)
        if cached is None:
            pred = self._graph._pred[node]
            if len(pred) <= 1:
                cached = list(pred)
            else:
                cached = sorted(pred, key=lambda p: pred[p]["port"])
            cache[node] = cached
        return cached

    def consumers(self, node: Node) -> list[Node]:
        """Data consumers of ``node`` (ordered by node id for determinism)."""
        cache = self._consumers_cache
        if cache is None:
            cache = {}
            self._consumers_cache = cache
        cached = cache.get(node)
        if cached is None:
            succ = self._graph._succ[node]
            if len(succ) <= 1:
                cached = list(succ)
            else:
                cached = sorted(succ, key=lambda n: n.id)
            cache[node] = cached
        return cached

    def edge_port(self, provider: Node, consumer: Node) -> int:
        return self._graph._succ[provider][consumer]["port"]

    def topological_order(self) -> list[Node]:
        """A deterministic topological order (ties broken by node id).

        Kahn's algorithm with an id-ordered ready heap; raises
        :class:`~repro.exceptions.WorkflowError` on cycles.  Cached; any
        mutation of the graph invalidates the cache.  Search code treats
        workflows as immutable once built, so the cache is computed once
        per state.
        """
        if self._topo_cache is None:
            pred = self._graph._pred
            succ = self._graph._succ
            in_degree = {node: len(pred[node]) for node in pred}
            ready = [
                (node.id, node) for node, degree in in_degree.items() if degree == 0
            ]
            heapq.heapify(ready)
            order: list[Node] = []
            while ready:
                _, node = heapq.heappop(ready)
                order.append(node)
                for consumer in succ[node]:
                    in_degree[consumer] -= 1
                    if in_degree[consumer] == 0:
                        heapq.heappush(ready, (consumer.id, consumer))
            if len(order) != len(in_degree):
                raise WorkflowError("workflow graph contains a cycle")
            self._topo_cache = order
        return self._topo_cache

    def adopt_topology(self, order: list[Node]) -> None:
        """Install a precomputed topological order (fast successor path).

        Transitions that provably preserve a patched parent order (SWA:
        the parent order with the two swapped nodes exchanged) hand it to
        the rewired copy so Kahn's algorithm is skipped.  The caller is
        responsible for validity; ``REPRO_COST_ORACLE=1`` re-derives the
        order from scratch and asserts the patch is a valid linearisation.
        """
        self._topo_cache = order

    def downstream(self, node: Node) -> set[Node]:
        """All nodes reachable from ``node`` (excluding itself)."""
        return set(nx.descendants(self._graph, node))

    # -- validation -----------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural well-formedness rules of section 2.1.

        Raises :class:`~repro.exceptions.WorkflowError` when the graph is
        not a DAG, an activity lacks a provider or consumer, an arity does
        not match the in-degree, or input ports are wired inconsistently.
        """
        if self._graph.number_of_nodes() == 0:
            raise WorkflowError("empty workflow")
        self.topological_order()  # raises on cycles
        pred = self._graph.pred
        succ = self._graph.succ
        for node in self._graph.nodes:
            in_deg = len(pred[node])
            out_deg = len(succ[node])
            if isinstance(node, Activity):
                if in_deg != node.arity:
                    raise WorkflowError(
                        f"activity {node.id} ({node.name}) has arity "
                        f"{node.arity} but {in_deg} provider(s)"
                    )
                if out_deg == 0:
                    raise WorkflowError(
                        f"activity {node.id} ({node.name}) has no consumer"
                    )
                ports = sorted(
                    data["port"] for data in pred[node].values()
                )
                expected = list(range(node.arity))
                if ports != expected:
                    raise WorkflowError(
                        f"activity {node.id}: input ports {ports} != {expected}"
                    )
            else:  # RecordSet
                if node.kind is RecordSetKind.SOURCE:
                    if in_deg != 0:
                        raise WorkflowError(
                            f"source recordset {node.name} has a provider"
                        )
                    if out_deg == 0:
                        raise WorkflowError(
                            f"source recordset {node.name} has no consumer"
                        )
                elif node.kind is RecordSetKind.TARGET:
                    if out_deg != 0:
                        raise WorkflowError(
                            f"target recordset {node.name} has a consumer"
                        )
                    if in_deg != 1:
                        raise WorkflowError(
                            f"target recordset {node.name} must have exactly "
                            f"one provider, has {in_deg}"
                        )
                else:
                    if in_deg != 1 or out_deg == 0:
                        raise WorkflowError(
                            f"intermediate recordset {node.name} must have one "
                            f"provider and at least one consumer"
                        )

    # -- schema propagation (section 3.2 / Theorem 1) ----------------------------------

    def propagate_schemas(self) -> dict[Node, DerivedSchemas]:
        """Regenerate every node's input/output schemata from the sources.

        Walks the graph in topological order, deriving each activity's
        output schema from its providers via the template rules.  Raises
        :class:`~repro.exceptions.SchemaError` when an activity's
        functionality schema is not covered by its input, when union-family
        branches disagree, or when a target recordset would receive data
        under a schema incompatible with its declared one.

        A state is *valid* exactly when this method succeeds — which is how
        the library enforces swap conditions (3) and (4) "both before and
        after" a transition: the transition is attempted on a copy and the
        copy is propagated.
        """
        cached = self._schema_cache
        if cached is not None:
            return cached
        derived: dict[Node, DerivedSchemas] = {}
        for node in self.topological_order():
            derived[node] = self._derive_node(node, derived)
        self._schema_cache = derived
        return derived

    def _derive_node(
        self, node: Node, derived: dict[Node, DerivedSchemas]
    ) -> DerivedSchemas:
        """Derive one node's schemas given its providers' entries."""
        provider_outputs = tuple(
            derived[p].output for p in self.providers(node)
        )
        if isinstance(node, RecordSet):
            if node.is_source:
                return DerivedSchemas((), node.schema)
            received = provider_outputs[0]
            if not received.compatible(node.schema):
                raise SchemaError(
                    f"recordset {node.name} declared {node.schema} but "
                    f"receives {received}"
                )
            return DerivedSchemas(provider_outputs, node.schema)
        output = node.derive_output(provider_outputs)
        return DerivedSchemas(provider_outputs, output)

    def propagate_schemas_incremental(
        self,
        parent: "ETLWorkflow",
        affected: tuple[Node, ...],
    ) -> dict[Node, DerivedSchemas]:
        """Regenerate schemata reusing a parent state's derived map.

        ``self`` is a rewired copy of ``parent``; ``affected`` are the
        nodes the transition moved, created or replaced.  Work-list
        propagation mirrors :func:`repro.core.cost.estimator
        .estimate_incremental`: starting from the affected nodes (plus any
        node the parent never derived), each dirty node is re-derived and
        its consumers join the work list only while its input schemas
        actually changed.  Theorem 1 (schemata of unaffected activities
        are invariant under equivalent transitions) makes the walk
        terminate after the local neighbourhood in the common case.

        Raises :class:`~repro.exceptions.SchemaError` on exactly the
        states the full :meth:`propagate_schemas` would reject: a dirty
        node fails its own derivation the same way, and a clean node
        cannot newly violate (its inputs are unchanged from a valid
        parent).
        """
        parent_derived = parent.propagate_schemas()
        if len(parent_derived) != len(self):
            derived = {
                node: schemas
                for node, schemas in parent_derived.items()
                if node in self
            }
        else:
            # Equal node count ⇒ identical population: every shipped
            # transition that replaces nodes also changes the count.
            derived = dict(parent_derived)
        dirty = {node for node in affected if node in self}
        # Direct consumers of affected nodes changed *provider identity*
        # even when the provider's derived schemas coincide; re-derive
        # them unconditionally so every clean node's parent entry is
        # known to have been computed from the same providers.
        for node in tuple(dirty):
            for consumer in self.consumers(node):
                dirty.add(consumer)
        for node in self.topological_order():
            if node not in derived:
                dirty.add(node)  # created by the transition (clone/merge)
            if node not in dirty:
                continue
            old = derived.get(node)
            fresh = self._derive_node(node, derived)
            derived[node] = fresh
            if old is None or fresh != old:
                for consumer in self.consumers(node):
                    dirty.add(consumer)
        self._schema_cache = derived
        return derived

    def validate_incremental(
        self, parent: "ETLWorkflow", affected: tuple[Node, ...]
    ) -> None:
        """Structural validation scoped to a transition's neighbourhood.

        ``self`` is a rewired copy of a *validated* parent.  Rewiring only
        changes degrees and ports of the affected nodes and their direct
        neighbours, so the section 2.1 well-formedness rules are re-checked
        there; acyclicity is covered by :meth:`topological_order` (the
        fast successor path computes it anyway, and Kahn raises on
        cycles).  ``REPRO_COST_ORACLE=1`` cross-checks against the full
        :meth:`validate`.
        """
        self.topological_order()  # raises on cycles
        pred = self._graph._pred
        succ = self._graph._succ
        scope: set[Node] = set()
        for node in affected:
            if node not in self._graph:
                continue
            scope.add(node)
            scope.update(pred[node])
            scope.update(succ[node])
        for node in scope:
            in_deg = len(pred[node])
            out_deg = len(succ[node])
            if isinstance(node, Activity):
                if in_deg != node.arity:
                    raise WorkflowError(
                        f"activity {node.id} ({node.name}) has arity "
                        f"{node.arity} but {in_deg} provider(s)"
                    )
                if out_deg == 0:
                    raise WorkflowError(
                        f"activity {node.id} ({node.name}) has no consumer"
                    )
                ports = sorted(
                    data["port"] for data in pred[node].values()
                )
                if ports != list(range(node.arity)):
                    raise WorkflowError(
                        f"activity {node.id}: input ports {ports} != "
                        f"{list(range(node.arity))}"
                    )
            else:
                if node.kind is RecordSetKind.SOURCE:
                    if in_deg != 0 or out_deg == 0:
                        raise WorkflowError(
                            f"source recordset {node.name} is miswired"
                        )
                elif node.kind is RecordSetKind.TARGET:
                    if out_deg != 0 or in_deg != 1:
                        raise WorkflowError(
                            f"target recordset {node.name} is miswired"
                        )
                elif in_deg != 1 or out_deg == 0:
                    raise WorkflowError(
                        f"intermediate recordset {node.name} must have one "
                        f"provider and at least one consumer"
                    )

    def is_valid(self) -> bool:
        """True when the workflow is structurally and schema-wise sound."""
        try:
            self.validate()
            self.propagate_schemas()
        except (WorkflowError, SchemaError):
            return False
        return True

    # -- local groups (section 3.2) ---------------------------------------------------

    def local_groups(self) -> list[list[Activity]]:
        """Maximal linear paths of unary activities.

        Borders are binary activities and recordsets (and fan-out points).
        For Fig. 1 the groups are ``{3}``, ``{4,5,6}`` and ``{8}``.
        Groups are returned in topological order of their first member.
        """
        groups: list[list[Activity]] = []
        for node in self.topological_order():
            if not isinstance(node, Activity) or not node.is_unary:
                continue
            if self._starts_group(node):
                group = [node]
                current: Node = node
                while True:
                    consumers = self.consumers(current)
                    if len(consumers) != 1:
                        break
                    nxt = consumers[0]
                    if not isinstance(nxt, Activity) or not nxt.is_unary:
                        break
                    group.append(nxt)
                    current = nxt
                groups.append(group)
        return groups

    def _starts_group(self, activity: Activity) -> bool:
        providers = self.providers(activity)
        if len(providers) != 1:
            return False
        provider = providers[0]
        if not isinstance(provider, Activity) or not provider.is_unary:
            return True
        # A unary provider with fan-out ends its own chain, so this
        # activity starts a fresh group.
        return len(self.consumers(provider)) != 1

    def group_of(self, activity: Activity) -> list[Activity]:
        """The local group containing ``activity``."""
        for group in self.local_groups():
            if activity in group:
                return group
        raise WorkflowError(
            f"activity {activity.id} is not part of any local group"
        )

    def __repr__(self) -> str:
        n_act = sum(1 for _ in self.activities())
        n_rs = sum(1 for _ in self.recordsets())
        return f"ETLWorkflow({n_act} activities, {n_rs} recordsets)"
