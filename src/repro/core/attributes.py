"""Reference attribute names and the naming principle (paper section 3.1).

The paper resolves the homonym/synonym problem ("PARTS1.COST and PARTS2.COST
are homonyms but denote different entities") by mapping every attribute of
the workflow onto a finite set of *reference attribute names*, written Ωn in
the paper, under a simple naming principle:

* all synonyms refer to the same real-world entity, and
* different reference names refer to different entities.

:class:`NamingRegistry` implements that mapping.  Workflow construction code
registers each original attribute (qualified by the recordset it comes from)
together with the real-world *entity* it denotes; the registry hands back a
reference name and refuses mappings that would break the principle.

Throughout the rest of the library, schemas and activity parameters use
reference names only (plain strings), exactly as the paper does after
section 3.1 ("in the sequel, we will employ only reference attribute names").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import NamingError

__all__ = ["AttributeMapping", "NamingRegistry"]


@dataclass(frozen=True)
class AttributeMapping:
    """One resolved attribute: where it came from and what it denotes.

    Attributes:
        original: the attribute name as it appears in the source recordset,
            qualified, e.g. ``"PARTS2.COST"``.
        entity: a human-readable description of the real-world entity,
            e.g. ``"per-delivery cost in dollars"``.
        reference: the reference name used everywhere in the library,
            e.g. ``"DCOST"``.
    """

    original: str
    entity: str
    reference: str


@dataclass
class NamingRegistry:
    """The set Ωn of reference attribute names plus the entity mapping.

    The registry enforces the naming principle at registration time:

    * registering the same *entity* twice under two different reference
      names raises :class:`~repro.exceptions.NamingError`;
    * registering two different entities under the same reference name
      raises :class:`~repro.exceptions.NamingError`;
    * re-registering an identical (entity, reference) pair is a no-op, so
      synonyms from several recordsets naturally converge on one name.

    A registry is optional equipment: the core optimizer works on reference
    names (strings) alone.  Scenario builders use a registry to document and
    sanity-check their name choices.
    """

    _by_reference: dict[str, str] = field(default_factory=dict)
    _by_entity: dict[str, str] = field(default_factory=dict)
    _mappings: list[AttributeMapping] = field(default_factory=list)

    def register(self, original: str, entity: str, reference: str) -> str:
        """Map ``original`` (denoting ``entity``) to ``reference``.

        Returns the reference name for convenience so call sites can write
        ``cost = registry.register("PARTS2.COST", "dollar cost", "DCOST")``.
        """
        known_entity = self._by_reference.get(reference)
        if known_entity is not None and known_entity != entity:
            raise NamingError(
                f"reference name {reference!r} already denotes entity "
                f"{known_entity!r}; cannot also denote {entity!r}"
            )
        known_reference = self._by_entity.get(entity)
        if known_reference is not None and known_reference != reference:
            raise NamingError(
                f"entity {entity!r} is already mapped to reference name "
                f"{known_reference!r}; cannot also map it to {reference!r}"
            )
        self._by_reference[reference] = entity
        self._by_entity[entity] = reference
        self._mappings.append(AttributeMapping(original, entity, reference))
        return reference

    def reference_for(self, entity: str) -> str:
        """Return the reference name of a registered entity."""
        try:
            return self._by_entity[entity]
        except KeyError:
            raise NamingError(f"entity {entity!r} is not registered") from None

    def entity_for(self, reference: str) -> str:
        """Return the entity a reference name denotes."""
        try:
            return self._by_reference[reference]
        except KeyError:
            raise NamingError(
                f"reference name {reference!r} is not registered"
            ) from None

    def fresh(self, base: str, entity: str) -> str:
        """Mint a new reference name derived from ``base`` for ``entity``.

        Used by generated schemas: e.g. an aggregation producing a monthly
        sum of ``ECOST`` can mint ``ECOST_M``.  If ``base`` itself is free it
        is used directly; otherwise a numeric suffix is appended.
        """
        if entity in self._by_entity:
            return self._by_entity[entity]
        candidate = base
        counter = 1
        while candidate in self._by_reference:
            counter += 1
            candidate = f"{base}_{counter}"
        return self.register(f"<generated:{base}>", entity, candidate)

    @property
    def reference_names(self) -> frozenset[str]:
        """The current contents of Ωn."""
        return frozenset(self._by_reference)

    @property
    def mappings(self) -> tuple[AttributeMapping, ...]:
        """All registrations in insertion order (for documentation/tests)."""
        return tuple(self._mappings)
