"""SWA — swapping two adjacent unary activities (sections 2.2 and 3.3).

The paper's applicability conditions:

1. ``a1`` and ``a2`` are adjacent in the graph (``a1`` provides ``a2``);
2. both have a single input and output schema and their output schema has
   exactly one consumer;
3. the functionality schema of each is a subset of its input schema *both
   before and after* the swap (Fig. 5: ``σ(€)`` may not precede ``$2€``);
4. the input schemata remain subsets of their providers' outputs (Fig. 6:
   a projected-out attribute may not be demanded downstream).

Conditions (3) and (4) are enforced by propagating schemas on the swapped
copy (see :class:`repro.core.transitions.base.Transition`).  On top of
those, this implementation adds a *semantic guard* — the conservative
strengthening DESIGN.md documents — because the four schema conditions
alone cannot see value-level interactions:

* a row-wise activity may cross an **aggregation** only when it is a filter
  over group-by attributes, or an in-place *injective* function over
  group-by attributes (the paper's A2E/γ example); two aggregations never
  swap;
* two activities that both *transform values in place* on a shared
  attribute never swap (their compositions need not commute);
* a filter never swaps with an in-place transform touching the same
  attribute.  The naming principle makes such pairs rare by construction
  (a value-changing transform whose consumers are format-sensitive must
  generate a fresh reference name), but rejecting them keeps every allowed
  swap verifiable by the execution engine.
"""

from __future__ import annotations

from repro.core.activity import Activity, CompositeActivity
from repro.core.transitions.base import Transition
from repro.core.workflow import ETLWorkflow, Node
from repro.exceptions import TransitionError
from repro.templates.base import ActivityKind

__all__ = ["Swap"]


class Swap(Transition):
    """``SWA(a1, a2)``: interchange two adjacent unary activities."""

    mnemonic = "SWA"

    def __init__(self, first: Activity, second: Activity):
        self.first = first
        self.second = second

    def describe(self) -> str:
        return f"SWA({self.first.id},{self.second.id})"

    def affected_nodes(self) -> tuple[Node, ...]:
        return (self.first, self.second)

    # -- preconditions ---------------------------------------------------------

    def check(self, workflow: ETLWorkflow) -> None:
        a1, a2 = self.first, self.second
        for activity in (a1, a2):
            if activity not in workflow:
                raise TransitionError(
                    f"{self.describe()}: {activity.id} not in state"
                )
            if not activity.is_unary:
                raise TransitionError(
                    f"{self.describe()}: {activity.id} is not unary"
                )
            if len(workflow.consumers(activity)) != 1:
                raise TransitionError(
                    f"{self.describe()}: {activity.id} must have exactly one "
                    "consumer (condition 2)"
                )
        if workflow.consumers(a1) != [a2]:
            raise TransitionError(
                f"{self.describe()}: activities are not adjacent (condition 1)"
            )
        self._semantic_guard()

    def _semantic_guard(self) -> None:
        a1, a2 = self.first, self.second
        agg_first = _is_aggregating(a1)
        agg_second = _is_aggregating(a2)
        if agg_first and agg_second:
            raise TransitionError(
                f"{self.describe()}: two aggregating activities never swap"
            )
        if agg_first or agg_second:
            aggregate, row_wise = (a1, a2) if agg_first else (a2, a1)
            _guard_crossing_aggregation(self, aggregate, row_wise)
            return
        _guard_row_wise_pair(self, a1, a2)

    # -- fast path -------------------------------------------------------------

    def patched_topology(
        self, parent: ETLWorkflow, successor: ETLWorkflow
    ) -> list[Node] | None:
        """Parent order with ``a1``/``a2`` exchanged is a valid order.

        Proof sketch: ``a1``'s only in-edge comes from a provider placed
        before ``a1``'s old slot (where ``a2`` now sits), ``a2``'s only
        out-edge goes to a consumer placed after ``a2``'s old slot (where
        ``a1`` now sits), the new ``a2 -> a1`` edge runs left-to-right,
        and — because ``a1``'s sole consumer was ``a2`` and ``a2``'s sole
        provider was ``a1`` — no edge connects either activity to any node
        between their slots.  Every other edge kept both endpoints'
        positions.  Hence no Kahn pass (and no cycle check) is needed:
        the swap cannot create a cycle.
        """
        order = list(parent.topological_order())
        index_first = order.index(self.first)
        index_second = order.index(self.second)
        order[index_first], order[index_second] = (
            order[index_second],
            order[index_first],
        )
        return order

    # -- surgery --------------------------------------------------------------

    def rewire(self, workflow: ETLWorkflow) -> None:
        a1, a2 = self.first, self.second
        provider = workflow.providers(a1)[0]
        provider_port = workflow.edge_port(provider, a1)
        consumer = workflow.consumers(a2)[0]
        consumer_port = workflow.edge_port(a2, consumer)
        workflow.remove_edge(provider, a1)
        workflow.remove_edge(a1, a2)
        workflow.remove_edge(a2, consumer)
        workflow.add_edge(provider, a2, port=provider_port)
        workflow.add_edge(a2, a1, port=0)
        workflow.add_edge(a1, consumer, port=consumer_port)


# -- semantic guard helpers ------------------------------------------------------


def _components(activity: Activity) -> tuple[Activity, ...]:
    if isinstance(activity, CompositeActivity):
        flattened: list[Activity] = []
        for component in activity.components:
            flattened.extend(_components(component))
        return tuple(flattened)
    return (activity,)


def _is_aggregating(activity: Activity) -> bool:
    return any(
        c.kind is ActivityKind.AGGREGATION for c in _components(activity)
    )


def _is_in_place_transform(activity: Activity) -> bool:
    """A value-changing transform that keeps its attribute's reference name.

    Detected structurally (FUNCTION kind, reads attributes, generates
    none) so that custom templates are covered, not just the builtin
    ``function_apply``.
    """
    return (
        activity.kind is ActivityKind.FUNCTION
        and len(activity.generated) == 0
        and len(activity.functionality) > 0
    )


def _is_injective(activity: Activity) -> bool:
    """Instance-level injectivity, falling back to the template flag."""
    flag = activity.params.get("injective")
    if flag is not None:
        return bool(flag)
    return activity.template.injective


def _guard_crossing_aggregation(
    transition: Swap, aggregate: Activity, row_wise: Activity
) -> None:
    """Allow only group-preserving activities to cross an aggregation."""
    if _is_aggregating(row_wise):
        raise TransitionError(
            f"{transition.describe()}: two aggregating activities never swap"
        )
    group_by: set[str] = set()
    for component in _components(aggregate):
        if component.kind is ActivityKind.AGGREGATION:
            group_by |= set(component.params["group_by"])
    for component in _components(row_wise):
        fun = component.functionality.as_set
        if not fun <= group_by:
            raise TransitionError(
                f"{transition.describe()}: {component.id} touches "
                f"{sorted(fun - group_by)} which are not group-by attributes"
            )
        if component.kind is ActivityKind.FILTER:
            continue
        if _is_in_place_transform(component) and _is_injective(component):
            continue
        raise TransitionError(
            f"{transition.describe()}: {component.id} ({component.name}) is "
            "neither a filter nor an injective in-place function over the "
            "group-by attributes"
        )


def _guard_row_wise_pair(transition: Swap, a1: Activity, a2: Activity) -> None:
    """Reject value-level interactions between row-wise activities."""
    for c1 in _components(a1):
        for c2 in _components(a2):
            _guard_component_pair(transition, c1, c2)
            _guard_component_pair(transition, c2, c1)


def _guard_component_pair(
    transition: Swap, left: Activity, right: Activity
) -> None:
    if not _is_in_place_transform(left):
        return
    overlap = left.functionality.as_set & right.functionality.as_set
    if not overlap:
        return
    if _is_in_place_transform(right) or right.kind is ActivityKind.FILTER:
        raise TransitionError(
            f"{transition.describe()}: {left.id} transforms "
            f"{sorted(overlap)} in place while {right.id} also reads them"
        )
