"""ShiftFrw / ShiftBkw — moving an activity next to a binary one (Fig. 7).

HS Phase II asks, for a pair of homologous activities, whether both "can be
pushed to be adjacent to their next binary operator" (``ShiftFrw``); Phase
III asks whether an activity can be transferred back in front of a binary
activity (``ShiftBkw``).  Both are realized as chains of SWA transitions,
so every intermediate state is itself a correct state.

Each helper returns the shifted workflow (a new state) or ``None`` when
some swap along the way is inapplicable.  The helpers also report the
intermediate states so callers can count them as *visited* (the paper's
visited-states metric counts every generated state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.activity import Activity
from repro.core.transitions.swap import Swap
from repro.core.workflow import ETLWorkflow

__all__ = ["ShiftResult", "shift_forward", "shift_backward"]


@dataclass
class ShiftResult:
    """Outcome of a shift: the final state plus every state passed through."""

    workflow: ETLWorkflow
    intermediates: list[ETLWorkflow] = field(default_factory=list)
    swaps: list[Swap] = field(default_factory=list)


def shift_forward(
    workflow: ETLWorkflow, activity: Activity, binary: Activity
) -> ShiftResult | None:
    """Push ``activity`` forward until it is the direct provider of ``binary``.

    Returns ``None`` when the activity cannot reach the binary activity via
    applicable swaps (or when ``binary`` is not downstream of it at all).
    """
    current = workflow
    result = ShiftResult(workflow=current)
    guard = len(workflow)  # no path is longer than the node count
    for _ in range(guard):
        consumers = current.consumers(activity)
        if len(consumers) != 1:
            return None
        consumer = consumers[0]
        if consumer is binary:
            result.workflow = current
            return result
        if not isinstance(consumer, Activity) or not consumer.is_unary:
            return None
        swap = Swap(activity, consumer)
        shifted = swap.try_apply_fast(current)
        if shifted is None:
            return None
        current = shifted
        result.intermediates.append(shifted)
        result.swaps.append(swap)
    return None


def shift_backward(
    workflow: ETLWorkflow, activity: Activity, binary: Activity
) -> ShiftResult | None:
    """Pull ``activity`` backward until ``binary`` is its direct provider."""
    current = workflow
    result = ShiftResult(workflow=current)
    guard = len(workflow)
    for _ in range(guard):
        providers = current.providers(activity)
        if len(providers) != 1:
            return None
        provider = providers[0]
        if provider is binary:
            result.workflow = current
            return result
        if not isinstance(provider, Activity) or not provider.is_unary:
            return None
        swap = Swap(provider, activity)
        shifted = swap.try_apply_fast(current)
        if shifted is None:
            return None
        current = shifted
        result.intermediates.append(shifted)
        result.swaps.append(swap)
    return None
