"""MER and SPL — packaging and unpackaging activities (section 3.3).

Merge groups a pair of adjacent unary activities into one opaque
:class:`~repro.core.activity.CompositeActivity` — used when design
constraints dictate that no activity may come between them or that they
must not be commuted (e.g. enriching rows with source information right
before a surrogate-key assignment).  The benefit is proactive search-space
reduction (Heuristic 3).  Split is the inverse; per the paper, splitting
``a+b+c`` yields ``a`` and ``b+c``.

The merged activity's output schema is the second activity's output and
its input schema is the first activity's input; both fall out of the
component-wise schema derivation in :class:`CompositeActivity`.
"""

from __future__ import annotations

from repro.core.activity import Activity, CompositeActivity
from repro.core.transitions.base import Transition
from repro.core.workflow import ETLWorkflow, Node
from repro.exceptions import TransitionError

__all__ = ["Merge", "Split", "split_fully"]


class Merge(Transition):
    """``MER(a1+2, a1, a2)``: package two adjacent unary activities."""

    mnemonic = "MER"

    def __init__(self, first: Activity, second: Activity):
        self.first = first
        self.second = second
        self.result: CompositeActivity | None = None

    def describe(self) -> str:
        return f"MER({self.first.id}+{self.second.id},{self.first.id},{self.second.id})"

    def affected_nodes(self) -> tuple[Node, ...]:
        return (self.result,) if self.result is not None else ()

    def check(self, workflow: ETLWorkflow) -> None:
        a1, a2 = self.first, self.second
        for activity in (a1, a2):
            if activity not in workflow:
                raise TransitionError(
                    f"{self.describe()}: {activity.id} not in state"
                )
            if not activity.is_unary:
                raise TransitionError(
                    f"{self.describe()}: {activity.id} is not unary"
                )
        if workflow.consumers(a1) != [a2]:
            raise TransitionError(
                f"{self.describe()}: activities are not adjacent"
            )
        if len(workflow.consumers(a2)) != 1:
            raise TransitionError(
                f"{self.describe()}: {a2.id} must have exactly one consumer"
            )

    def rewire(self, workflow: ETLWorkflow) -> None:
        a1, a2 = self.first, self.second
        provider = workflow.providers(a1)[0]
        provider_port = workflow.edge_port(provider, a1)
        consumer = workflow.consumers(a2)[0]
        consumer_port = workflow.edge_port(a2, consumer)

        components: list[Activity] = []
        for part in (a1, a2):
            if isinstance(part, CompositeActivity):
                components.extend(part.components)
            else:
                components.append(part)
        merged = CompositeActivity(tuple(components))

        workflow.remove_node(a1)
        workflow.remove_node(a2)
        workflow.add_node(merged)
        workflow.add_edge(provider, merged, port=provider_port)
        workflow.add_edge(merged, consumer, port=consumer_port)
        self.result = merged


class Split(Transition):
    """``SPL(a1+2, a1, a2)``: unpackage a merged activity."""

    mnemonic = "SPL"

    def __init__(self, merged: CompositeActivity):
        self.merged = merged
        self.parts: tuple[Activity, Activity] | None = None

    def describe(self) -> str:
        return f"SPL({self.merged.id})"

    def affected_nodes(self) -> tuple[Node, ...]:
        return self.parts if self.parts is not None else ()

    def check(self, workflow: ETLWorkflow) -> None:
        if self.merged not in workflow:
            raise TransitionError(f"{self.describe()}: not in state")
        if not isinstance(self.merged, CompositeActivity):
            raise TransitionError(
                f"{self.describe()}: {self.merged.id} is not a merged activity"
            )
        if len(workflow.consumers(self.merged)) != 1:
            raise TransitionError(
                f"{self.describe()}: {self.merged.id} must have exactly one "
                "consumer"
            )

    def rewire(self, workflow: ETLWorkflow) -> None:
        provider = workflow.providers(self.merged)[0]
        provider_port = workflow.edge_port(provider, self.merged)
        consumer = workflow.consumers(self.merged)[0]
        consumer_port = workflow.edge_port(self.merged, consumer)

        head, tail = self.merged.split_pair()
        workflow.remove_node(self.merged)
        workflow.add_node(head)
        workflow.add_node(tail)
        workflow.add_edge(provider, head, port=provider_port)
        workflow.add_edge(head, tail, port=0)
        workflow.add_edge(tail, consumer, port=consumer_port)
        self.parts = (head, tail)


def split_fully(workflow: ETLWorkflow) -> ETLWorkflow:
    """Apply SPL until no merged activities remain (HS post-processing)."""
    current = workflow
    while True:
        merged = next(
            (
                node
                for node in current.activities()
                if isinstance(node, CompositeActivity)
            ),
            None,
        )
        if merged is None:
            return current
        current = Split(merged).apply(current)
