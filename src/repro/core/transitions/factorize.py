"""FAC and DIS — moving unary activities across binary ones (section 3.3).

*Factorize* replaces two **homologous** activities ``a1``/``a2`` — same
semantics, applied on different flows converging into the binary activity
``ab`` — with a single equivalent activity ``a`` placed right after ``ab``.
*Distribute* is the inverse: it clones an activity sitting right after a
binary activity into each converging branch.

Applicability adds one condition beyond the paper's structural ones: the
unary activity's template must declare the binary's template in its
``distributes_over`` set (filters move across union / join / difference /
intersection, injective functions across union / difference /
intersection, plain functions across union only, aggregations never — see
:mod:`repro.templates.builtin`).  Schema-level feasibility — e.g. a filter
distributed over a join must find its functionality attributes on *both*
branches — is enforced by the propagate-and-validate step.

Clone identifiers: DIS names its clones ``<id>_1`` / ``<id>_2``; FAC of two
clones sharing a base recovers the base id, so ``FAC(DIS(S))`` carries the
same signature as ``S`` and the search space stays duplicate-free.
"""

from __future__ import annotations

from repro.core.activity import Activity, CompositeActivity, base_clone_id
from repro.core.transitions.base import Transition
from repro.core.workflow import ETLWorkflow, Node
from repro.exceptions import TransitionError

__all__ = ["Factorize", "Distribute", "homologous"]


def homologous(
    workflow: ETLWorkflow, first: Activity, second: Activity
) -> bool:
    """True when two activities are homologous (section 3.2).

    They must (a) sit in converging local groups — operationally: be
    distinct unary activities whose flows reach a common binary consumer —
    (b) share the same algebraic semantics, and (c) share functionality,
    generated and projected-out schemata.  With template-derived schemata,
    (b) and (c) reduce to an equal ``semantics_key``.
    """
    if first is second:
        return False
    if not (first.is_unary and second.is_unary):
        return False
    return first.semantics_key() == second.semantics_key()


class Factorize(Transition):
    """``FAC(ab, a1, a2)``: merge homologous activities after ``ab``."""

    mnemonic = "FAC"

    def __init__(self, binary: Activity, first: Activity, second: Activity):
        self.binary = binary
        self.first = first
        self.second = second
        self.result: Activity | None = None  # set by rewire()

    def describe(self) -> str:
        return f"FAC({self.binary.id},{self.first.id},{self.second.id})"

    def affected_nodes(self) -> tuple[Node, ...]:
        affected: tuple[Node, ...] = (self.binary,)
        if self.result is not None:
            affected += (self.result,)
        return affected

    def check(self, workflow: ETLWorkflow) -> None:
        ab, a1, a2 = self.binary, self.first, self.second
        for node in (ab, a1, a2):
            if node not in workflow:
                raise TransitionError(f"{self.describe()}: {node.id} not in state")
        if not ab.is_binary:
            raise TransitionError(f"{self.describe()}: {ab.id} is not binary")
        for activity in (a1, a2):
            if isinstance(activity, CompositeActivity):
                raise TransitionError(
                    f"{self.describe()}: merged activity {activity.id} cannot "
                    "be factorized; split it first"
                )
            if workflow.consumers(activity) != [ab]:
                raise TransitionError(
                    f"{self.describe()}: {activity.id} is not adjacent to "
                    f"{ab.id}"
                )
        if not homologous(workflow, a1, a2):
            raise TransitionError(
                f"{self.describe()}: {a1.id} and {a2.id} are not homologous"
            )
        if ab.template.name not in a1.distributes_over:
            raise TransitionError(
                f"{self.describe()}: {a1.template.name} does not move across "
                f"{ab.template.name}"
            )
        if len(workflow.consumers(ab)) != 1:
            raise TransitionError(
                f"{self.describe()}: {ab.id} must have exactly one consumer"
            )

    def rewire(self, workflow: ETLWorkflow) -> None:
        ab, a1, a2 = self.binary, self.first, self.second
        provider1 = workflow.providers(a1)[0]
        provider2 = workflow.providers(a2)[0]
        port1 = workflow.edge_port(a1, ab)
        port2 = workflow.edge_port(a2, ab)
        consumer = workflow.consumers(ab)[0]
        consumer_port = workflow.edge_port(ab, consumer)

        base1 = base_clone_id(a1.id)
        if base1 == base_clone_id(a2.id):
            merged = a1.clone(base1)
        else:
            merged = a1.clone(min(a1.id, a2.id))

        workflow.remove_node(a1)
        workflow.remove_node(a2)
        workflow.add_node(merged)
        workflow.add_edge(provider1, ab, port=port1)
        workflow.add_edge(provider2, ab, port=port2)
        workflow.remove_edge(ab, consumer)
        workflow.add_edge(ab, merged, port=0)
        workflow.add_edge(merged, consumer, port=consumer_port)
        self.result = merged


class Distribute(Transition):
    """``DIS(ab, a)``: clone ``a`` into each flow converging on ``ab``."""

    mnemonic = "DIS"

    def __init__(self, binary: Activity, activity: Activity):
        self.binary = binary
        self.activity = activity
        self.clones: tuple[Activity, ...] = ()

    def describe(self) -> str:
        return f"DIS({self.binary.id},{self.activity.id})"

    def affected_nodes(self) -> tuple[Node, ...]:
        return (self.binary,) + self.clones

    def check(self, workflow: ETLWorkflow) -> None:
        ab, a = self.binary, self.activity
        for node in (ab, a):
            if node not in workflow:
                raise TransitionError(f"{self.describe()}: {node.id} not in state")
        if not ab.is_binary:
            raise TransitionError(f"{self.describe()}: {ab.id} is not binary")
        if isinstance(a, CompositeActivity):
            raise TransitionError(
                f"{self.describe()}: merged activity {a.id} cannot be "
                "distributed; split it first"
            )
        if not a.is_unary:
            raise TransitionError(f"{self.describe()}: {a.id} is not unary")
        if workflow.consumers(ab) != [a]:
            raise TransitionError(
                f"{self.describe()}: {a.id} is not the sole consumer of {ab.id}"
            )
        if len(workflow.consumers(a)) != 1:
            raise TransitionError(
                f"{self.describe()}: {a.id} must have exactly one consumer"
            )
        if ab.template.name not in a.distributes_over:
            raise TransitionError(
                f"{self.describe()}: {a.template.name} does not move across "
                f"{ab.template.name}"
            )

    def rewire(self, workflow: ETLWorkflow) -> None:
        ab, a = self.binary, self.activity
        providers = workflow.providers(ab)
        consumer = workflow.consumers(a)[0]
        consumer_port = workflow.edge_port(a, consumer)

        clones = tuple(
            a.clone(f"{a.id}_{index + 1}") for index in range(len(providers))
        )
        workflow.remove_node(a)
        for index, (provider, clone) in enumerate(zip(providers, clones)):
            workflow.add_node(clone)
            workflow.remove_edge(provider, ab)
            workflow.add_edge(provider, clone, port=0)
            workflow.add_edge(clone, ab, port=index)
        workflow.add_edge(ab, consumer, port=consumer_port)
        self.clones = clones
