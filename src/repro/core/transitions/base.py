"""Transition machinery shared by SWA / FAC / DIS / MER / SPL.

A :class:`Transition` is bound to concrete nodes of a *source* state.
Applying it never mutates that state: the source workflow is copied, the
copy is rewired, and the copy is validated (structure + schema
propagation).  Because schema propagation re-derives every input/output
schema from the sources, a successful :meth:`Transition.apply` implies the
paper's swap conditions (3) and (4) "both before and after" the transition,
and the Theorem 1 invariant (schemas of unaffected activities unchanged) is
asserted by construction.

``try_apply`` is the search-facing entry point: it returns ``None`` instead
of raising when the transition turns out to be inapplicable, so search
loops stay exception-free on their hot path.
"""

from __future__ import annotations

import abc

from repro.core.workflow import ETLWorkflow, Node
from repro.exceptions import (
    ReproError,
    SchemaError,
    TransitionError,
    WorkflowError,
)

__all__ = ["Transition"]


class Transition(abc.ABC):
    """One state-space transition bound to concrete nodes."""

    #: Short mnemonic matching the paper (SWA, FAC, DIS, MER, SPL).
    mnemonic: str = "?"

    @abc.abstractmethod
    def check(self, workflow: ETLWorkflow) -> None:
        """Verify structural preconditions against ``workflow``.

        Raises :class:`~repro.exceptions.TransitionError` with a diagnostic
        message when a precondition fails.  Schema-level conditions are
        *not* checked here — they are enforced by the propagate-and-validate
        step in :meth:`apply`.
        """

    @abc.abstractmethod
    def rewire(self, workflow: ETLWorkflow) -> None:
        """Perform the graph surgery on ``workflow`` (already a copy)."""

    @abc.abstractmethod
    def affected_nodes(self) -> tuple[Node, ...]:
        """Nodes whose position/existence changes (for incremental costing)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """The paper-style rendering, e.g. ``SWA(5,6)``."""

    def apply(self, workflow: ETLWorkflow) -> ETLWorkflow:
        """Produce the successor state, raising when inapplicable."""
        self.check(workflow)
        successor = workflow.copy()
        self.rewire(successor)
        try:
            successor.validate()
            successor.propagate_schemas()
        except (WorkflowError, SchemaError) as exc:
            raise TransitionError(
                f"{self.describe()} produced an invalid state: {exc}"
            ) from exc
        return successor

    def try_apply(self, workflow: ETLWorkflow) -> ETLWorkflow | None:
        """Like :meth:`apply`, but returns ``None`` when inapplicable."""
        try:
            return self.apply(workflow)
        except ReproError:
            return None

    def is_applicable(self, workflow: ETLWorkflow) -> bool:
        """True when :meth:`apply` would succeed on ``workflow``."""
        return self.try_apply(workflow) is not None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
