"""Transition machinery shared by SWA / FAC / DIS / MER / SPL.

A :class:`Transition` is bound to concrete nodes of a *source* state.
Applying it never mutates that state: the source workflow is copied, the
copy is rewired, and the copy is validated (structure + schema
propagation).  Because schema propagation re-derives every input/output
schema from the sources, a successful :meth:`Transition.apply` implies the
paper's swap conditions (3) and (4) "both before and after" the transition,
and the Theorem 1 invariant (schemas of unaffected activities unchanged) is
asserted by construction.

``try_apply`` is the search-facing entry point: it returns ``None`` instead
of raising when the transition turns out to be inapplicable, so search
loops stay exception-free on their hot path.
"""

from __future__ import annotations

import abc

from repro.core import flags
from repro.core.workflow import ETLWorkflow, Node
from repro.exceptions import (
    ReproError,
    SchemaError,
    TransitionError,
    WorkflowError,
)

__all__ = ["Transition"]


class Transition(abc.ABC):
    """One state-space transition bound to concrete nodes."""

    #: Short mnemonic matching the paper (SWA, FAC, DIS, MER, SPL).
    mnemonic: str = "?"

    @abc.abstractmethod
    def check(self, workflow: ETLWorkflow) -> None:
        """Verify structural preconditions against ``workflow``.

        Raises :class:`~repro.exceptions.TransitionError` with a diagnostic
        message when a precondition fails.  Schema-level conditions are
        *not* checked here — they are enforced by the propagate-and-validate
        step in :meth:`apply`.
        """

    @abc.abstractmethod
    def rewire(self, workflow: ETLWorkflow) -> None:
        """Perform the graph surgery on ``workflow`` (already a copy)."""

    @abc.abstractmethod
    def affected_nodes(self) -> tuple[Node, ...]:
        """Nodes whose position/existence changes (for incremental costing)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """The paper-style rendering, e.g. ``SWA(5,6)``."""

    def apply(self, workflow: ETLWorkflow) -> ETLWorkflow:
        """Produce the successor state, raising when inapplicable."""
        self.check(workflow)
        successor = workflow.copy()
        self.rewire(successor)
        try:
            successor.validate()
            successor.propagate_schemas()
        except (WorkflowError, SchemaError) as exc:
            raise TransitionError(
                f"{self.describe()} produced an invalid state: {exc}"
            ) from exc
        return successor

    def try_apply(self, workflow: ETLWorkflow) -> ETLWorkflow | None:
        """Like :meth:`apply`, but returns ``None`` when inapplicable."""
        try:
            return self.apply(workflow)
        except ReproError:
            return None

    # -- incremental fast path (search hot loop) --------------------------------

    def patched_topology(
        self, parent: ETLWorkflow, successor: ETLWorkflow
    ) -> list[Node] | None:
        """A topological order for ``successor`` derived from the parent's.

        Transitions that provably preserve a patched linearisation
        override this (SWA: the parent order with the two swapped nodes
        exchanged — every rewired edge respects it, every other edge kept
        its endpoints' relative positions).  ``None`` means "recompute
        with Kahn's algorithm" — which also restores the cycle check, so
        only patches whose validity is a theorem may return an order.
        """
        return None

    def apply_fast(self, workflow: ETLWorkflow) -> ETLWorkflow:
        """Produce the successor via the incremental fast path.

        Same contract as :meth:`apply` — raises when inapplicable,
        returns a validated successor with regenerated schemata — but
        validation and schema propagation reuse the parent state instead
        of re-deriving the whole graph, and SWA skips Kahn's algorithm
        via :meth:`patched_topology`.  ``REPRO_FULL_RECOST=1`` routes
        back to the slow twin; ``REPRO_COST_ORACLE=1`` runs both and
        asserts they agree verdict-for-verdict and schema-for-schema.
        """
        if flags.full_recost_enabled():
            return self.apply(workflow)
        if flags.cost_oracle_enabled():
            return self._apply_checked(workflow)
        return self._apply_fast_inner(workflow)

    def try_apply_fast(self, workflow: ETLWorkflow) -> ETLWorkflow | None:
        """Like :meth:`apply_fast`, but returns ``None`` when inapplicable."""
        try:
            return self.apply_fast(workflow)
        except ReproError:
            return None

    def _apply_fast_inner(self, workflow: ETLWorkflow) -> ETLWorkflow:
        self.check(workflow)
        successor = workflow.copy()
        self.rewire(successor)
        patched = self.patched_topology(workflow, successor)
        if patched is not None:
            successor.adopt_topology(patched)
        affected = self.affected_nodes()
        try:
            successor.validate_incremental(workflow, affected)
            successor.propagate_schemas_incremental(workflow, affected)
        except (WorkflowError, SchemaError) as exc:
            raise TransitionError(
                f"{self.describe()} produced an invalid state: {exc}"
            ) from exc
        return successor

    def _apply_checked(self, workflow: ETLWorkflow) -> ETLWorkflow:
        """Run the fast path against its slow twin and assert agreement.

        The slow twin runs *first*: FAC/DIS/MER/SPL record the node
        objects their ``rewire`` creates on the transition itself, and the
        caller continues with the fast successor, so the fast application
        must be the last one to have rewired.
        """
        slow_error: ReproError | None = None
        slow: ETLWorkflow | None = None
        try:
            slow = self.apply(workflow)
        except ReproError as exc:
            slow_error = exc
        fast_error: ReproError | None = None
        successor: ETLWorkflow | None = None
        try:
            successor = self._apply_fast_inner(workflow)
        except ReproError as exc:
            fast_error = exc
        if (fast_error is None) != (slow_error is None):
            raise AssertionError(
                f"cost oracle: {self.describe()} fast path "
                f"{'accepted' if fast_error is None else f'rejected ({fast_error})'} "
                f"but slow path "
                f"{'accepted' if slow_error is None else f'rejected ({slow_error})'}"
            )
        if fast_error is not None:
            raise fast_error
        assert successor is not None and slow is not None
        order = successor.topological_order()
        position = {node: index for index, node in enumerate(order)}
        if len(position) != len(slow.topological_order()):
            raise AssertionError(
                f"cost oracle: {self.describe()} patched order covers "
                f"{len(position)} nodes, slow state has "
                f"{len(slow.topological_order())}"
            )
        for provider, consumer in successor.graph.edges:
            if position[provider] >= position[consumer]:
                raise AssertionError(
                    f"cost oracle: {self.describe()} patched topological "
                    f"order violates edge {provider.id} -> {consumer.id}"
                )
        # Compare by node id: the two twins rewired independently, so
        # transitions that create nodes (FAC/DIS/MER/SPL clones) produce
        # distinct-but-equivalent node objects in each successor.
        fast_schemas = {
            node.id: schemas
            for node, schemas in successor.propagate_schemas().items()
        }
        slow_schemas = {
            node.id: schemas
            for node, schemas in slow.propagate_schemas().items()
        }
        if fast_schemas != slow_schemas:
            diverging = sorted(
                node_id
                for node_id in set(fast_schemas) | set(slow_schemas)
                if fast_schemas.get(node_id) != slow_schemas.get(node_id)
            )
            raise AssertionError(
                f"cost oracle: {self.describe()} incremental schema "
                f"propagation diverges from the full pass at {diverging}"
            )
        return successor

    def is_applicable(self, workflow: ETLWorkflow) -> bool:
        """True when :meth:`apply` would succeed on ``workflow``."""
        return self.try_apply(workflow) is not None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
