"""State-space transitions: SWA, FAC, DIS, MER, SPL (paper sections 2.2/3.3)."""

from repro.core.transitions.base import Transition
from repro.core.transitions.enumerate import candidate_transitions, successor_states
from repro.core.transitions.factorize import Distribute, Factorize, homologous
from repro.core.transitions.merge import Merge, Split, split_fully
from repro.core.transitions.shift import (
    ShiftResult,
    shift_backward,
    shift_forward,
)
from repro.core.transitions.swap import Swap

__all__ = [
    "Transition",
    "Swap",
    "Factorize",
    "Distribute",
    "Merge",
    "Split",
    "split_fully",
    "homologous",
    "ShiftResult",
    "shift_forward",
    "shift_backward",
    "candidate_transitions",
    "successor_states",
]
