"""Recordsets: the data-store nodes of an ETL workflow (section 2.1).

A recordset is "any data store that can provide a flat record schema" —
relational tables and record files being the common cases.  Recordsets have
exactly one schema.  The subset ``RS_S`` (sources) feeds the workflow; the
subset ``RS_T`` (targets) receives the warehouse data.
"""

from __future__ import annotations

import enum

from repro.core.schema import Schema
from repro.exceptions import WorkflowError

__all__ = ["RecordSetKind", "RecordSet"]


class RecordSetKind(enum.Enum):
    """Role of a recordset in the workflow graph."""

    SOURCE = "source"            # in RS_S: no providers, ships the input data
    TARGET = "target"            # in RS_T: no consumers, receives the output
    INTERMEDIATE = "intermediate"  # staging store inside the flow


class RecordSet:
    """One data store node.

    Attributes:
        id: unique identifier (priority from the initial topological order).
        name: display name, e.g. ``"PARTS1"``.
        schema: the (reference-named) record schema.
        kind: source / target / intermediate.
        cardinality: for sources, the declared row count used by cost
            models; ignored elsewhere.
    """

    __slots__ = ("id", "name", "schema", "kind", "cardinality")

    def __init__(
        self,
        id: str,
        name: str,
        schema: Schema,
        kind: RecordSetKind = RecordSetKind.INTERMEDIATE,
        cardinality: float = 0.0,
    ):
        if not isinstance(id, str) or not id:
            raise WorkflowError(f"recordset id must be a non-empty string, got {id!r}")
        if len(schema) == 0:
            raise WorkflowError(f"recordset {name!r}: schema must be non-empty")
        if cardinality < 0:
            raise WorkflowError(f"recordset {name!r}: cardinality must be >= 0")
        self.id = id
        self.name = name
        self.schema = schema
        self.kind = kind
        self.cardinality = float(cardinality)

    @property
    def is_source(self) -> bool:
        return self.kind is RecordSetKind.SOURCE

    @property
    def is_target(self) -> bool:
        return self.kind is RecordSetKind.TARGET

    def __repr__(self) -> str:
        return f"RecordSet({self.id}:{self.name}:{self.kind.value})"
