"""Symbolic workflow equivalence (section 3.4).

Two workflows (states) are equivalent when

(a) the schema of the data propagated to each target recordset is
    identical, and
(b) their workflow post-conditions are equivalent.

This module implements that check over the :mod:`repro.core.predicates`
calculus.  It is a *necessary* condition maintained as an invariant by
every transition (the library's rendering of Theorem 2); the execution
engine (:mod:`repro.engine.validate`) provides the complementary empirical
check — same input data, same target output — used throughout the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predicates import Predicate, workflow_post_condition
from repro.core.schema import Schema
from repro.core.workflow import ETLWorkflow

__all__ = ["EquivalenceReport", "target_schemas", "symbolically_equivalent"]


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of a symbolic-equivalence check, with diagnostics."""

    equivalent: bool
    schema_mismatches: tuple[str, ...]
    only_in_first: frozenset[Predicate]
    only_in_second: frozenset[Predicate]

    def __bool__(self) -> bool:
        return self.equivalent


def target_schemas(workflow: ETLWorkflow) -> dict[str, Schema]:
    """Map each target recordset name to the schema it receives."""
    derived = workflow.propagate_schemas()
    return {t.name: derived[t].output for t in workflow.targets()}


def symbolically_equivalent(
    first: ETLWorkflow, second: ETLWorkflow
) -> EquivalenceReport:
    """Check conditions (a) and (b) of the paper's equivalence definition."""
    first_targets = target_schemas(first)
    second_targets = target_schemas(second)
    mismatches: list[str] = []
    if set(first_targets) != set(second_targets):
        mismatches.append(
            f"different target recordsets: {sorted(first_targets)} vs "
            f"{sorted(second_targets)}"
        )
    else:
        for name, schema in first_targets.items():
            other = second_targets[name]
            if not schema.compatible(other):
                mismatches.append(
                    f"target {name}: {schema} vs {other}"
                )
    cond_first = workflow_post_condition(first)
    cond_second = workflow_post_condition(second)
    only_first = cond_first - cond_second
    only_second = cond_second - cond_first
    equivalent = not mismatches and not only_first and not only_second
    return EquivalenceReport(
        equivalent=equivalent,
        schema_mismatches=tuple(mismatches),
        only_in_first=frozenset(only_first),
        only_in_second=frozenset(only_second),
    )
