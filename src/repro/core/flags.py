"""Process-wide debug/compatibility switches for the fast paths.

Three environment variables gate the performance machinery:

* ``REPRO_FULL_RECOST=1`` — force every transition onto the slow,
  obviously-correct twin (full copy + full structural validation + full
  schema propagation + from-scratch costing).  This is the baseline the
  differential suite and ``benchmarks/bench_parallel.py`` compare the
  fast path against.
* ``REPRO_COST_ORACLE=1`` — run *both* paths for every transition and
  assert they agree: same accept/reject verdict, same derived schemata,
  and a valid patched topological order.  Combined with the exact
  ``estimate_incremental == estimate`` guarantee this is the debug oracle
  ISSUE 6 pins the optimization with; it is also wired into the fuzz
  oracles (``repro fuzz`` cost-consistency check).
* ``REPRO_NO_COLUMNAR=1`` — disable the streaming engine's fused
  columnar kernels and run every row-wise chain through the legacy
  row-at-a-time operators.  The differential/property suites flip this
  to compare the two paths; it is also the escape hatch if a fused
  kernel ever misbehaves in production.

All are read once at import and can be toggled programmatically (tests,
benchmarks) via the setters below.
"""

from __future__ import annotations

import os

__all__ = [
    "full_recost_enabled",
    "set_full_recost",
    "cost_oracle_enabled",
    "set_cost_oracle",
    "columnar_enabled",
    "set_columnar",
]


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false")


_full_recost = _env_flag("REPRO_FULL_RECOST")
_cost_oracle = _env_flag("REPRO_COST_ORACLE")
_columnar = not _env_flag("REPRO_NO_COLUMNAR")


def full_recost_enabled() -> bool:
    """True when transitions must take the slow full-recost twin."""
    return _full_recost


def set_full_recost(enabled: bool) -> bool:
    """Toggle the slow twin; returns the previous value."""
    global _full_recost
    previous = _full_recost
    _full_recost = bool(enabled)
    return previous


def cost_oracle_enabled() -> bool:
    """True when every fast-path transition is cross-checked."""
    return _cost_oracle


def set_cost_oracle(enabled: bool) -> bool:
    """Toggle the differential oracle; returns the previous value."""
    global _cost_oracle
    previous = _cost_oracle
    _cost_oracle = bool(enabled)
    return previous


def columnar_enabled() -> bool:
    """True when the streaming engine may use fused columnar kernels."""
    return _columnar


def set_columnar(enabled: bool) -> bool:
    """Toggle the columnar fast path; returns the previous value."""
    global _columnar
    previous = _columnar
    _columnar = bool(enabled)
    return previous
