"""Admissible lower bounds and dominance classes for pruned search.

The unpruned algorithms compare *complete* states only; the two pruning
modes of :class:`~repro.core.search.budget.SearchBudget` additionally
reason about states not generated yet:

* **Branch-and-bound** needs an *admissible lower bound* — a number no
  descendant of a state can beat.  ``C(S) = Σ c(a_i)`` and every
  per-shape cost formula (``n``, ``n·log2 n``, …) is monotone in its
  input cardinality, so pricing each activity at the smallest input it
  could ever see yields such a bound: an activity ``a`` inside a local
  group with input cardinality ``n0`` can at best run after every other
  member, i.e. on ``n0 · Π_{b≠a} min(sel_b, 1)`` rows.
* **Dominance pruning** needs an equivalence relation coarser than the
  signature: two states whose local groups contain the same activities
  in different *orders* are mutually reachable by in-group swaps, so
  the cheaper one dominates — exploring the dearer one cannot reach
  orderings the cheaper one cannot.  :func:`dominance_class` renders a
  signature-like string with each local group's member ids sorted;
  crucially only ids *within one group* are sorted — group borders
  (binaries, recordsets, fan-out points) stay fixed, so states that
  differ by a factorization or distribution (not mere reordering) land
  in different classes.

Activities that can *leave* their group (FAC/DIS candidates and their
clones — the "mobile" activities) are priced at zero and their
selectivities are charged against every other group, since a descendant
may have distributed them upstream of anything.  Binary and composite
activities are priced at zero outright.  The bound assumes a mobile
activity's selectivity shrinks the flow at most once along any
source-to-target path (true for the shipped transition system, where
DIS clones over a union split the *same* selectivity across branches);
exotic custom templates that distribute a clone into both branches of a
join would need a looser bound — the differential test suite pins the
invariant ES best costs on the shipped templates.
"""

from __future__ import annotations

from repro.core.activity import Activity, CompositeActivity, base_clone_id
from repro.core.cost.model import CostModel
from repro.core.search.state import SearchState
from repro.core.signature import _is_commutative
from repro.core.workflow import ETLWorkflow, Node

__all__ = [
    "bound_prunes",
    "clone_root_id",
    "dominance_class",
    "group_lower_bound",
    "mobile_root_ids",
    "state_lower_bound",
]


def bound_prunes(lower_bound: float, incumbent: float) -> bool:
    """True when the incumbent already matches/beats the lower bound.

    Equality fires the cutoff: the dominant case is a group whose
    members all have selectivity 1 — every ordering prices identically
    and equals the bound, and that arithmetic involves no shrink
    products, so the comparison is exact.  When selectivities differ
    the bound sits strictly below every real ordering by construction;
    the last-ulp gap between the bound's product order and the
    estimator's sequential flow is pinned by the differential tests.
    """
    return incumbent <= lower_bound

def clone_root_id(activity_id: str) -> str:
    """Strip DIS clone suffixes recursively: ``8_1_2`` -> ``8``."""
    current = activity_id
    while True:
        stripped = base_clone_id(current)
        if stripped == current:
            return current
        current = stripped


def dominance_class(workflow: ETLWorkflow) -> str:
    """A signature-like string with each local group's member ids sorted.

    States whose workflows differ only in the *order* of activities
    inside local groups share a class: ``((1.3)//(2.6.4.5)).7.8`` and
    ``((1.3)//(2.4.5.6)).7.8`` both render ``((1.3)//(2.4.5.6)).7.8``.
    Group borders (binaries, recordsets, fan-out points) are never
    sorted across, so states separated by a factorization or a
    distribution — which move activities *between* groups — always land
    in different classes.  Same class therefore means mutually
    reachable by in-group swaps (on the shipped templates), and the
    cheapest representative dominates.
    """
    # Each group renders as one sorted token at its *last* member;
    # earlier members pass their upstream prefix through unchanged.
    group_token: dict[Node, str | None] = {}
    for group in workflow.local_groups():
        if len(group) < 2:
            continue
        group_token[group[-1]] = ".".join(sorted(a.id for a in group))
        for member in group[:-1]:
            group_token[member] = None
    memo: dict[Node, str] = {}
    graph_pred = workflow.graph._pred
    for node in workflow.topological_order():
        pred = graph_pred[node]
        if node in group_token:
            (provider,) = pred
            token = group_token[node]
            if token is None:
                memo[node] = memo[provider]  # swallowed mid-group member
            else:
                memo[node] = f"{memo[provider]}.{token}"
        elif not pred:
            memo[node] = str(node.id)
        elif len(pred) == 1:
            (provider,) = pred
            memo[node] = f"{memo[provider]}.{node.id}"
        else:
            if _is_commutative(node):
                branches = sorted(f"({memo[p]})" for p in pred)
            else:
                ordered = sorted(pred, key=lambda p: pred[p]["port"])
                branches = [f"({memo[p]})" for p in ordered]
            memo[node] = f"({'//'.join(branches)}).{node.id}"
    targets = workflow.targets()
    if len(targets) == 1:
        return memo[targets[0]]
    return "//".join(sorted(memo[target] for target in targets))


def _shrink(activity: Activity) -> float:
    """The factor by which ``activity`` can shrink the flow (never > 1)."""
    return min(activity.selectivity, 1.0)


def _is_mobile(activity: Activity, mobile_roots: frozenset[str]) -> bool:
    root = clone_root_id(activity.id)
    return root != activity.id or root in mobile_roots


def mobile_root_ids(workflow: ETLWorkflow) -> frozenset[str]:
    """Root ids of the activities FAC/DIS can move across group borders."""
    # Imported lazily: heuristic.py imports this module at load time.
    from repro.core.search.heuristic import (
        _find_distributable,
        _find_homologous,
    )

    roots: set[str] = set()
    for first, second, _binary in _find_homologous(workflow):
        roots.add(clone_root_id(first.id))
        roots.add(clone_root_id(second.id))
    for activity in _find_distributable(workflow):
        roots.add(clone_root_id(activity.id))
    return frozenset(roots)


def group_lower_bound(
    members: list[Activity], input_card: float, model: CostModel
) -> float:
    """Lower bound on the summed cost of one local group, any ordering.

    Each member is priced at the smallest input it could see: the group
    input shrunk by every *other* member's selectivity.  Composites are
    priced at zero (their components still contribute their shrink) —
    a merged package's cost is bounded below by zero, which keeps the
    bound admissible when constraint merges put composites in a group.
    """
    total = 0.0
    for activity in members:
        if isinstance(activity, CompositeActivity):
            continue
        others = 1.0
        for member in members:
            if member is not activity:
                others *= _shrink(member)
        total += model.activity_cost(activity, (input_card * others,))
    return total


def state_lower_bound(
    state: SearchState, model: CostModel, mobile_roots: frozenset[str]
) -> float:
    """Admissible lower bound on the cost of any descendant of ``state``.

    Per local group: the group-input cardinality (unaffected by in-group
    reordering — the selectivity product is order-invariant) shrunk by
    every other member *and* by every mobile activity outside the group
    (a descendant may have distributed those upstream).  Mobile, binary
    and composite activities are priced at zero.
    """
    workflow = state.workflow
    cards = state.report.cardinalities
    mobile = [
        activity
        for activity in workflow.activities()
        if _is_mobile(activity, mobile_roots)
    ]
    total = 0.0
    for group in workflow.local_groups():
        input_card = cards[workflow.providers(group[0])[0]]
        in_group = set(group)
        outside = 1.0
        for activity in mobile:
            if activity not in in_group:
                outside *= _shrink(activity)
        for activity in group:
            if isinstance(activity, CompositeActivity):
                continue
            if _is_mobile(activity, mobile_roots):
                continue
            others = outside
            for member in group:
                if member is not activity:
                    others *= _shrink(member)
            total += model.activity_cost(activity, (input_card * others,))
    return total
