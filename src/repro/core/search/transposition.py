"""Shared transposition cache for the state-space search (all algorithms).

Chess engines memoize positions reached through transposed move orders; the
ETL state space transposes the same way — Phase III of HS re-derives states
Phase II already visited, simulated annealing walks back over its own
trail, and in the heavy-traffic batch case the *same workflow* is optimized
again and again.  This module provides the shared memo:

* **cost totals** keyed on :func:`~repro.core.signature.state_signature` —
  a state re-encountered through any path (or any run) skips re-costing;
* **group explorations** keyed on ``(state signature, local-group member
  ids, strategy)`` — the dominant cost of HS (Phase I/IV swap exploration,
  >99 % of wall-clock on large workflows) is replayed from the memo instead
  of re-searched;
* an optional **on-disk layer** (JSON, one file per workflow/cost-model
  namespace under ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) that makes
  the memo survive across processes, so repeated optimization of the same
  workflow — `Liu's shared-caching argument <https://arxiv.org/abs/1409.1639>`_
  — costs a fraction of the first run.

Entries are namespaced by :func:`~repro.core.signature.workflow_fingerprint`
plus a cost-model key, because state signatures identify states only within
one optimization problem.  Cached values are only ever values the same
deterministic computation would have produced, so warm and cold runs return
identical best states; they may differ in the last float ulp of *recorded*
costs when a value computed incrementally is replayed, which is why the
deterministic search paths (HS group exploration) consult the memo at
dispatch granularity, never mid-exploration.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.cost.estimator import CostReport, estimate, estimate_incremental
from repro.core.cost.model import CostModel
from repro.core.signature import state_signature, workflow_fingerprint
from repro.core.workflow import ETLWorkflow, Node
from repro.obs import get_recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.search.state import SearchState
    from repro.core.transitions.base import Transition

__all__ = [
    "TranspositionCache",
    "CacheNamespace",
    "DeferredCostReport",
    "default_cache_dir",
]

# v2: cost entries carry their incremental components ({"t": total,
# "n": recosted-node count}) instead of a bare float, so warm-run
# telemetry can report how much delta work the cached value replaced.
_FORMAT_VERSION = 2


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return Path(explicit).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def _model_key(model: CostModel) -> str:
    """Namespace component identifying the cost model.

    Custom models that carry tunable state should expose a
    ``cost_model_key()`` method returning a stable string; class identity
    is the fallback (sufficient for the shipped stateless models).
    """
    key = getattr(model, "cost_model_key", None)
    if callable(key):
        return str(key())
    return f"{type(model).__module__}.{type(model).__qualname__}"


class DeferredCostReport:
    """A cost report whose total is known (from the cache) but whose
    per-node breakdown is computed only if the state is ever expanded.

    Most generated states are never expanded (best-first search under a
    budget discards the bulk of its frontier), so on cache hits the full
    topological costing pass is skipped entirely.  Duck-types
    :class:`~repro.core.cost.estimator.CostReport`.
    """

    __slots__ = ("total", "_workflow", "_model", "_full")

    #: A cache hit re-derives nothing, so the delta-recost telemetry
    #: (``search.delta_recost_nodes``) counts deferred reports as zero.
    recosted_nodes = 0

    def __init__(self, total: float, workflow: ETLWorkflow, model: CostModel):
        self.total = total
        self._workflow = workflow
        self._model = model
        self._full: CostReport | None = None

    def materialize(self) -> CostReport:
        """Compute (once) and return the full per-node report."""
        if self._full is None:
            self._full = estimate(self._workflow, self._model)
        return self._full

    @property
    def node_costs(self) -> dict[Node, float]:
        return self.materialize().node_costs

    @property
    def cardinalities(self) -> dict[Node, float]:
        return self.materialize().cardinalities

    def cost_of(self, node: Node) -> float:
        return self.materialize().cost_of(node)

    def __reduce__(self):
        # Workers receive the materialized report so they never re-estimate.
        return (CostReport, (self.total, self.node_costs, self.cardinalities))


class CacheNamespace:
    """The cache slice of one (workflow family, cost model) pair."""

    def __init__(self, cache: "TranspositionCache", key: str):
        self._cache = cache
        self.key = key
        self.costs: dict[str, dict[str, Any]] = {}
        self.groups: dict[str, dict[str, Any]] = {}
        self.dirty = False
        # Group keys dropped this run: excluded from merge-on-write so a
        # concurrent writer's copy does not resurrect them.
        self._dropped_groups: set[str] = set()
        self._load()

    # -- persistence ------------------------------------------------------------

    def _path(self) -> Path | None:
        if self._cache.directory is None:
            return None
        return self._cache.directory / f"{self.key}.json"

    @staticmethod
    def _read_file(path: Path) -> tuple[dict[str, Any], dict[str, Any]]:
        """Best-effort read of an on-disk layer; empty when absent/corrupt."""
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            # A corrupt or unreadable cache file is a cold cache, not an
            # error: the search recomputes everything it needs.
            return {}, {}
        if data.get("format_version") != _FORMAT_VERSION:
            return {}, {}
        return data.get("costs", {}), data.get("groups", {})

    def _load(self) -> None:
        path = self._path()
        if path is None or not path.exists():
            return
        costs, groups = self._read_file(path)
        self.costs.update(costs)
        self.groups.update(groups)

    def flush(self) -> None:
        with self._cache._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        path = self._path()
        if path is None or not self.dirty:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{self.key}.", suffix=".tmp", dir=path.parent
            )
            # Merge-on-write: a concurrent run may have replaced the file
            # since we loaded it.  Re-read under the temp file and union
            # its entries with ours (ours win on divergence, which is
            # counted — entries are deterministic, so genuine conflicts
            # indicate cost-model drift, not racing writers).  os.replace
            # then publishes the union atomically instead of clobbering
            # the other writer's entries.
            disk_costs, disk_groups = (
                self._read_file(path) if path.exists() else ({}, {})
            )
            conflicts = 0
            merged_costs = dict(disk_costs)
            for signature, total in self.costs.items():
                if signature in merged_costs and merged_costs[signature] != total:
                    conflicts += 1
                merged_costs[signature] = total
            merged_groups = {
                key: entry
                for key, entry in disk_groups.items()
                if key not in self._dropped_groups
            }
            for key, entry in self.groups.items():
                if key in merged_groups and merged_groups[key] != entry:
                    conflicts += 1
                merged_groups[key] = entry
            payload = {
                "format_version": _FORMAT_VERSION,
                "costs": merged_costs,
                "groups": merged_groups,
            }
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
            self.costs = merged_costs
            self.groups = merged_groups
            if conflicts:
                self._cache.merge_conflicts += conflicts
                get_recorder().counter(
                    "search.transposition.merge_conflicts"
                ).add(conflicts)
            self.dirty = False
        except OSError:
            return

    # -- cost totals ------------------------------------------------------------

    def get_cost(self, signature: str) -> float | None:
        recorder = get_recorder()
        started = time.perf_counter() if recorder.active else 0.0
        with self._cache._lock:
            entry = self.costs.get(signature)
            if entry is None:
                self._cache.misses += 1
            else:
                self._cache.hits += 1
        if recorder.active:
            recorder.histogram("search.transposition_lookup_seconds").observe(
                time.perf_counter() - started
            )
        if entry is None:
            recorder.counter(
                "search.transposition", kind="cost", outcome="miss"
            ).add()
            return None
        recorder.counter(
            "search.transposition", kind="cost", outcome="hit"
        ).add()
        return entry["t"]

    def put_cost(self, signature: str, total: float, recosted: int = 0) -> None:
        with self._cache._lock:
            if signature not in self.costs:
                self.costs[signature] = {"t": total, "n": recosted}
                self.dirty = True

    # -- group-exploration memo --------------------------------------------------

    def get_group(self, key: str) -> dict[str, Any] | None:
        recorder = get_recorder()
        started = time.perf_counter() if recorder.active else 0.0
        with self._cache._lock:
            entry = self.groups.get(key)
            if entry is None:
                self._cache.misses += 1
            else:
                self._cache.hits += 1
        if recorder.active:
            recorder.histogram("search.transposition_lookup_seconds").observe(
                time.perf_counter() - started
            )
        if entry is None:
            recorder.counter(
                "search.transposition", kind="group", outcome="miss"
            ).add()
            return None
        recorder.counter(
            "search.transposition", kind="group", outcome="hit"
        ).add()
        return entry

    def put_group(self, key: str, entry: dict[str, Any]) -> None:
        with self._cache._lock:
            self.groups[key] = entry
            self._dropped_groups.discard(key)
            self.dirty = True

    def drop_group(self, key: str) -> None:
        with self._cache._lock:
            if self.groups.pop(key, None) is not None:
                self._dropped_groups.add(key)
                self.dirty = True

    # -- successor construction ----------------------------------------------------

    def successor(
        self,
        parent: "SearchState",
        transition: "Transition",
        workflow: ETLWorkflow,
        model: CostModel,
        signature: str | None = None,
    ) -> "SearchState":
        """Build a successor state, reusing a memoized cost when possible.

        On a hit the successor carries a :class:`DeferredCostReport` — the
        per-node breakdown is only computed if the state is ever expanded.
        """
        from repro.core.search.state import LineageStep, SearchState
        from repro.obs.provenance import transition_targets

        if signature is None:
            signature = state_signature(workflow)
        total = self.get_cost(signature)
        if total is not None:
            report: Any = DeferredCostReport(total, workflow, model)
        else:
            report = estimate_incremental(
                workflow, model, parent.report, transition.affected_nodes()
            )
            self.put_cost(signature, report.total, report.recosted_nodes)
            recorder = get_recorder()
            if recorder.active:
                recorder.counter("search.delta_recost_nodes").add(
                    report.recosted_nodes
                )
        return SearchState(
            workflow=workflow,
            signature=signature,
            report=report,
            produced_by=transition,
            depth=parent.depth + 1,
            lineage=parent.lineage
            + (
                LineageStep(
                    mnemonic=transition.mnemonic,
                    transition=transition.describe(),
                    cost_after=report.total,
                    targets=transition_targets(transition),
                ),
            ),
        )


class TranspositionCache:
    """Signature-keyed memo shared by every search algorithm.

    One instance may back many runs (see
    :func:`~repro.core.search.parallel.optimize_many`); per-workflow
    namespaces keep unrelated search spaces apart.  ``hits`` / ``misses``
    aggregate across namespaces; algorithms report the per-run delta as
    ``OptimizationResult.cache_hits``.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = Path(directory).expanduser() if directory else None
        self.hits = 0
        self.misses = 0
        #: Entries whose value diverged from a concurrent writer's during a
        #: merge-on-write flush (ours won; see :meth:`CacheNamespace.flush`).
        self.merge_conflicts = 0
        self._namespaces: dict[str, CacheNamespace] = {}
        # One instance is shared across the serve daemon's worker threads;
        # every in-memory read-modify-write (entry insertion, hit/miss
        # accounting, namespace creation, flush) happens under this lock.
        # Reentrant because flush() takes it and the obs counter callbacks
        # it reaches may live on the same thread.
        self._lock = threading.RLock()

    @classmethod
    def resolve(cls, spec: Any) -> tuple["TranspositionCache", bool]:
        """Interpret a :attr:`SearchBudget.cache` value.

        Returns ``(cache, owned)`` — ``owned`` is True when this call
        created the instance (the caller is then responsible for flushing
        it at the end of the run).

        * ``None`` / ``False`` — fresh in-memory cache, no disk layer;
        * ``True`` — on-disk cache at :func:`default_cache_dir`;
        * path-like — on-disk cache rooted at that directory;
        * an existing :class:`TranspositionCache` — shared, not owned.
        """
        if isinstance(spec, TranspositionCache):
            return spec, False
        if spec is None or spec is False:
            return cls(), True
        if spec is True:
            return cls(default_cache_dir()), True
        return cls(spec), True

    def namespace(self, workflow: ETLWorkflow, model: CostModel) -> CacheNamespace:
        """The cache slice for one workflow family under one cost model."""
        key = f"{workflow_fingerprint(workflow)}-{_model_key(model)}"
        # Path-safe: fingerprint is hex, the model key may hold dots only.
        key = "".join(c if c.isalnum() or c in "._-" else "_" for c in key)
        with self._lock:
            found = self._namespaces.get(key)
            if found is None:
                found = CacheNamespace(self, key)
                self._namespaces[key] = found
            return found

    def flush(self) -> None:
        """Write every dirty namespace to the disk layer (no-op without one)."""
        with self._lock:
            namespaces = list(self._namespaces.values())
        for namespace in namespaces:
            namespace.flush()
