"""Search-state wrapper: a workflow plus its cached cost and signature.

States are ETL workflows (section 2.2); during search we decorate each with
the memoized quantities every algorithm needs — total cost (with the full
:class:`~repro.core.cost.estimator.CostReport` for semi-incremental
re-costing of successors) and the canonical signature used to suppress
duplicate states (section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost.estimator import (
    CostReport,
    estimate,
    estimate_incremental,
)
from repro.core.cost.model import CostModel
from repro.core.signature import state_signature
from repro.core.transitions.base import Transition
from repro.core.workflow import ETLWorkflow

__all__ = ["SearchState"]


@dataclass
class SearchState:
    """One explored state: workflow + signature + cost report."""

    workflow: ETLWorkflow
    signature: str
    report: CostReport
    #: Transition that produced this state from its parent (None for S0).
    produced_by: Transition | None = None
    #: Number of transitions from the initial state.
    depth: int = 0

    @property
    def cost(self) -> float:
        return self.report.total

    @classmethod
    def initial(cls, workflow: ETLWorkflow, model: CostModel) -> "SearchState":
        """Wrap the initial workflow S0 (validates it first)."""
        workflow.validate()
        workflow.propagate_schemas()
        return cls(
            workflow=workflow,
            signature=state_signature(workflow),
            report=estimate(workflow, model),
        )

    def successor(
        self,
        transition: Transition,
        successor_workflow: ETLWorkflow,
        model: CostModel,
        incremental: bool = True,
    ) -> "SearchState":
        """Wrap a successor produced by ``transition``.

        With ``incremental=True`` the successor's cost derives from this
        state's report via the semi-incremental scheme of section 4.1.
        """
        if incremental:
            report = estimate_incremental(
                successor_workflow, model, self.report, transition.affected_nodes()
            )
        else:
            report = estimate(successor_workflow, model)
        return SearchState(
            workflow=successor_workflow,
            signature=state_signature(successor_workflow),
            report=report,
            produced_by=transition,
            depth=self.depth + 1,
        )
