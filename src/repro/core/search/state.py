"""Search-state wrapper: a workflow plus its cached cost and signature.

States are ETL workflows (section 2.2); during search we decorate each with
the memoized quantities every algorithm needs — total cost (with the full
:class:`~repro.core.cost.estimator.CostReport` for semi-incremental
re-costing of successors) and the canonical signature used to suppress
duplicate states (section 4.1).

Every state additionally carries its *lineage* — the chain of transitions
that produced it from the initial state, as :class:`LineageStep` records.
The lineage is the provenance the paper's tables leave implicit (which
SWA/FAC/DIS/MER/SPL sequence found the winner); it is replayable through
the transition system (:func:`repro.obs.provenance.replay_lineage`) to
verify the reported best state really is reachable from S0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost.estimator import (
    CostReport,
    estimate,
    estimate_incremental,
)
from repro.core.cost.model import CostModel
from repro.core.signature import state_signature
from repro.core.transitions.base import Transition
from repro.core.workflow import ETLWorkflow
from repro.obs.provenance import transition_targets
from repro.obs.telemetry import get_recorder

__all__ = ["LineageStep", "SearchState"]


@dataclass(frozen=True)
class LineageStep:
    """One applied transition in a state's provenance chain.

    ``targets`` carries the bound node ids structurally (the payload
    :func:`repro.obs.provenance.replay_lineage` rebuilds transitions
    from), so replay never has to parse the human-facing ``transition``
    description — node ids containing ``,``/``(``/``)`` replay exactly.
    The description (``SWA(5,6)``-style) remains the display form, and
    the ``cost_after`` recorded at application time lets reports
    attribute cost deltas to individual steps without re-estimating.
    """

    mnemonic: str
    transition: str
    cost_after: float
    #: Bound node ids, in :func:`repro.obs.provenance.transition_targets`
    #: order.  Empty only on legacy (pre-structured) serialized steps.
    targets: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "mnemonic": self.mnemonic,
            "transition": self.transition,
            "cost_after": self.cost_after,
            "targets": list(self.targets),
        }


@dataclass
class SearchState:
    """One explored state: workflow + signature + cost report."""

    workflow: ETLWorkflow
    signature: str
    report: CostReport
    #: Transition that produced this state from its parent (None for S0).
    produced_by: Transition | None = None
    #: Number of transitions from the initial state.
    depth: int = 0
    #: Full transition chain from the initial state (provenance).
    lineage: tuple[LineageStep, ...] = field(default=())

    @property
    def cost(self) -> float:
        return self.report.total

    @classmethod
    def initial(cls, workflow: ETLWorkflow, model: CostModel) -> "SearchState":
        """Wrap the initial workflow S0 (validates it first)."""
        workflow.validate()
        workflow.propagate_schemas()
        return cls(
            workflow=workflow,
            signature=state_signature(workflow),
            report=estimate(workflow, model),
        )

    def successor(
        self,
        transition: Transition,
        successor_workflow: ETLWorkflow,
        model: CostModel,
        incremental: bool = True,
    ) -> "SearchState":
        """Wrap a successor produced by ``transition``.

        With ``incremental=True`` the successor's cost derives from this
        state's report via the semi-incremental scheme of section 4.1.
        """
        if incremental:
            report = estimate_incremental(
                successor_workflow, model, self.report, transition.affected_nodes()
            )
        else:
            report = estimate(successor_workflow, model)
        recorder = get_recorder()
        if recorder.active:
            recorder.counter("search.delta_recost_nodes").add(
                report.recosted_nodes
            )
        return SearchState(
            workflow=successor_workflow,
            signature=state_signature(successor_workflow),
            report=report,
            produced_by=transition,
            depth=self.depth + 1,
            lineage=self.lineage
            + (
                LineageStep(
                    mnemonic=transition.mnemonic,
                    transition=transition.describe(),
                    cost_after=report.total,
                    targets=transition_targets(transition),
                ),
            ),
        )

    def try_successor(
        self, transition: Transition, model: CostModel
    ) -> "SearchState | None":
        """Apply ``transition`` via the incremental fast path and wrap it.

        The one-call hot-loop entry point: structural check, dict-level
        copy, patched/Kahn topology, incremental validation + schema
        propagation (``Transition.apply_fast``), then delta re-costing
        against this state's report.  Returns ``None`` when the
        transition is inapplicable.  ``REPRO_FULL_RECOST`` /
        ``REPRO_COST_ORACLE`` apply (see :mod:`repro.core.flags`).
        """
        successor_workflow = transition.try_apply_fast(self.workflow)
        if successor_workflow is None:
            return None
        return self.successor(transition, successor_workflow, model)
