"""HS — the Heuristic Search algorithm of Fig. 7, and its greedy variant.

HS prunes the exhaustive space with four heuristics (section 4.2):

1. factorize only *homologous* activities against their common binary;
2. distribute only activities that can actually be transferred in front of
   a binary activity;
3. merge constraint-bound activities up front (and split at the end);
4. divide and conquer — optimize *local groups* instead of the whole graph.

The four phases:

* **Phase I** — swap-optimize the ordering of every local group of S0.
* **Phase II** — for each homologous pair, push both members next to their
  common binary activity (``ShiftFrw`` = a chain of swaps) and factorize;
  every resulting state is recorded in ``visited``.
* **Phase III** — for each recorded state, pull each distributable
  activity of the *initial* state back in front of its upstream binary
  (``ShiftBkw``) and distribute it into the branches.
* **Phase IV** — re-run the Phase-I swap optimization on every recorded
  state, since factorization/distribution changed the local groups.

Where the 8-page pseudocode leaves latitude, this implementation chooses
(and documents) the following: Phase I explores each local group's
reachable orderings best-first under a per-group budget
(``HSConfig.group_cap``); **HS-Greedy** replaces that exploration with
first-improvement hill climbing — "swaps only those that lead to a state
with less cost" — which is exactly the paper's description of the greedy
variant, and reproduces its profile (nearly as good on small workflows,
much faster, increasingly unstable on large ones).

Visited-state accounting matches section 4.1: every *unique* generated
state (signature-deduplicated), including the intermediate states of
shifts, counts as visited.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

from repro.core.activity import Activity, CompositeActivity, base_clone_id
from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.search.result import OptimizationResult
from repro.core.search.state import SearchState
from repro.core.transitions.factorize import Distribute, Factorize
from repro.core.transitions.merge import Merge, split_fully
from repro.core.transitions.swap import Swap
from repro.core.workflow import ETLWorkflow, Node
from repro.exceptions import SearchBudgetExceeded, TransitionError, WorkflowError

__all__ = ["HSConfig", "heuristic_search"]


@dataclass
class HSConfig:
    """Tuning knobs for HS / HS-Greedy.

    Attributes:
        group_cap: per-local-group budget (number of ordering states to
            expand) for the Phase I/IV best-first exploration; ignored in
            greedy mode.
        phase_state_cap: maximum number of states kept on the Phase II/III
            ``visited`` worklist (guards pathological fan-out).
        phase_iv_cap: number of recorded states (cheapest first) whose
            local groups Phase IV re-optimizes.
        max_seconds: overall wall-clock budget; best-so-far is returned
            with ``completed=False`` when it trips.
    """

    group_cap: int = 64
    phase_state_cap: int = 48
    phase_iv_cap: int = 8
    max_seconds: float | None = None


class _Session:
    """Shared bookkeeping: cost model, dedup, clocks, and the running SMIN."""

    def __init__(self, model: CostModel, config: HSConfig):
        self.model = model
        self.config = config
        self.seen: set[str] = set()
        self.started = time.perf_counter()
        self.best: SearchState | None = None

    def record(self, state: SearchState) -> bool:
        """Register a generated state; returns False when already seen."""
        if self.config.max_seconds is not None:
            if time.perf_counter() - self.started > self.config.max_seconds:
                raise SearchBudgetExceeded("HS wall-clock budget exhausted")
        if state.signature in self.seen:
            return False
        self.seen.add(state.signature)
        if self.best is None or state.cost < self.best.cost:
            self.best = state
        return True

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.started


def heuristic_search(
    workflow: ETLWorkflow,
    model: CostModel | None = None,
    merge_constraints: tuple[tuple[str, str], ...] = (),
    config: HSConfig | None = None,
    greedy: bool = False,
) -> OptimizationResult:
    """Run HS (or HS-Greedy with ``greedy=True``) on the initial state.

    Args:
        workflow: the initial workflow ``S0``.
        model: cost model; defaults to the processed-rows model.
        merge_constraints: pairs of activity ids to MERGE during
            pre-processing (design constraints / user constraints); the
            resulting packages are SPLIT again before returning.
        config: see :class:`HSConfig`.
        greedy: switch to the HS-Greedy swap strategy.
    """
    model = model if model is not None else ProcessedRowsCostModel()
    config = config if config is not None else HSConfig()
    session = _Session(model, config)

    # Pre-processing (Fig. 7 lines 4-8): apply MER per constraints.
    prepared = _apply_merge_constraints(workflow, merge_constraints)
    initial = SearchState.initial(prepared, model)
    # Register S0 directly: the budget clock must not trip before the
    # search proper starts.
    session.seen.add(initial.signature)
    session.best = initial
    # Results are reported against the *unmerged* S0 for comparability;
    # merging never changes the state cost (components are priced as-is).
    reported_initial = SearchState.initial(workflow.copy(), model)

    homologous_pairs = _find_homologous(initial.workflow)
    distributable = _find_distributable(initial.workflow)

    completed = True
    visited_list: list[SearchState] = []
    try:
        # Phase I (lines 9-13): swap-optimize every local group.
        smin = _optimize_all_groups(initial, session, greedy)
        visited_list = [smin]

        # Phase II (lines 14-20): factorize homologous pairs.
        visited_list = _phase_factorize(visited_list, homologous_pairs, session)

        # Phase III (lines 21-28): distribute the initial state's
        # distributable activities over each recorded state.
        visited_list = _phase_distribute(visited_list, distributable, session)

        # Phase IV (lines 29-35): re-optimize the groups of the most
        # promising recorded states (the factorized/distributed designs
        # changed their local groups, so new orderings may now win).
        ranked = sorted(visited_list, key=lambda s: (s.cost, s.signature))
        for state in ranked[: config.phase_iv_cap]:
            _optimize_all_groups(state, session, greedy)
    except SearchBudgetExceeded:
        completed = False

    best = session.best if session.best is not None else initial
    # Post-processing (line 36): split every merged activity.
    best = _split_all(best, session)

    return OptimizationResult(
        algorithm="HS-Greedy" if greedy else "HS",
        initial=reported_initial,
        best=best,
        visited_states=len(session.seen),
        elapsed_seconds=session.elapsed,
        completed=completed,
    )


# -- pre/post-processing -------------------------------------------------------------


def _apply_merge_constraints(
    workflow: ETLWorkflow, merge_constraints: tuple[tuple[str, str], ...]
) -> ETLWorkflow:
    current = workflow.copy()
    for first_id, second_id in merge_constraints:
        first = current.node_by_id(first_id)
        second = current.node_by_id(second_id)
        if not isinstance(first, Activity) or not isinstance(second, Activity):
            raise WorkflowError(
                f"merge constraint ({first_id},{second_id}) names a recordset"
            )
        current = Merge(first, second).apply(current)
    return current


def _split_all(state: SearchState, session: _Session) -> SearchState:
    has_composites = any(
        isinstance(a, CompositeActivity) for a in state.workflow.activities()
    )
    if not has_composites:
        return state
    split_workflow = split_fully(state.workflow)
    final = SearchState.initial(split_workflow, session.model)
    return final


# -- homologous / distributable discovery (Fig. 7 lines 6-7) ---------------------------


def _next_binary_downstream(
    workflow: ETLWorkflow, activity: Activity
) -> Activity | None:
    """The first binary activity the flow of ``activity`` reaches."""
    current: Node = activity
    for _ in range(len(workflow)):
        consumers = workflow.consumers(current)
        if len(consumers) != 1:
            return None
        nxt = consumers[0]
        if isinstance(nxt, Activity):
            if nxt.is_binary:
                return nxt
            current = nxt
            continue
        return None
    return None


def _nearest_binary_upstream(
    workflow: ETLWorkflow, activity: Activity
) -> Activity | None:
    """The binary activity feeding the local group of ``activity``, if any."""
    current: Node = activity
    for _ in range(len(workflow)):
        providers = workflow.providers(current)
        if len(providers) != 1:
            return None
        prev = providers[0]
        if isinstance(prev, Activity):
            if prev.is_binary:
                return prev
            current = prev
            continue
        return None
    return None


def _find_homologous(
    workflow: ETLWorkflow,
) -> list[tuple[Activity, Activity, Activity]]:
    """All (a1, a2, ab): homologous pair converging on binary ab."""
    unary = [
        a
        for a in workflow.activities()
        if a.is_unary and not isinstance(a, CompositeActivity)
    ]
    unary.sort(key=lambda a: a.id)
    found: list[tuple[Activity, Activity, Activity]] = []
    for first, second in itertools.combinations(unary, 2):
        if first.semantics_key() != second.semantics_key():
            continue
        binary_first = _next_binary_downstream(workflow, first)
        binary_second = _next_binary_downstream(workflow, second)
        if binary_first is None or binary_first is not binary_second:
            continue
        if binary_first.template.name not in first.distributes_over:
            continue
        found.append((first, second, binary_first))
    return found


def _find_distributable(workflow: ETLWorkflow) -> list[Activity]:
    """Activities that could be transferred in front of an upstream binary."""
    found: list[Activity] = []
    for activity in sorted(workflow.activities(), key=lambda a: a.id):
        if not activity.is_unary or isinstance(activity, CompositeActivity):
            continue
        binary = _nearest_binary_upstream(workflow, activity)
        if binary is None:
            continue
        if binary.template.name in activity.distributes_over:
            found.append(activity)
    return found


def _root_id(activity_id: str) -> str:
    """Strip DIS clone suffixes recursively: ``8_1_2`` -> ``8``."""
    current = activity_id
    while True:
        stripped = base_clone_id(current)
        if stripped == current:
            return current
        current = stripped


def _distributable_in_state(
    state: SearchState, distributable_roots: set[str]
) -> list[Activity]:
    """Activities of ``state`` that descend from an initial distributable.

    Phase III must not re-distribute activities factorized in Phase II
    (Fig. 7 uses the *initial* state's D), but a clone produced by an
    earlier DIS is still "an activity of the initial state" — just pushed
    into a branch — and distributing it again cascades a selection down a
    union *tree*.  Membership is therefore tested on the clone-root id.
    """
    found: list[Activity] = []
    for activity in sorted(state.workflow.activities(), key=lambda a: a.id):
        if not activity.is_unary or isinstance(activity, CompositeActivity):
            continue
        if _root_id(activity.id) in distributable_roots:
            found.append(activity)
    return found


# -- shifting (chains of swaps; every intermediate is a counted state) ------------------


def _shift_forward_state(
    state: SearchState, activity: Activity, binary: Activity, session: _Session
) -> SearchState | None:
    current = state
    for _ in range(len(state.workflow)):
        consumers = current.workflow.consumers(activity)
        if len(consumers) != 1:
            return None
        consumer = consumers[0]
        if consumer is binary:
            return current
        if not isinstance(consumer, Activity) or not consumer.is_unary:
            return None
        swap = Swap(activity, consumer)
        shifted = swap.try_apply(current.workflow)
        if shifted is None:
            return None
        current = current.successor(swap, shifted, session.model)
        session.record(current)
    return None


def _shift_backward_state(
    state: SearchState, activity: Activity, binary: Activity, session: _Session
) -> SearchState | None:
    current = state
    for _ in range(len(state.workflow)):
        providers = current.workflow.providers(activity)
        if len(providers) != 1:
            return None
        provider = providers[0]
        if provider is binary:
            return current
        if not isinstance(provider, Activity) or not provider.is_unary:
            return None
        swap = Swap(provider, activity)
        shifted = swap.try_apply(current.workflow)
        if shifted is None:
            return None
        current = current.successor(swap, shifted, session.model)
        session.record(current)
    return None


# -- Phase I / IV: local-group ordering optimization -------------------------------------


def _optimize_all_groups(
    state: SearchState, session: _Session, greedy: bool
) -> SearchState:
    """Optimize each local group's ordering in turn (cumulative)."""
    current = state
    for group in current.workflow.local_groups():
        members = set(group)
        if len(members) < 2:
            continue
        if greedy:
            current = _hill_climb_group(current, members, session)
        else:
            current = _explore_group(current, members, session)
    return current


def _group_swaps(workflow: ETLWorkflow, members: set[Activity]) -> list[Swap]:
    """Adjacent swap candidates confined to one local group."""
    swaps: list[Swap] = []
    for activity in sorted(members, key=lambda a: a.id):
        consumers = workflow.consumers(activity)
        if len(consumers) != 1:
            continue
        consumer = consumers[0]
        if isinstance(consumer, Activity) and consumer in members:
            swaps.append(Swap(activity, consumer))
    return swaps


def _explore_group(
    state: SearchState, members: set[Activity], session: _Session
) -> SearchState:
    """Best-first exploration of a group's reachable orderings (HS)."""
    best = state
    local_seen = {state.signature}
    counter = itertools.count()
    heap: list[tuple[float, int, SearchState]] = [(state.cost, next(counter), state)]
    expansions = 0
    while heap and expansions < session.config.group_cap:
        _, _, expanding = heapq.heappop(heap)
        expansions += 1
        for swap in _group_swaps(expanding.workflow, members):
            shifted = swap.try_apply(expanding.workflow)
            if shifted is None:
                continue
            successor = expanding.successor(swap, shifted, session.model)
            if successor.signature in local_seen:
                continue
            local_seen.add(successor.signature)
            session.record(successor)
            if successor.cost < best.cost:
                best = successor
            heapq.heappush(heap, (successor.cost, next(counter), successor))
    return best


def _hill_climb_group(
    state: SearchState, members: set[Activity], session: _Session
) -> SearchState:
    """First-improvement hill climbing over a group's ordering (HS-Greedy)."""
    current = state
    improved = True
    while improved:
        improved = False
        for swap in _group_swaps(current.workflow, members):
            shifted = swap.try_apply(current.workflow)
            if shifted is None:
                continue
            successor = current.successor(swap, shifted, session.model)
            session.record(successor)
            if successor.cost < current.cost:
                current = successor
                improved = True
                break
    return current


# -- Phase II: factorization -------------------------------------------------------------


def _phase_factorize(
    visited: list[SearchState],
    homologous_pairs: list[tuple[Activity, Activity, Activity]],
    session: _Session,
) -> list[SearchState]:
    worklist = list(visited)
    produced = list(visited)
    for state in worklist:
        for first, second, binary in homologous_pairs:
            if first not in state.workflow or second not in state.workflow:
                continue
            if binary not in state.workflow:
                continue
            shifted_first = _shift_forward_state(state, first, binary, session)
            if shifted_first is None:
                continue
            shifted_both = _shift_forward_state(
                shifted_first, second, binary, session
            )
            if shifted_both is None:
                continue
            factorize = Factorize(binary, first, second)
            try:
                new_workflow = factorize.apply(shifted_both.workflow)
            except TransitionError:
                continue
            new_state = shifted_both.successor(
                factorize, new_workflow, session.model
            )
            if session.record(new_state) and len(produced) < session.config.phase_state_cap:
                produced.append(new_state)
                worklist.append(new_state)
    return produced


# -- Phase III: distribution ---------------------------------------------------------------


def _phase_distribute(
    visited: list[SearchState],
    distributable: list[Activity],
    session: _Session,
) -> list[SearchState]:
    distributable_roots = {_root_id(a.id) for a in distributable}
    worklist = list(visited)
    produced = list(visited)
    for state in worklist:
        for activity in _distributable_in_state(state, distributable_roots):
            binary = _nearest_binary_upstream(state.workflow, activity)
            if binary is None:
                continue
            if binary.template.name not in activity.distributes_over:
                continue
            shifted = _shift_backward_state(state, activity, binary, session)
            if shifted is None:
                continue
            distribute = Distribute(binary, activity)
            try:
                new_workflow = distribute.apply(shifted.workflow)
            except TransitionError:
                continue
            new_state = shifted.successor(distribute, new_workflow, session.model)
            if session.record(new_state) and len(produced) < session.config.phase_state_cap:
                produced.append(new_state)
                worklist.append(new_state)
    return produced
