"""HS — the Heuristic Search algorithm of Fig. 7, and its greedy variant.

HS prunes the exhaustive space with four heuristics (section 4.2):

1. factorize only *homologous* activities against their common binary;
2. distribute only activities that can actually be transferred in front of
   a binary activity;
3. merge constraint-bound activities up front (and split at the end);
4. divide and conquer — optimize *local groups* instead of the whole graph.

The four phases:

* **Phase I** — swap-optimize the ordering of every local group of S0.
* **Phase II** — for each homologous pair, push both members next to their
  common binary activity (``ShiftFrw`` = a chain of swaps) and factorize;
  every resulting state is recorded in ``visited``.
* **Phase III** — for each recorded state, pull each distributable
  activity of the *initial* state back in front of its upstream binary
  (``ShiftBkw``) and distribute it into the branches.
* **Phase IV** — re-run the Phase-I swap optimization on every recorded
  state, since factorization/distribution changed the local groups.

Where the 8-page pseudocode leaves latitude, this implementation chooses
(and documents) the following: Phase I explores each local group's
reachable orderings best-first under a per-group budget
(``HSConfig.group_cap``); **HS-Greedy** replaces that exploration with
first-improvement hill climbing — "swaps only those that lead to a state
with less cost" — which is exactly the paper's description of the greedy
variant, and reproduces its profile (nearly as good on small workflows,
much faster, increasingly unstable on large ones).

Group optimization is *hermetic*: each local group is explored
independently from the phase's base state (its reachable orderings and
their costs depend only on the group's internal ordering — the input
cardinality and the rest of the graph are invariant under in-group
swaps), and the per-group winners are composed in group order.  Because
every group task is a pure function of (base workflow, member ids), the
tasks can run on a process pool (``SearchBudget.jobs``) or be replayed
from the transposition cache, and serial, parallel and warm-cache runs
all return byte-identical best states and visited counts.

Visited-state accounting matches section 4.1: every *unique* generated
state (signature-deduplicated), including the intermediate states of
shifts, counts as visited.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass

from repro.core.activity import Activity, CompositeActivity
from repro.core.cost.estimator import estimate
from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.search.bound import (
    bound_prunes,
    clone_root_id,
    dominance_class,
    group_lower_bound,
)
from repro.core.search.budget import SearchBudget
from repro.core.search.result import OptimizationResult
from repro.core.search.state import SearchState
from repro.core.search.transposition import (
    CacheNamespace,
    TranspositionCache,
    _model_key,
)
from repro.obs import (
    NULL_RECORDER,
    Recorder,
    get_recorder,
    record_transition,
    rejection_reason,
    use_recorder,
)
from repro.obs.provenance import build_transition
from repro.core.signature import state_signature, workflow_fingerprint
from repro.core.transitions.factorize import Distribute, Factorize
from repro.core.transitions.merge import Merge, Split
from repro.core.transitions.swap import Swap
from repro.core.workflow import ETLWorkflow, Node
from repro.exceptions import SearchBudgetExceeded, TransitionError, WorkflowError

__all__ = ["HSConfig", "heuristic_search"]


@dataclass
class HSConfig:
    """Tuning knobs for HS / HS-Greedy.

    Attributes:
        group_cap: per-local-group budget (number of ordering states to
            expand) for the Phase I/IV best-first exploration; ignored in
            greedy mode.
        phase_state_cap: maximum number of states kept on the Phase II/III
            ``visited`` worklist (guards pathological fan-out).
        phase_iv_cap: number of recorded states (cheapest first) whose
            local groups Phase IV re-optimizes.
        max_seconds: overall wall-clock budget; best-so-far is returned
            with ``completed=False`` when it trips.
    """

    group_cap: int = 64
    phase_state_cap: int = 48
    phase_iv_cap: int = 8
    max_seconds: float | None = None


class _Session:
    """Shared bookkeeping: cost model, dedup, clocks, and the running SMIN.

    Budget checks live only here — in the main process — so a wall-clock
    or state budget trips at the same replay position regardless of how
    many workers computed the group outcomes.
    """

    def __init__(
        self,
        model: CostModel,
        config: HSConfig,
        budget: SearchBudget,
        ns: CacheNamespace | None = None,
        pool=None,
        algorithm: str = "HS",
    ):
        self.model = model
        self.config = config
        self.budget = budget
        self.algorithm = algorithm
        self.max_seconds = (
            budget.max_seconds
            if budget.max_seconds is not None
            else config.max_seconds
        )
        self.ns = ns
        self.pool = pool
        #: Fork-server token of the preloaded (S0 workflow, model) pair;
        #: set when a pool is attached, so group tasks ship compact
        #: lineage scripts instead of pickled workflows.
        self.preload_token: str | None = None
        self.seen: set[str] = set()
        self.started = time.perf_counter()
        self.best: SearchState | None = None

    def check_budget(self) -> None:
        if self.max_seconds is not None:
            if time.perf_counter() - self.started > self.max_seconds:
                raise SearchBudgetExceeded("HS wall-clock budget exhausted")
        if self.budget.max_states is not None:
            if len(self.seen) >= self.budget.max_states:
                raise SearchBudgetExceeded("HS state budget exhausted")

    def record(self, state: SearchState) -> bool:
        """Register a generated (materialized) state; False when already seen."""
        self.check_budget()
        if state.signature in self.seen:
            return False
        self.seen.add(state.signature)
        if self.ns is not None:
            self.ns.put_cost(state.signature, state.cost)
        if self.best is None or state.cost < self.best.cost:
            self.best = state
        return True

    def record_stream(self, signature: str, cost: float) -> bool:
        """Register a state from a hermetic exploration stream.

        Stream states carry no workflow (they are dominated by the
        composed group-best state, so they never need materializing) but
        count toward ``visited`` exactly like the old in-line exploration.
        """
        self.check_budget()
        if signature in self.seen:
            return False
        self.seen.add(signature)
        if self.ns is not None:
            self.ns.put_cost(signature, cost)
        return True

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.started


def heuristic_search(
    workflow: ETLWorkflow,
    model: CostModel | None = None,
    merge_constraints: tuple[tuple[str, str], ...] = (),
    config: HSConfig | None = None,
    greedy: bool = False,
    budget: SearchBudget | None = None,
    pool=None,
) -> OptimizationResult:
    """Run HS (or HS-Greedy with ``greedy=True``) on the initial state.

    Args:
        workflow: the initial workflow ``S0``.
        model: cost model; defaults to the processed-rows model.
        merge_constraints: pairs of activity ids to MERGE during
            pre-processing (design constraints / user constraints); the
            resulting packages are SPLIT again before returning.
        config: see :class:`HSConfig` (tuning knobs of the four phases).
        greedy: switch to the HS-Greedy swap strategy.
        budget: uniform :class:`SearchBudget` — stopping criteria plus the
            ``jobs`` / ``cache`` execution knobs.  ``budget.max_seconds``
            supersedes the legacy ``config.max_seconds`` when both are set.
        pool: a :class:`~repro.core.search.parallel.WorkerPool` to reuse
            (:func:`~repro.core.search.parallel.optimize_many` amortizes
            one pool across runs); by default a pool is created on demand
            when ``budget.jobs != 1`` and torn down before returning.
    """
    model = model if model is not None else ProcessedRowsCostModel()
    config = config if config is not None else HSConfig()
    budget = budget if budget is not None else SearchBudget()

    cache, owned_cache = TranspositionCache.resolve(budget.cache)
    hits_before = cache.hits
    jobs = budget.resolved_jobs()

    owned_pool = False
    if pool is None and jobs > 1:
        from repro.core.search.parallel import WorkerPool

        pool = WorkerPool(jobs)
        owned_pool = True

    algorithm = "HS-Greedy" if greedy else "HS"
    try:
        # Results are reported against the *unmerged* S0 for comparability;
        # merging never changes the state cost (components are priced as-is).
        reported_initial = SearchState.initial(workflow.copy(), model)
        # Pre-processing (Fig. 7 lines 4-8): apply MER per constraints —
        # as successor steps from S0, so the constraint merges are part of
        # the winning lineage and the whole chain replays from S0.
        initial = _apply_merge_constraints(
            reported_initial, merge_constraints, model, algorithm
        )
        session = _Session(
            model,
            config,
            budget,
            ns=cache.namespace(initial.workflow, model),
            pool=pool,
            algorithm=algorithm,
        )
        if pool is not None:
            # Fork-server preload: install (S0, model) in the parent
            # before the pool's first fan-out, so forked workers inherit
            # the workflow for free and group tasks reference it by
            # token + lineage script instead of pickling whole states.
            session.preload_token = (
                f"hs:{workflow_fingerprint(reported_initial.workflow)}"
                f":{_model_key(model)}"
            )
            pool.preload(
                session.preload_token, (reported_initial.workflow, model)
            )
        # Register S0 directly: the budget clock must not trip before the
        # search proper starts.
        session.seen.add(initial.signature)
        session.best = initial

        homologous_pairs = _find_homologous(initial.workflow)
        distributable = _find_distributable(initial.workflow)

        recorder = get_recorder()
        completed = True
        visited_list: list[SearchState] = []
        try:
            # Phase I (lines 9-13): swap-optimize every local group.
            with recorder.span("search.phase", algorithm=algorithm, phase="I"):
                smin = _optimize_all_groups(initial, session, greedy)
            visited_list = [smin]

            # Phase II (lines 14-20): factorize homologous pairs.
            with recorder.span("search.phase", algorithm=algorithm, phase="II"):
                visited_list = _phase_factorize(
                    visited_list, homologous_pairs, session
                )

            # Phase III (lines 21-28): distribute the initial state's
            # distributable activities over each recorded state.
            with recorder.span(
                "search.phase", algorithm=algorithm, phase="III"
            ):
                visited_list = _phase_distribute(
                    visited_list, distributable, session
                )

            # Phase IV (lines 29-35): re-optimize the groups of the most
            # promising recorded states (the factorized/distributed designs
            # changed their local groups, so new orderings may now win).
            with recorder.span("search.phase", algorithm=algorithm, phase="IV"):
                ranked = sorted(
                    visited_list, key=lambda s: (s.cost, s.signature)
                )
                for state in ranked[: config.phase_iv_cap]:
                    _optimize_all_groups(state, session, greedy)
        except SearchBudgetExceeded:
            completed = False

        best = session.best if session.best is not None else initial
        # Post-processing (line 36): split every merged activity.
        best = _split_all(best, session)

        return OptimizationResult(
            algorithm=algorithm,
            initial=reported_initial,
            best=best,
            visited_states=len(session.seen),
            elapsed_seconds=session.elapsed,
            completed=completed,
            cache_hits=cache.hits - hits_before,
            jobs=jobs,
            lineage=best.lineage,
        )
    finally:
        if owned_pool:
            pool.close()
        if owned_cache:
            cache.flush()


# -- pre/post-processing -------------------------------------------------------------


def _apply_merge_constraints(
    state: SearchState,
    merge_constraints: tuple[tuple[str, str], ...],
    model: CostModel,
    algorithm: str,
) -> SearchState:
    """Apply constraint merges as MER successor steps from S0.

    Building the merged initial through :meth:`SearchState.successor`
    (with a full re-estimate, matching the old direct estimate of the
    merged workflow) keeps the constraint merges in the lineage, so the
    winning chain replays from the *unmerged* reported initial.
    """
    current = state
    for first_id, second_id in merge_constraints:
        first = current.workflow.node_by_id(first_id)
        second = current.workflow.node_by_id(second_id)
        if not isinstance(first, Activity) or not isinstance(second, Activity):
            raise WorkflowError(
                f"merge constraint ({first_id},{second_id}) names a recordset"
            )
        merge = Merge(first, second)
        merged = current.successor(
            merge, merge.apply(current.workflow), model, incremental=False
        )
        record_transition(
            algorithm=algorithm,
            transition=merge,
            cost_before=current.cost,
            cost_after=merged.cost,
            accepted=True,
            reason="merge constraint (pre-processing)",
        )
        current = merged
    return current


def _split_all(state: SearchState, session: _Session) -> SearchState:
    """Post-processing (Fig. 7 line 36): SPL until no composites remain.

    Each split is a successor step (full re-estimate, as the old direct
    re-wrap did), so the post-processing splits extend the lineage and the
    returned state's chain replays end-to-end.
    """
    current = state
    while True:
        merged = next(
            (
                node
                for node in current.workflow.activities()
                if isinstance(node, CompositeActivity)
            ),
            None,
        )
        if merged is None:
            return current
        split = Split(merged)
        after = current.successor(
            split, split.apply(current.workflow), session.model,
            incremental=False,
        )
        record_transition(
            algorithm=session.algorithm,
            transition=split,
            cost_before=current.cost,
            cost_after=after.cost,
            accepted=True,
            reason="post-processing split",
        )
        current = after


# -- homologous / distributable discovery (Fig. 7 lines 6-7) ---------------------------


def _next_binary_downstream(
    workflow: ETLWorkflow, activity: Activity
) -> Activity | None:
    """The first binary activity the flow of ``activity`` reaches."""
    current: Node = activity
    for _ in range(len(workflow)):
        consumers = workflow.consumers(current)
        if len(consumers) != 1:
            return None
        nxt = consumers[0]
        if isinstance(nxt, Activity):
            if nxt.is_binary:
                return nxt
            current = nxt
            continue
        return None
    return None


def _nearest_binary_upstream(
    workflow: ETLWorkflow, activity: Activity
) -> Activity | None:
    """The binary activity feeding the local group of ``activity``, if any."""
    current: Node = activity
    for _ in range(len(workflow)):
        providers = workflow.providers(current)
        if len(providers) != 1:
            return None
        prev = providers[0]
        if isinstance(prev, Activity):
            if prev.is_binary:
                return prev
            current = prev
            continue
        return None
    return None


def _find_homologous(
    workflow: ETLWorkflow,
) -> list[tuple[Activity, Activity, Activity]]:
    """All (a1, a2, ab): homologous pair converging on binary ab."""
    unary = [
        a
        for a in workflow.activities()
        if a.is_unary and not isinstance(a, CompositeActivity)
    ]
    unary.sort(key=lambda a: a.id)
    found: list[tuple[Activity, Activity, Activity]] = []
    for first, second in itertools.combinations(unary, 2):
        if first.semantics_key() != second.semantics_key():
            continue
        binary_first = _next_binary_downstream(workflow, first)
        binary_second = _next_binary_downstream(workflow, second)
        if binary_first is None or binary_first is not binary_second:
            continue
        if binary_first.template.name not in first.distributes_over:
            continue
        found.append((first, second, binary_first))
    return found


def _find_distributable(workflow: ETLWorkflow) -> list[Activity]:
    """Activities that could be transferred in front of an upstream binary."""
    found: list[Activity] = []
    for activity in sorted(workflow.activities(), key=lambda a: a.id):
        if not activity.is_unary or isinstance(activity, CompositeActivity):
            continue
        binary = _nearest_binary_upstream(workflow, activity)
        if binary is None:
            continue
        if binary.template.name in activity.distributes_over:
            found.append(activity)
    return found


#: Strip DIS clone suffixes recursively: ``8_1_2`` -> ``8``.
_root_id = clone_root_id


def _distributable_in_state(
    state: SearchState, distributable_roots: set[str]
) -> list[Activity]:
    """Activities of ``state`` that descend from an initial distributable.

    Phase III must not re-distribute activities factorized in Phase II
    (Fig. 7 uses the *initial* state's D), but a clone produced by an
    earlier DIS is still "an activity of the initial state" — just pushed
    into a branch — and distributing it again cascades a selection down a
    union *tree*.  Membership is therefore tested on the clone-root id.
    """
    found: list[Activity] = []
    for activity in sorted(state.workflow.activities(), key=lambda a: a.id):
        if not activity.is_unary or isinstance(activity, CompositeActivity):
            continue
        if _root_id(activity.id) in distributable_roots:
            found.append(activity)
    return found


# -- shifting (chains of swaps; every intermediate is a counted state) ------------------


def _shift_forward_state(
    state: SearchState, activity: Activity, binary: Activity, session: _Session
) -> SearchState | None:
    current = state
    for _ in range(len(state.workflow)):
        consumers = current.workflow.consumers(activity)
        if len(consumers) != 1:
            return None
        consumer = consumers[0]
        if consumer is binary:
            return current
        if not isinstance(consumer, Activity) or not consumer.is_unary:
            return None
        swap = Swap(activity, consumer)
        shifted = swap.try_apply_fast(current.workflow)
        if shifted is None:
            record_transition(
                algorithm=session.algorithm,
                transition=swap,
                cost_before=current.cost,
                accepted=False,
                reason=rejection_reason(swap, current.workflow),
            )
            return None
        before = current.cost
        current = current.successor(swap, shifted, session.model)
        record_transition(
            algorithm=session.algorithm,
            transition=swap,
            cost_before=before,
            cost_after=current.cost,
            accepted=True,
        )
        session.record(current)
    return None


def _shift_backward_state(
    state: SearchState, activity: Activity, binary: Activity, session: _Session
) -> SearchState | None:
    current = state
    for _ in range(len(state.workflow)):
        providers = current.workflow.providers(activity)
        if len(providers) != 1:
            return None
        provider = providers[0]
        if provider is binary:
            return current
        if not isinstance(provider, Activity) or not provider.is_unary:
            return None
        swap = Swap(provider, activity)
        shifted = swap.try_apply_fast(current.workflow)
        if shifted is None:
            record_transition(
                algorithm=session.algorithm,
                transition=swap,
                cost_before=current.cost,
                accepted=False,
                reason=rejection_reason(swap, current.workflow),
            )
            return None
        before = current.cost
        current = current.successor(swap, shifted, session.model)
        record_transition(
            algorithm=session.algorithm,
            transition=swap,
            cost_before=before,
            cost_after=current.cost,
            accepted=True,
        )
        session.record(current)
    return None


# -- Phase I / IV: local-group ordering optimization -------------------------------------
#
# Each group is explored *hermetically*: a pure function of the base
# workflow and the group's member ids, with a freshly-estimated base cost
# report so a worker process computes bit-identical floats to an in-process
# run.  The main process then composes the outcomes in group order —
# replaying each stream into the visited set and applying each best path —
# so serial, parallel and warm-cache runs agree byte-for-byte.


def _group_memo_key(
    signature: str,
    member_ids: list[str],
    greedy: bool,
    group_cap: int,
    beam_width: int | None = None,
    bound: bool = False,
) -> str:
    """Cache key for one group outcome — the mode suffix grows only when
    a pruning knob is on, so pre-existing cache entries stay valid."""
    if greedy:
        # Hill climbing ignores the pruning knobs (its frontier is one
        # state), so greedy outcomes share a key across pruning modes.
        mode = "greedy"
    else:
        mode = f"bf{group_cap}"
        if beam_width is not None:
            mode += f"+bw{beam_width}"
        if bound:
            mode += "+bnb"
    return f"{signature}|{'.'.join(member_ids)}|{mode}"


#: Batch local groups into one pool task only past this count — small
#: fan-outs keep one group per task (maximum worker overlap), large ones
#: amortize dispatch + result shipping.  Both the in-process and pooled
#: paths use the same batching (a pure function of the pending count),
#: so jobs=N telemetry stays byte-identical to serial.
_GROUP_BATCH_THRESHOLD = 8
_GROUP_BATCH = 4

#: Worker-side memo of replayed base workflows, keyed by
#: ``(preload token, lineage script)`` — a forked worker serves many
#: group tasks against the same few base states, so each state's script
#: replays at most once per worker process.
_REPLAY_CACHE: dict[tuple, ETLWorkflow] = {}
_REPLAY_CACHE_CAP = 32

#: Base-workflow reference forms inside a group task.
_BASE_INLINE = "inline"
_BASE_REPLAY = "replay"


def _replay_script(
    base_workflow: ETLWorkflow,
    script: tuple[tuple[str, tuple[str, ...]], ...],
    signature: str,
) -> ETLWorkflow:
    """Reconstruct a search state's workflow from its lineage script.

    The script is the state's lineage as structured ``(mnemonic,
    target ids)`` payloads — replayed through the real transition system
    (PR 5's :func:`~repro.obs.provenance.build_transition` machinery) on
    a copy of the preloaded S0.  The signature check turns any
    divergence into a loud error instead of a silently different search.
    """
    workflow = base_workflow.copy()
    workflow.validate()
    workflow.propagate_schemas()
    for mnemonic, targets in script:
        workflow = build_transition(workflow, mnemonic, targets).apply(
            workflow
        )
    if state_signature(workflow) != signature:
        raise WorkflowError(
            "lineage-script replay diverged from the shipped state "
            f"signature ({signature[:16]}...)"
        )
    return workflow


def _resolve_base(
    base_ref: tuple, model: CostModel | None
) -> tuple[ETLWorkflow, CostModel]:
    """Materialize a group task's base workflow from its reference.

    ``("inline", workflow)`` carries the workflow directly (in-process
    dispatch, or callers without a preloaded pool); ``("replay", token,
    script, signature)`` rebuilds it from the fork-inherited preload —
    memoized per worker process, so one state's script replays once no
    matter how many of its groups land on the same worker.
    """
    if base_ref[0] == _BASE_INLINE:
        return base_ref[1], model
    _, token, script, signature = base_ref
    from repro.core.search.parallel import preloaded

    base_workflow, preloaded_model = preloaded(token)
    key = (token, script)
    workflow = _REPLAY_CACHE.get(key)
    if workflow is None:
        workflow = _replay_script(base_workflow, script, signature)
        while len(_REPLAY_CACHE) >= _REPLAY_CACHE_CAP:
            _REPLAY_CACHE.pop(next(iter(_REPLAY_CACHE)))
        _REPLAY_CACHE[key] = workflow
    return workflow, (model if model is not None else preloaded_model)


def _group_task(
    args: tuple[
        tuple, list[list[str]], bool, int, CostModel | None, bool,
        int | None, bool,
    ],
) -> tuple[
    list[tuple[list[tuple[str, str]], list[tuple[str, float]]]], list[dict]
]:
    """Explore a batch of local groups from one base workflow (pure).

    Returns ``(outcomes, events)``: one ``(path, explored)`` outcome per
    requested group — ``path`` is the swap sequence (pairs of activity
    ids) leading from the base ordering to the best one found,
    ``explored`` is every locally-new state as ``(signature, cost)`` in
    generation order — and ``events`` is the task's telemetry buffer
    (empty when ``telemetry`` is off), shipped back through the
    result-merge path so worker-side spans land in the parent's
    recorder.  Runs unchanged in-process or on a worker — a worker
    records into a private local recorder either way, so serial and
    parallel runs produce the same telemetry shape and byte-identical
    search outcomes.
    """
    base_ref, group_lists, greedy, group_cap, model, telemetry, beam, bound = (
        args
    )
    workflow, model = _resolve_base(base_ref, model)
    algorithm = "HS-Greedy" if greedy else "HS"
    local = Recorder() if telemetry else NULL_RECORDER
    outcomes: list[
        tuple[list[tuple[str, str]], list[tuple[str, float]]]
    ] = []
    with use_recorder(local):
        base = SearchState(
            workflow=workflow,
            signature=state_signature(workflow),
            report=estimate(workflow, model),
        )
        for member_ids in group_lists:
            members = {
                workflow.node_by_id(member_id) for member_id in member_ids
            }
            with local.span(
                "search.group",
                members=len(member_ids),
                mode="greedy" if greedy else "best_first",
            ):
                if greedy:
                    path, explored = _hill_climb_hermetic(
                        base, members, model, algorithm
                    )
                else:
                    path, explored = _explore_hermetic(
                        base,
                        members,
                        model,
                        group_cap,
                        algorithm,
                        beam_width=beam,
                        bound=bound,
                    )
                local.counter("search.group.states_explored").add(
                    len(explored)
                )
            outcomes.append((path, explored))
    return outcomes, local.events()


def _explore_hermetic(
    base: SearchState,
    members: set[Activity],
    model: CostModel,
    group_cap: int,
    algorithm: str = "HS",
    beam_width: int | None = None,
    bound: bool = False,
) -> tuple[list[tuple[str, str]], list[tuple[str, float]]]:
    """Best-first exploration of a group's reachable orderings (HS).

    ``beam_width`` trims the frontier to the k cheapest orderings after
    each expansion; ``bound`` stops exploring once the incumbent best
    matches the group's admissible lower bound (in-group swaps leave the
    group input and the rest of the graph invariant, so the bound is a
    single constant per group — see
    :func:`~repro.core.search.bound.group_lower_bound`).  Both knobs
    default to off and leave the unpruned exploration byte-identical.
    """
    best_cost = base.cost
    best_path: tuple[tuple[str, str], ...] = ()
    local_seen = {base.signature}
    explored: list[tuple[str, float]] = []
    counter = itertools.count()
    heap: list[
        tuple[float, int, SearchState, tuple[tuple[str, str], ...]]
    ] = [(base.cost, next(counter), base, ())]
    lower_bound: float | None = None
    if bound:
        ordered = sorted(members, key=lambda a: a.id)
        head = next(
            node for node in base.workflow.topological_order()
            if node in members
        )
        input_card = base.report.cardinalities[
            base.workflow.providers(head)[0]
        ]
        outside_cost = base.cost - math.fsum(
            base.report.cost_of(member) for member in ordered
        )
        lower_bound = outside_cost + group_lower_bound(
            ordered, input_card, model
        )
    cutoffs = 0
    expansions = 0
    while heap and expansions < group_cap:
        if lower_bound is not None and bound_prunes(lower_bound, best_cost):
            # No frontier state can lead below the bound the incumbent
            # already meets — every remaining expansion is cut off.
            cutoffs += len(heap)
            break
        _, _, expanding, path = heapq.heappop(heap)
        expansions += 1
        for swap in _group_swaps(expanding.workflow, members):
            shifted = swap.try_apply_fast(expanding.workflow)
            if shifted is None:
                record_transition(
                    algorithm=algorithm,
                    transition=swap,
                    cost_before=expanding.cost,
                    accepted=False,
                    reason=rejection_reason(swap, expanding.workflow),
                )
                continue
            successor = expanding.successor(swap, shifted, model)
            record_transition(
                algorithm=algorithm,
                transition=swap,
                cost_before=expanding.cost,
                cost_after=successor.cost,
                accepted=True,
            )
            if successor.signature in local_seen:
                continue
            local_seen.add(successor.signature)
            explored.append((successor.signature, successor.cost))
            successor_path = path + ((swap.first.id, swap.second.id),)
            if successor.cost < best_cost:
                best_cost = successor.cost
                best_path = successor_path
            heapq.heappush(
                heap, (successor.cost, next(counter), successor, successor_path)
            )
        if beam_width is not None and len(heap) > beam_width:
            # nsmallest returns ascending order — a valid heap as-is.
            heap = heapq.nsmallest(beam_width, heap)
    if cutoffs:
        recorder = get_recorder()
        if recorder.active:
            recorder.counter("search.bnb_cutoffs").add(cutoffs)
    return list(best_path), explored


def _hill_climb_hermetic(
    base: SearchState,
    members: set[Activity],
    model: CostModel,
    algorithm: str = "HS-Greedy",
) -> tuple[list[tuple[str, str]], list[tuple[str, float]]]:
    """First-improvement hill climbing over a group's ordering (HS-Greedy)."""
    current = base
    path: list[tuple[str, str]] = []
    explored: list[tuple[str, float]] = []
    improved = True
    while improved:
        improved = False
        for swap in _group_swaps(current.workflow, members):
            shifted = swap.try_apply_fast(current.workflow)
            if shifted is None:
                record_transition(
                    algorithm=algorithm,
                    transition=swap,
                    cost_before=current.cost,
                    accepted=False,
                    reason=rejection_reason(swap, current.workflow),
                )
                continue
            successor = current.successor(swap, shifted, model)
            record_transition(
                algorithm=algorithm,
                transition=swap,
                cost_before=current.cost,
                cost_after=successor.cost,
                accepted=True,
            )
            explored.append((successor.signature, successor.cost))
            if successor.cost < current.cost:
                current = successor
                path.append((swap.first.id, swap.second.id))
                improved = True
                break
    return path, explored


def _optimize_all_groups(
    state: SearchState, session: _Session, greedy: bool
) -> SearchState:
    """Optimize every local group of ``state`` and compose the winners.

    In-group swaps leave the group's input cardinality and the rest of
    the graph untouched, so each group's best ordering is independent of
    the others' and the composed state dominates every state any single
    exploration stream visited.  Outcomes come from the transposition
    cache when warm, from the worker pool when ``jobs > 1``, and are
    computed in-process otherwise — all three produce identical streams.
    """
    session.check_budget()
    groups = [
        [activity.id for activity in group]
        for group in state.workflow.local_groups()
        if len(group) >= 2
    ]
    if not groups:
        session.record(state)
        return state
    group_cap = session.config.group_cap
    beam_width = session.budget.beam_width
    bound = session.budget.bound
    recorder = get_recorder()

    keys = [
        _group_memo_key(
            state.signature, ids, greedy, group_cap, beam_width, bound
        )
        for ids in groups
    ]
    outcomes: list[
        tuple[list[tuple[str, str]], list[tuple[str, float]]] | None
    ] = [None] * len(groups)
    pending: list[int] = []
    for index, key in enumerate(keys):
        if session.ns is not None:
            entry = session.ns.get_group(key)
            if entry is not None:
                outcomes[index] = (
                    [tuple(pair) for pair in entry["path"]],
                    [tuple(item) for item in entry["explored"]],
                )
                continue
        pending.append(index)

    if pending:
        # Batch pending groups into contiguous chunks — one pool task per
        # chunk — to amortize dispatch and result shipping.  Chunking is
        # a pure function of the pending count (never of jobs), so the
        # task list, absorb order, and telemetry namespacing are
        # identical for every jobs value.
        chunk = (
            _GROUP_BATCH if len(pending) > _GROUP_BATCH_THRESHOLD else 1
        )
        batches = [
            pending[start : start + chunk]
            for start in range(0, len(pending), chunk)
        ]
        token = session.preload_token
        if token is not None and all(
            step.targets for step in state.lineage
        ):
            # Compact shipping: the workers hold S0 (fork-inherited
            # preload); reference this state by its lineage script
            # instead of pickling the whole workflow per task.
            script = tuple(
                (step.mnemonic, step.targets) for step in state.lineage
            )
            base_ref = (_BASE_REPLAY, token, script, state.signature)
            task_model = None
        else:
            base_ref = (_BASE_INLINE, state.workflow)
            task_model = session.model
        tasks = [
            (
                base_ref,
                [groups[index] for index in batch],
                greedy,
                group_cap,
                task_model,
                recorder.active,
                beam_width,
                bound,
            )
            for batch in batches
        ]
        if session.pool is not None and len(tasks) > 1:
            results = session.pool.map(_group_task, tasks)
        else:
            inline_tasks = [
                ((_BASE_INLINE, state.workflow), task[1], task[2], task[3],
                 session.model) + task[5:]
                for task in tasks
            ]
            results = [_group_task(task) for task in inline_tasks]
        for batch, (batch_outcomes, events) in zip(batches, results):
            # Worker span buffers merge here, in deterministic dispatch
            # order, alongside the search outcomes themselves.
            recorder.absorb(events)
            for index, (path, explored) in zip(batch, batch_outcomes):
                outcomes[index] = (path, explored)
                if session.ns is not None:
                    session.ns.put_group(
                        keys[index],
                        {
                            "path": [list(pair) for pair in path],
                            "explored": [list(item) for item in explored],
                        },
                    )

    # Compose in group order: replay each stream into the visited set,
    # then apply the group's best path.  Identical for any jobs value.
    current = state
    for outcome in outcomes:
        path, explored = outcome
        for signature, cost in explored:
            session.record_stream(signature, cost)
        for first_id, second_id in path:
            swap = Swap(
                current.workflow.node_by_id(first_id),
                current.workflow.node_by_id(second_id),
            )
            current = current.successor(
                swap, swap.apply_fast(current.workflow), session.model
            )
            session.record(current)
    return current


def _group_swaps(workflow: ETLWorkflow, members: set[Activity]) -> list[Swap]:
    """Adjacent swap candidates confined to one local group."""
    swaps: list[Swap] = []
    for activity in sorted(members, key=lambda a: a.id):
        consumers = workflow.consumers(activity)
        if len(consumers) != 1:
            continue
        consumer = consumers[0]
        if isinstance(consumer, Activity) and consumer in members:
            swaps.append(Swap(activity, consumer))
    return swaps


class _DominanceFilter:
    """Phase II/III worklist guard (``SearchBudget.prune_dominated``).

    A produced state whose dominance class already holds a state at
    least as cheap is *recorded* (it counts as visited and updates the
    running best) but not put back on the worklist — the cheaper
    same-class state reaches every ordering it could.  Disabled (the
    default) the filter admits everything and the phases are unchanged.
    """

    def __init__(self, session: _Session, states: list[SearchState]):
        self.enabled = session.budget.prune_dominated
        self.best: dict[str, float] = {}
        if self.enabled:
            for state in states:
                self.admit(state)

    def admit(self, state: SearchState) -> bool:
        if not self.enabled:
            return True
        cls = dominance_class(state.workflow)
        prior = self.best.get(cls)
        if prior is not None and prior <= state.cost:
            recorder = get_recorder()
            if recorder.active:
                recorder.counter("search.pruned_dominated").add(1)
            return False
        self.best[cls] = state.cost
        return True


# -- Phase II: factorization -------------------------------------------------------------


def _phase_factorize(
    visited: list[SearchState],
    homologous_pairs: list[tuple[Activity, Activity, Activity]],
    session: _Session,
) -> list[SearchState]:
    worklist = list(visited)
    produced = list(visited)
    dominance = _DominanceFilter(session, visited)
    for state in worklist:
        for first, second, binary in homologous_pairs:
            if first not in state.workflow or second not in state.workflow:
                continue
            if binary not in state.workflow:
                continue
            shifted_first = _shift_forward_state(state, first, binary, session)
            if shifted_first is None:
                continue
            shifted_both = _shift_forward_state(
                shifted_first, second, binary, session
            )
            if shifted_both is None:
                continue
            factorize = Factorize(binary, first, second)
            try:
                new_workflow = factorize.apply_fast(shifted_both.workflow)
            except TransitionError as exc:
                record_transition(
                    algorithm=session.algorithm,
                    transition=factorize,
                    cost_before=shifted_both.cost,
                    accepted=False,
                    reason=str(exc),
                )
                continue
            new_state = shifted_both.successor(
                factorize, new_workflow, session.model
            )
            record_transition(
                algorithm=session.algorithm,
                transition=factorize,
                cost_before=shifted_both.cost,
                cost_after=new_state.cost,
                accepted=True,
            )
            if (
                session.record(new_state)
                and len(produced) < session.config.phase_state_cap
                and dominance.admit(new_state)
            ):
                produced.append(new_state)
                worklist.append(new_state)
    return produced


# -- Phase III: distribution ---------------------------------------------------------------


def _phase_distribute(
    visited: list[SearchState],
    distributable: list[Activity],
    session: _Session,
) -> list[SearchState]:
    distributable_roots = {_root_id(a.id) for a in distributable}
    worklist = list(visited)
    produced = list(visited)
    dominance = _DominanceFilter(session, visited)
    for state in worklist:
        for activity in _distributable_in_state(state, distributable_roots):
            binary = _nearest_binary_upstream(state.workflow, activity)
            if binary is None:
                continue
            if binary.template.name not in activity.distributes_over:
                continue
            shifted = _shift_backward_state(state, activity, binary, session)
            if shifted is None:
                continue
            distribute = Distribute(binary, activity)
            try:
                new_workflow = distribute.apply_fast(shifted.workflow)
            except TransitionError as exc:
                record_transition(
                    algorithm=session.algorithm,
                    transition=distribute,
                    cost_before=shifted.cost,
                    accepted=False,
                    reason=str(exc),
                )
                continue
            new_state = shifted.successor(distribute, new_workflow, session.model)
            record_transition(
                algorithm=session.algorithm,
                transition=distribute,
                cost_before=shifted.cost,
                cost_after=new_state.cost,
                accepted=True,
            )
            if (
                session.record(new_state)
                and len(produced) < session.config.phase_state_cap
                and dominance.admit(new_state)
            ):
                produced.append(new_state)
                worklist.append(new_state)
    return produced
