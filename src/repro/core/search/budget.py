"""The unified search budget — one knob object for all four algorithms.

Historically every algorithm grew its own budget surface: ES took
``max_states``/``max_seconds`` keyword arguments, HS buried a wall-clock
budget inside :class:`~repro.core.search.heuristic.HSConfig`, and the
annealer had only ``max_seconds``.  :class:`SearchBudget` replaces that
divergence with a single value object accepted (as ``budget=``) by
:func:`~repro.optimize`, :func:`~repro.core.search.exhaustive
.exhaustive_search`, :func:`~repro.core.search.heuristic
.heuristic_search`, :func:`~repro.core.search.greedy.greedy_search` and
:func:`~repro.core.search.annealing.annealing_search` alike.

Besides the two stopping criteria it carries the two *execution* knobs the
parallel engine introduces:

* ``jobs`` — worker processes for the parallel search paths (``1`` =
  serial, ``<= 0`` = one per CPU);
* ``cache`` — the transposition-cache specification, see
  :meth:`~repro.core.search.transposition.TranspositionCache.resolve`.

It also carries the three *pruning* knobs (all off by default — the
default budget reproduces the unpruned algorithms byte-for-byte):

* ``beam_width`` — cap each HS local-group frontier at the ``k``
  cheapest orderings;
* ``prune_dominated`` — drop states dominated by a cheaper
  already-seen state of the same dominance class (see
  :func:`~repro.core.search.bound.dominance_class`);
* ``bound`` — branch-and-bound: cut off states whose admissible lower
  bound (see :mod:`repro.core.search.bound`) cannot beat the incumbent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ReproError

__all__ = ["SearchBudget", "coalesce_budget"]


@dataclass(frozen=True)
class SearchBudget:
    """Uniform stopping and execution budget for one optimizer run.

    Attributes:
        max_states: stop after this many unique states were generated
            (signature-deduplicated); the run reports ``completed=False``.
        max_seconds: wall-clock budget; best-so-far is returned with
            ``completed=False`` when it trips.
        jobs: worker processes for the parallel execution layer.  ``1``
            (the default) keeps every algorithm on its serial path;
            values ``<= 0`` mean "one worker per CPU".
        cache: transposition-cache specification — ``None``/``False`` for
            a run-local in-memory cache, ``True`` for the default on-disk
            location (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), a
            path-like for an explicit cache directory, or a
            :class:`~repro.core.search.transposition.TranspositionCache`
            instance to share one cache across runs.
        beam_width: HS/HS-Greedy only — keep at most this many frontier
            orderings per local-group exploration (Phase I/IV).  ``None``
            (the default) reproduces the unbeamed exploration exactly.
        prune_dominated: drop generated states whose dominance class
            already holds a state at least as cheap (HS Phase II/III
            worklists and the ES frontier).  A heuristic — it may change
            budget-truncated outcomes, never the cost of a state it keeps.
        bound: branch-and-bound — skip expanding states whose admissible
            lower bound cannot beat the incumbent best (HS group
            exploration and the ES frontier).
    """

    max_states: int | None = None
    max_seconds: float | None = None
    jobs: int = 1
    cache: Any = None
    beam_width: int | None = None
    prune_dominated: bool = False
    bound: bool = False

    def __post_init__(self) -> None:
        if self.max_states is not None and self.max_states < 1:
            raise ReproError("SearchBudget.max_states must be at least 1")
        if self.max_seconds is not None and self.max_seconds < 0:
            raise ReproError("SearchBudget.max_seconds must be >= 0")
        if self.beam_width is not None and self.beam_width < 1:
            raise ReproError("SearchBudget.beam_width must be at least 1")

    def resolved_jobs(self) -> int:
        """The effective worker count (``jobs <= 0`` means one per CPU)."""
        if self.jobs <= 0:
            return os.cpu_count() or 1
        return int(self.jobs)


def coalesce_budget(
    budget: SearchBudget | None,
    max_states: int | None = None,
    max_seconds: float | None = None,
) -> SearchBudget:
    """Merge a ``budget=`` argument with an algorithm's legacy kwargs.

    The legacy per-algorithm keywords (``max_states=`` / ``max_seconds=``)
    keep working when no :class:`SearchBudget` is supplied; passing both
    spellings at once is ambiguous and raises.
    """
    if budget is None:
        return SearchBudget(max_states=max_states, max_seconds=max_seconds)
    if max_states is not None or max_seconds is not None:
        raise ReproError(
            "pass stopping criteria either through budget=SearchBudget(...) "
            "or through the legacy max_states=/max_seconds= keywords, not both"
        )
    return budget
