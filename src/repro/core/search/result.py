"""Optimization results and search statistics.

The paper's experiments report three measures per run (Table 2): the
volume of visited states, the improvement over the initial state's cost,
and execution time — plus the quality of the solution relative to the best
known state (Table 1).  :class:`OptimizationResult` carries everything
needed to reproduce those tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.search.state import SearchState

__all__ = ["OptimizationResult"]


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run over one initial workflow."""

    algorithm: str
    initial: SearchState
    best: SearchState
    visited_states: int
    elapsed_seconds: float
    #: False when a budgeted search stopped before exhausting the space
    #: — the paper's "the algorithm did not terminate" footnote.
    completed: bool = True
    #: Transposition-cache hits during this run (0 on a cold run-local cache).
    cache_hits: int = 0
    #: Worker processes the run actually used (1 = serial path).
    jobs: int = 1

    @property
    def visited(self) -> int:
        """Alias for :attr:`visited_states` (uniform reporting surface)."""
        return self.visited_states

    @property
    def elapsed(self) -> float:
        """Alias for :attr:`elapsed_seconds` (uniform reporting surface)."""
        return self.elapsed_seconds

    @property
    def initial_cost(self) -> float:
        return self.initial.cost

    @property
    def best_cost(self) -> float:
        return self.best.cost

    @property
    def improvement_percent(self) -> float:
        """Cost improvement over the initial state, in percent (Table 2)."""
        if self.initial.cost == 0:
            return 0.0
        return 100.0 * (self.initial.cost - self.best.cost) / self.initial.cost

    def quality_percent(self, reference_cost: float) -> float:
        """Quality of solution vs a reference optimum (Table 1).

        100 means this run matched the reference cost; lower values mean
        the found state is costlier.  Computed as ``reference / found`` so
        a run that reaches half-way to the reference scores 50.
        """
        if self.best.cost == 0:
            return 100.0
        return min(100.0, 100.0 * reference_cost / self.best.cost)

    def summary(self) -> str:
        """One-line human-readable report, uniform across algorithms."""
        status = "" if self.completed else " (budget exhausted)"
        return (
            f"{self.algorithm}: cost {self.initial.cost:.0f} -> "
            f"{self.best.cost:.0f} ({self.improvement_percent:.1f}% better), "
            f"{self.visited_states} states visited in "
            f"{self.elapsed_seconds:.2f}s "
            f"[jobs={self.jobs}, cache hits={self.cache_hits}]{status}"
        )
