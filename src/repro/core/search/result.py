"""Optimization results and search statistics.

The paper's experiments report three measures per run (Table 2): the
volume of visited states, the improvement over the initial state's cost,
and execution time — plus the quality of the solution relative to the best
known state (Table 1).  :class:`OptimizationResult` carries everything
needed to reproduce those tables.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.search.state import LineageStep, SearchState

__all__ = ["OptimizationResult"]

#: Canonical mnemonic order for transition-mix reporting (the paper's).
_MNEMONIC_ORDER = ("SWA", "FAC", "DIS", "MER", "SPL")


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run over one initial workflow."""

    algorithm: str
    initial: SearchState
    best: SearchState
    visited_states: int
    elapsed_seconds: float
    #: False when a budgeted search stopped before exhausting the space
    #: — the paper's "the algorithm did not terminate" footnote.
    completed: bool = True
    #: Transposition-cache hits during this run (0 on a cold run-local cache).
    cache_hits: int = 0
    #: Worker processes the run actually used (1 = serial path).
    jobs: int = 1
    #: The winning chain of transitions from ``initial`` to ``best`` —
    #: replayable through the transition system (see
    #: :func:`repro.obs.provenance.replay_lineage`).
    lineage: tuple[LineageStep, ...] = field(default=())

    @property
    def visited(self) -> int:
        """Alias for :attr:`visited_states` (uniform reporting surface)."""
        return self.visited_states

    @property
    def elapsed(self) -> float:
        """Alias for :attr:`elapsed_seconds` (uniform reporting surface)."""
        return self.elapsed_seconds

    @property
    def initial_cost(self) -> float:
        return self.initial.cost

    @property
    def best_cost(self) -> float:
        return self.best.cost

    @property
    def improvement_percent(self) -> float:
        """Cost improvement over the initial state, in percent (Table 2)."""
        if self.initial.cost == 0:
            return 0.0
        return 100.0 * (self.initial.cost - self.best.cost) / self.initial.cost

    def quality_percent(self, reference_cost: float) -> float:
        """Quality of solution vs a reference optimum (Table 1).

        100 means this run matched the reference cost; lower values mean
        the found state is costlier.  Computed as ``reference / found`` so
        a run that reaches half-way to the reference scores 50.
        """
        if self.best.cost == 0:
            return 100.0
        return min(100.0, 100.0 * reference_cost / self.best.cost)

    def transition_mix(self) -> dict[str, int]:
        """Counts of applied transitions in the winning lineage, by mnemonic.

        Keys follow the paper's order (SWA, FAC, DIS, MER, SPL); only
        mnemonics that actually occur are present.
        """
        counts = Counter(step.mnemonic for step in self.lineage)
        ordered = {m: counts.pop(m) for m in _MNEMONIC_ORDER if m in counts}
        ordered.update(sorted(counts.items()))  # future/unknown mnemonics
        return ordered

    def lineage_dicts(self) -> list[dict[str, object]]:
        """The lineage as JSON-able dicts (for artifacts and reports)."""
        return [step.to_dict() for step in self.lineage]

    def summary(self) -> str:
        """Human-readable report, uniform across algorithms.

        The first line carries the cost/volume/time measures of the
        paper's tables; the second attributes the win to its transition
        mix — the sequence provenance the paper discusses but never
        reports.
        """
        status = "" if self.completed else " (budget exhausted)"
        mix = self.transition_mix()
        mix_text = (
            ", ".join(f"{m}:{count}" for m, count in mix.items())
            if mix
            else "none (initial state is optimal)"
        )
        return (
            f"{self.algorithm}: cost {self.initial.cost:.0f} -> "
            f"{self.best.cost:.0f} ({self.improvement_percent:.1f}% better), "
            f"{self.visited_states} states visited in "
            f"{self.elapsed_seconds:.2f}s "
            f"[jobs={self.jobs}, cache hits={self.cache_hits}]{status}\n"
            f"lineage: {len(self.lineage)} step(s), transition mix: {mix_text}"
        )
