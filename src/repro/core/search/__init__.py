"""State-space search algorithms: ES, HS, HS-Greedy (paper section 4)."""

from repro.core.search.annealing import annealing_search
from repro.core.search.exhaustive import exhaustive_search
from repro.core.search.greedy import greedy_search
from repro.core.search.heuristic import HSConfig, heuristic_search
from repro.core.search.result import OptimizationResult
from repro.core.search.state import SearchState

__all__ = [
    "SearchState",
    "OptimizationResult",
    "HSConfig",
    "exhaustive_search",
    "annealing_search",
    "heuristic_search",
    "greedy_search",
]
