"""State-space search: ES, HS, HS-Greedy (paper section 4) and SA.

All algorithms share one execution surface — :class:`SearchBudget` for
stopping criteria plus the ``jobs``/``cache`` knobs, the
:class:`~repro.core.search.transposition.TranspositionCache` transposition
memo, and the :mod:`~repro.core.search.parallel` process-pool layer with
its :func:`optimize_many` batch driver.
"""

from repro.core.search.annealing import annealing_search
from repro.core.search.budget import SearchBudget
from repro.core.search.exhaustive import exhaustive_search
from repro.core.search.greedy import greedy_search
from repro.core.search.heuristic import HSConfig, heuristic_search
from repro.core.search.parallel import WorkerPool, optimize_many, run_search
from repro.core.search.result import OptimizationResult
from repro.core.search.state import SearchState
from repro.core.search.transposition import TranspositionCache

__all__ = [
    "SearchState",
    "OptimizationResult",
    "SearchBudget",
    "TranspositionCache",
    "WorkerPool",
    "HSConfig",
    "exhaustive_search",
    "annealing_search",
    "heuristic_search",
    "greedy_search",
    "run_search",
    "optimize_many",
]
