"""Simulated annealing over the transition space (an extension).

The paper ships ES / HS / HS-Greedy; randomized local search is the
natural next point on the quality/effort curve and slots straight into
the same state space: states are workflows, neighbours are the applicable
transitions, and the objective is ``C(S)``.  This implementation is a
textbook Metropolis scheme with geometric cooling and a seeded RNG, so
runs are reproducible.

It exists to *compare against* the paper's algorithms (see
``benchmarks/bench_ablation_annealing.py``); it is not part of the
reproduction claims.
"""

from __future__ import annotations

import math
import random
import time

from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.search.result import OptimizationResult
from repro.core.search.state import SearchState
from repro.core.transitions.enumerate import candidate_transitions
from repro.core.workflow import ETLWorkflow

__all__ = ["annealing_search"]


def annealing_search(
    workflow: ETLWorkflow,
    model: CostModel | None = None,
    seed: int = 0,
    steps: int = 2000,
    initial_temperature: float | None = None,
    cooling: float = 0.995,
    max_seconds: float | None = None,
) -> OptimizationResult:
    """Optimize with simulated annealing.

    Args:
        workflow: the initial state ``S0``.
        model: cost model (default: processed-rows).
        seed: RNG seed; equal seeds give equal runs.
        steps: number of proposed moves.
        initial_temperature: Metropolis temperature at step 0; defaults to
            5 % of the initial state's cost (accepting small regressions
            early on).
        cooling: geometric cooling factor per step.
        max_seconds: wall-clock budget; returns best-so-far when it trips.
    """
    model = model if model is not None else ProcessedRowsCostModel()
    rng = random.Random(seed)
    started = time.perf_counter()

    initial = SearchState.initial(workflow, model)
    current = initial
    best = initial
    seen: set[str] = {initial.signature}
    temperature = (
        initial_temperature
        if initial_temperature is not None
        else max(1.0, 0.05 * initial.cost)
    )
    completed = True

    for _ in range(steps):
        if max_seconds is not None and time.perf_counter() - started > max_seconds:
            completed = False
            break
        candidates = list(candidate_transitions(current.workflow))
        if not candidates:
            break
        rng.shuffle(candidates)
        moved = False
        for transition in candidates:
            successor_workflow = transition.try_apply(current.workflow)
            if successor_workflow is None:
                continue
            successor = current.successor(transition, successor_workflow, model)
            seen.add(successor.signature)
            delta = successor.cost - current.cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                current = successor
                if successor.cost < best.cost:
                    best = successor
                moved = True
                break
        if not moved:
            break  # local minimum with no acceptable uphill move proposed
        temperature *= cooling

    return OptimizationResult(
        algorithm="SA",
        initial=initial,
        best=best,
        visited_states=len(seen),
        elapsed_seconds=time.perf_counter() - started,
        completed=completed,
    )
