"""Simulated annealing over the transition space (an extension).

The paper ships ES / HS / HS-Greedy; randomized local search is the
natural next point on the quality/effort curve and slots straight into
the same state space: states are workflows, neighbours are the applicable
transitions, and the objective is ``C(S)``.  This implementation is a
textbook Metropolis scheme with geometric cooling and a seeded RNG, so
runs are reproducible.

It exists to *compare against* the paper's algorithms (see
``benchmarks/bench_ablation_annealing.py``); it is not part of the
reproduction claims.
"""

from __future__ import annotations

import math
import random
import time

from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.search.budget import SearchBudget, coalesce_budget
from repro.core.search.result import OptimizationResult
from repro.core.search.state import SearchState
from repro.core.search.transposition import TranspositionCache
from repro.core.transitions.enumerate import candidate_transitions
from repro.core.workflow import ETLWorkflow
from repro.obs import get_recorder, record_transition, rejection_reason

__all__ = ["annealing_search"]


def annealing_search(
    workflow: ETLWorkflow,
    model: CostModel | None = None,
    seed: int = 0,
    steps: int = 2000,
    initial_temperature: float | None = None,
    cooling: float = 0.995,
    max_seconds: float | None = None,
    budget: SearchBudget | None = None,
    pool=None,
) -> OptimizationResult:
    """Optimize with simulated annealing.

    Args:
        workflow: the initial state ``S0``.
        model: cost model (default: processed-rows).
        seed: RNG seed; equal seeds give equal runs.
        steps: number of proposed moves.
        initial_temperature: Metropolis temperature at step 0; defaults to
            5 % of the initial state's cost (accepting small regressions
            early on).
        cooling: geometric cooling factor per step.
        max_seconds: legacy spelling of ``budget.max_seconds``.
        budget: uniform :class:`SearchBudget`; ``jobs != 1`` runs that
            many independent chains (seeds ``seed .. seed+jobs-1``) on a
            worker pool and returns the best endpoint — see
            :func:`~repro.core.search.parallel.annealing_multi_chain`.
        pool: optional shared worker pool (see
            :func:`~repro.core.search.parallel.optimize_many`).
    """
    model = model if model is not None else ProcessedRowsCostModel()
    budget = coalesce_budget(budget, max_seconds=max_seconds)

    if budget.resolved_jobs() > 1:
        from repro.core.search.parallel import annealing_multi_chain

        return annealing_multi_chain(
            workflow,
            model,
            budget,
            seed=seed,
            steps=steps,
            initial_temperature=initial_temperature,
            cooling=cooling,
            pool=pool,
        )

    cache, owned_cache = TranspositionCache.resolve(budget.cache)
    hits_before = cache.hits
    recorder = get_recorder()
    rng = random.Random(seed)
    started = time.perf_counter()

    try:
        initial = SearchState.initial(workflow, model)
        # The walk records every proposed state's cost (it never *reads*
        # the cache mid-walk, so equal seeds give equal runs regardless of
        # cache warmth); other algorithms get the totals for free.
        ns = cache.namespace(initial.workflow, model)
        ns.put_cost(initial.signature, initial.cost)
        current = initial
        best = initial
        seen: set[str] = {initial.signature}
        temperature = (
            initial_temperature
            if initial_temperature is not None
            else max(1.0, 0.05 * initial.cost)
        )
        completed = True

        for _ in range(steps):
            if (
                budget.max_seconds is not None
                and time.perf_counter() - started > budget.max_seconds
            ):
                completed = False
                break
            if budget.max_states is not None and len(seen) >= budget.max_states:
                completed = False
                break
            candidates = list(candidate_transitions(current.workflow))
            if not candidates:
                break
            rng.shuffle(candidates)
            moved = False
            for transition in candidates:
                successor_workflow = transition.try_apply_fast(current.workflow)
                if successor_workflow is None:
                    record_transition(
                        algorithm="SA",
                        transition=transition,
                        cost_before=current.cost,
                        accepted=False,
                        reason=rejection_reason(transition, current.workflow),
                    )
                    continue
                successor = current.successor(transition, successor_workflow, model)
                seen.add(successor.signature)
                ns.put_cost(successor.signature, successor.cost)
                delta = successor.cost - current.cost
                accepted = delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-9)
                )
                # counter_outcome stays "applied" either way: the move was
                # applicable; acceptance is the separate Metropolis verdict
                # tracked by search.sa.moves.
                record_transition(
                    algorithm="SA",
                    transition=transition,
                    cost_before=current.cost,
                    cost_after=successor.cost,
                    accepted=accepted,
                    reason=(
                        None
                        if accepted
                        else f"Metropolis rejection (delta={delta:.6g}, "
                        f"temperature={temperature:.6g})"
                    ),
                    counter_outcome="applied",
                )
                if accepted:
                    recorder.counter(
                        "search.sa.moves", outcome="accepted"
                    ).add()
                    current = successor
                    if successor.cost < best.cost:
                        best = successor
                    moved = True
                    break
                recorder.counter("search.sa.moves", outcome="rejected").add()
            if not moved:
                break  # local minimum with no acceptable uphill move proposed
            temperature *= cooling

        elapsed = time.perf_counter() - started
        recorder.record_span(
            "search.sa.chain", elapsed, chain=seed, algorithm="SA"
        )
        return OptimizationResult(
            algorithm="SA",
            initial=initial,
            best=best,
            visited_states=len(seen),
            elapsed_seconds=elapsed,
            completed=completed,
            cache_hits=cache.hits - hits_before,
            jobs=1,
            lineage=best.lineage,
        )
    finally:
        if owned_cache:
            cache.flush()
