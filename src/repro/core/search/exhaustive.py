"""ES — the Exhaustive Search algorithm (section 4.2).

ES formalizes the state space as a graph whose nodes are states and whose
edges are transitions, and explores it breadth-first: while unvisited
states remain, pick one, generate its children, and finally return the
cheapest visited state.  The space is finite (signature-identified states,
finitely many transitions), so ES terminates — eventually.  The paper let
it run for up to 40 hours and still reports "did not terminate" for medium
and large workflows; our implementation accepts explicit ``max_states`` /
``max_seconds`` budgets and reports ``completed=False`` with the best
state found when a budget trips, mirroring that methodology.
"""

from __future__ import annotations

import heapq
import time
from collections import deque

from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.search.bound import (
    bound_prunes,
    dominance_class,
    mobile_root_ids,
    state_lower_bound,
)
from repro.core.search.budget import SearchBudget, coalesce_budget
from repro.core.search.result import OptimizationResult
from repro.core.search.state import SearchState
from repro.core.search.transposition import TranspositionCache
from repro.core.signature import state_signature
from repro.core.transitions.enumerate import candidate_transitions
from repro.core.workflow import ETLWorkflow
from repro.exceptions import ReproError
from repro.obs import get_recorder, record_transition, rejection_reason

__all__ = ["exhaustive_search"]


def exhaustive_search(
    workflow: ETLWorkflow,
    model: CostModel | None = None,
    max_states: int | None = None,
    max_seconds: float | None = None,
    strategy: str = "best_first",
    budget: SearchBudget | None = None,
    pool=None,
) -> OptimizationResult:
    """Explore the full state space (subject to budgets) and return the best.

    The paper's ES keeps a set of unvisited states and "picks an unvisited
    state" without fixing an order; run to completion any order explores
    the same (finite) space.  Under a budget the order matters, so two
    strategies are offered: ``"best_first"`` (default — expand the
    cheapest known state next, which makes budget-truncated runs report a
    meaningful best-so-far, the paper's medium/large methodology) and
    ``"breadth_first"`` (plain FIFO).

    Args:
        workflow: the initial state ``S0``.
        model: cost model; defaults to the paper's processed-rows model.
        max_states: legacy spelling of ``budget.max_states``.
        max_seconds: legacy spelling of ``budget.max_seconds``.
        strategy: ``"best_first"`` or ``"breadth_first"``.
        budget: uniform :class:`SearchBudget`; with ``jobs != 1`` the
            best-first frontier expands in parallel waves (see
            :func:`~repro.core.search.parallel.parallel_exhaustive`;
            breadth-first stays serial).  ``budget.cache`` memoizes state
            costs so warm re-runs skip re-costing.
        pool: optional shared worker pool (see
            :func:`~repro.core.search.parallel.optimize_many`).

    Returns:
        An :class:`OptimizationResult` whose ``completed`` flag records
        whether the space was exhausted within budget.
    """
    if strategy not in ("best_first", "breadth_first"):
        raise ReproError(f"unknown ES strategy {strategy!r}")
    model = model if model is not None else ProcessedRowsCostModel()
    budget = coalesce_budget(budget, max_states=max_states, max_seconds=max_seconds)

    if budget.resolved_jobs() > 1 and strategy == "best_first":
        from repro.core.search.parallel import parallel_exhaustive

        return parallel_exhaustive(workflow, model, budget, pool=pool)

    cache, owned_cache = TranspositionCache.resolve(budget.cache)
    hits_before = cache.hits
    started = time.perf_counter()
    try:
        initial = SearchState.initial(workflow, model)
        ns = cache.namespace(initial.workflow, model)
        ns.put_cost(initial.signature, initial.cost)

        seen: set[str] = {initial.signature}
        # Pruning modes (both default off, leaving the classic traversal
        # untouched): dominance keeps per-class incumbents, B&B skips
        # expanding states whose admissible lower bound the incumbent
        # best already meets.  Pruned states still count as visited.
        class_best: dict[str, float] | None = None
        if budget.prune_dominated:
            class_best = {dominance_class(initial.workflow): initial.cost}
        mobile = mobile_root_ids(initial.workflow) if budget.bound else None
        pruned_dominated = 0
        bnb_cutoffs = 0
        best_first = strategy == "best_first"
        heap: list[tuple[float, str, SearchState]] = []
        fifo: deque[SearchState] = deque()
        if best_first:
            heap.append((initial.cost, initial.signature, initial))
        else:
            fifo.append(initial)
        best = initial
        completed = True

        while heap or fifo:
            if budget.max_states is not None and len(seen) >= budget.max_states:
                completed = False
                break
            if (
                budget.max_seconds is not None
                and time.perf_counter() - started > budget.max_seconds
            ):
                completed = False
                break
            if best_first:
                _, _, state = heapq.heappop(heap)
            else:
                state = fifo.popleft()
            if mobile is not None and bound_prunes(
                state_lower_bound(state, model, mobile), best.cost
            ):
                bnb_cutoffs += 1
                continue
            for transition in candidate_transitions(state.workflow):
                successor_workflow = transition.try_apply_fast(state.workflow)
                if successor_workflow is None:
                    record_transition(
                        algorithm="ES",
                        transition=transition,
                        cost_before=state.cost,
                        accepted=False,
                        reason=rejection_reason(transition, state.workflow),
                    )
                    continue
                # Signature-first dedup: re-derived states are skipped
                # before any costing work happens.
                signature = state_signature(successor_workflow)
                if signature in seen:
                    record_transition(
                        algorithm="ES",
                        transition=transition,
                        cost_before=state.cost,
                        accepted=False,
                        reason="duplicate state (signature already visited)",
                        counter_outcome="duplicate",
                    )
                    continue
                seen.add(signature)
                successor = ns.successor(
                    state, transition, successor_workflow, model, signature
                )
                record_transition(
                    algorithm="ES",
                    transition=transition,
                    cost_before=state.cost,
                    cost_after=successor.cost,
                    accepted=True,
                )
                if successor.cost < best.cost:
                    best = successor
                if class_best is not None:
                    cls = dominance_class(successor.workflow)
                    prior = class_best.get(cls)
                    if prior is not None and prior <= successor.cost:
                        # Counted as visited, compared against best, but
                        # never expanded — a cheaper same-class state is
                        # already on (or through) the frontier.
                        pruned_dominated += 1
                        continue
                    class_best[cls] = successor.cost
                if best_first:
                    heapq.heappush(
                        heap, (successor.cost, successor.signature, successor)
                    )
                else:
                    fifo.append(successor)
                if (
                    budget.max_states is not None
                    and len(seen) >= budget.max_states
                ):
                    completed = False
                    break

        recorder = get_recorder()
        if recorder.active:
            if pruned_dominated:
                recorder.counter("search.pruned_dominated").add(
                    pruned_dominated
                )
            if bnb_cutoffs:
                recorder.counter("search.bnb_cutoffs").add(bnb_cutoffs)
        return OptimizationResult(
            algorithm="ES",
            initial=initial,
            best=best,
            visited_states=len(seen),
            elapsed_seconds=time.perf_counter() - started,
            completed=completed,
            cache_hits=cache.hits - hits_before,
            jobs=1,
            lineage=best.lineage,
        )
    finally:
        if owned_cache:
            cache.flush()
