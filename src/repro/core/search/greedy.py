"""HS-Greedy — the greedy variant of the heuristic search (section 4.2).

"If, instead of swapping all pairs of activities for each local group, HS
swaps only those that lead to a state with less cost than the existing
minimum, then HS becomes a greedy algorithm: HS-Greedy."

Implementation-wise this is :func:`repro.core.search.heuristic
.heuristic_search` with ``greedy=True``: Phases I and IV hill-climb with
first-improvement swaps instead of exploring each group's reachable
orderings.  The paper's profile — almost as good on small workflows, much
faster everywhere, increasingly unstable on large ones — emerges from that
single change.
"""

from __future__ import annotations

from repro.core.cost.model import CostModel
from repro.core.search.budget import SearchBudget
from repro.core.search.heuristic import HSConfig, heuristic_search
from repro.core.search.result import OptimizationResult
from repro.core.workflow import ETLWorkflow

__all__ = ["greedy_search"]


def greedy_search(
    workflow: ETLWorkflow,
    model: CostModel | None = None,
    merge_constraints: tuple[tuple[str, str], ...] = (),
    config: HSConfig | None = None,
    budget: SearchBudget | None = None,
    pool=None,
) -> OptimizationResult:
    """Run HS-Greedy on the initial state; see :func:`heuristic_search`.

    The :class:`SearchBudget` pruning knobs pass through unchanged:
    ``prune_dominated`` filters the Phase II/III worklists exactly as in
    HS, while ``beam_width`` and ``bound`` are no-ops here — greedy hill
    climbing keeps a one-state frontier, so there is nothing to beam or
    cut off.
    """
    return heuristic_search(
        workflow,
        model=model,
        merge_constraints=merge_constraints,
        config=config,
        greedy=True,
        budget=budget,
        pool=pool,
    )
