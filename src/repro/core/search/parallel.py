"""Process-pool execution layer for the search algorithms, plus the
batch driver that amortizes pool and cache across many workflows.

Three parallelization schemes, matched to the structure of each search
(Liu's shared-caching + parallel-partitions recipe for ETL dataflows):

* **HS / HS-Greedy** — Phase I/IV local-group exploration is
  embarrassingly parallel: one pool task per local group, outcomes merged
  deterministically in group order by the main process (see
  :mod:`repro.core.search.heuristic`), so parallel runs return
  byte-identical best states and visited counts to serial ones.
* **ES** — wave expansion: the ``_WAVE`` cheapest frontier states are
  popped together and their successor generation/costing fans out across
  workers; the main process merges children in pop-order × enumeration
  order.  The wave size is constant (independent of ``jobs``), so runs
  that complete the space agree with serial ES on the explored set.
* **SA** — multi-chain annealing: ``jobs`` independent seeded chains run
  concurrently and the best endpoint wins (ties to the lowest chain
  index); a classic restart portfolio that trades extra CPU for a better
  chance of escaping local minima.

All tasks are pure functions of picklable inputs.  A payload the pool
cannot ship (say, a closure-based cost model) or a pool-infrastructure
failure degrades the call to the serial path — with a ``RuntimeWarning``
and a telemetry counter, never silently — while exceptions raised *by
a task* propagate to the caller on every path.

The pool is also a **fork server**: :meth:`WorkerPool.preload` installs
a payload (workflow + cost model) in the parent before the workers fork,
so forked children inherit it through copy-on-write instead of receiving
it pickled per task.  HS ships compact ``(token, lineage-script)``
references against the preloaded workflow (see
:mod:`repro.core.search.heuristic`), and the engine's partitioned
executor reuses the same pool for its shard fan-out
(:mod:`repro.engine.partition`).
"""

from __future__ import annotations

import heapq
import pickle
import threading
import time
import warnings
from dataclasses import replace
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_all_start_methods, get_context
from typing import Any, Callable, Iterable, Sequence

from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.search.annealing import annealing_search
from repro.core.search.bound import (
    bound_prunes,
    dominance_class,
    mobile_root_ids,
    state_lower_bound,
)
from repro.core.search.budget import SearchBudget
from repro.core.search.exhaustive import exhaustive_search
from repro.core.search.greedy import greedy_search
from repro.core.search.heuristic import heuristic_search
from repro.core.search.result import OptimizationResult
from repro.core.search.state import SearchState
from repro.core.search.transposition import TranspositionCache
from repro.core.transitions.enumerate import candidate_transitions
from repro.core.workflow import ETLWorkflow
from repro.exceptions import ReproError
from repro.obs import (
    NULL_RECORDER,
    Recorder,
    get_recorder,
    record_transition,
    rejection_reason,
    use_recorder,
)

__all__ = [
    "WorkerPool",
    "preloaded",
    "unload",
    "ALGORITHMS",
    "run_search",
    "optimize_many",
]

#: Frontier states expanded per ES wave — constant, NOT scaled with
#: ``jobs``, so the traversal order does not depend on the worker count.
_WAVE = 16

#: One registry for every accepted algorithm spelling.
ALGORITHMS: dict[str, Callable[..., OptimizationResult]] = {
    "annealing": annealing_search,
    "sa": annealing_search,
    "exhaustive": exhaustive_search,
    "es": exhaustive_search,
    "heuristic": heuristic_search,
    "hs": heuristic_search,
    "greedy": greedy_search,
    "hs-greedy": greedy_search,
}


#: Fork-server payloads: installed in the parent *before* the pool's
#: workers start, so fork children inherit them copy-on-write and tasks
#: can reference a heavy object by token instead of pickling it.  Spawn
#: children receive a pickled copy once, via the pool initializer.
_PRELOADED: dict[str, Any] = {}

#: Keep at most this many preload payloads in the parent — long batch
#: runs over many distinct workflows evict insertion-oldest entries
#: (forked workers keep their inherited copies regardless).
_PRELOAD_CAP = 64

#: Sentinel marking a map slot whose pool future has not resolved yet.
_PENDING: Any = object()


def _install_preloaded(payload: dict[str, Any]) -> None:
    """Pool initializer (spawn start method): install preloads by value."""
    _PRELOADED.update(payload)


def preloaded(token: str) -> Any:
    """The payload :meth:`WorkerPool.preload` installed under ``token``.

    Called from worker tasks; raises ``KeyError`` when the token was
    never installed in this process — a real wiring bug that must
    propagate, not degrade.
    """
    return _PRELOADED[token]


def unload(token: str) -> None:
    """Drop a preload payload from this process (no-op when absent).

    For one-shot payloads (e.g. the engine's per-run shard context) that
    should not linger in the parent until cap eviction.  Running forked
    workers keep their inherited copies — callers close their pool
    alongside this.
    """
    _PRELOADED.pop(token, None)


class WorkerPool:
    """A lazily-started process pool with an *accounted* serial fallback.

    Workers start on first use — ``fork`` where available and the parent
    is single-threaded (tasks inherit the loaded modules and any
    :meth:`preload` payloads without re-import or pickling), else
    ``forkserver``/``spawn`` with preloads shipped once via the pool
    initializer (see :meth:`_start_method`).  Failures are split two ways:

    * **infrastructure** failures (pool cannot start, a worker died, the
      payload cannot be pickled) degrade the call to in-process
      execution, with a ``RuntimeWarning`` (once per pool) and a bump of
      the ``degraded_counter`` telemetry counter per degraded call —
      parallelism is an accelerator here, never a requirement, but its
      loss is never silent;
    * exceptions raised **by the task itself** propagate to the caller
      unchanged, exactly as they would in-process.

    The fallback is idempotent: tasks that completed inside a pool that
    later broke keep their results — only unfinished tasks re-run
    in-process, so per-task side channels (telemetry event buffers) are
    produced exactly once per task.
    """

    def __init__(
        self, jobs: int, degraded_counter: str = "search.pool_degraded"
    ):
        self.jobs = max(1, int(jobs))
        self.degraded_counter = degraded_counter
        self._executor: ProcessPoolExecutor | None = None
        #: Preload tokens the running executor's workers inherited.
        self._executor_tokens: frozenset[str] = frozenset()
        self._warned_degraded = False

    def preload(self, token: str, payload: Any) -> None:
        """Install ``payload`` under ``token`` for worker-side lookup.

        Must be called before the tasks that call :func:`preloaded` with
        the token are mapped.  If the pool's workers already started
        without this token, the pool is restarted — the fork-server
        contract is that children fork *after* the preload, inheriting
        it for free.
        """
        if token not in _PRELOADED:
            # Tokens are content hashes (fingerprints), so an existing
            # entry is interchangeable with ``payload`` — keep it, and
            # keep the running workers that inherited it.
            while len(_PRELOADED) >= _PRELOAD_CAP:
                _PRELOADED.pop(next(iter(_PRELOADED)))
            _PRELOADED[token] = payload
        if self._executor is not None and token not in self._executor_tokens:
            self.close()

    @staticmethod
    def _start_method() -> str:
        """Pick the safest available start method for this parent.

        ``fork`` is the cheap default (children inherit loaded modules and
        preloads copy-on-write) — but forking a *multi-threaded* parent is
        undefined behaviour in POSIX: another thread may hold an internal
        lock (allocator, logging, asyncio) at fork time and the child
        deadlocks on first use.  The serve daemon is exactly such a parent,
        so when any other thread is alive we switch to ``forkserver``
        (single-threaded fork origin, preloads shipped by initializer) or
        ``spawn``.
        """
        available = get_all_start_methods()
        if threading.active_count() > 1:
            for method in ("forkserver", "spawn"):
                if method in available:
                    return method
        return "fork" if "fork" in available else "spawn"

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            method = self._start_method()
            tokens = frozenset(_PRELOADED)
            if method == "fork":
                # Children inherit ``_PRELOADED`` through fork; no
                # initializer needed (and none of its pickling cost).
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=get_context(method)
                )
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=get_context(method),
                    initializer=_install_preloaded,
                    initargs=(dict(_PRELOADED),),
                )
            self._executor_tokens = tokens
        return self._executor

    def _degrade(self, reason: str) -> None:
        """Account one genuine degradation: counter always, warning once."""
        recorder = get_recorder()
        if recorder.active:
            recorder.counter(self.degraded_counter).add()
        if not self._warned_degraded:
            self._warned_degraded = True
            warnings.warn(
                f"worker pool degraded to serial execution: {reason}",
                RuntimeWarning,
                stacklevel=4,
            )

    def map(self, task: Callable, args: Iterable) -> list:
        """Run ``task`` over ``args``, preserving order.

        Task-raised exceptions propagate; only infrastructure failures
        (unstartable pool, unpicklable payload, broken worker) fall back
        to in-process execution — accounted via :meth:`_degrade`.
        """
        args = list(args)
        if self.jobs <= 1 or len(args) <= 1:
            return [task(arg) for arg in args]
        try:
            executor = self._ensure()
        except OSError as exc:
            self._degrade(f"pool failed to start ({exc})")
            return [task(arg) for arg in args]
        # Probe payload picklability explicitly, up front: an unshippable
        # payload is a *degradation*; without the probe it would surface
        # as an opaque future exception indistinguishable from task bugs.
        try:
            pickle.dumps((task, args[0]), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # pickling raises many concrete types
            self._degrade(f"task payload is not picklable ({exc})")
            return [task(arg) for arg in args]
        try:
            futures = [executor.submit(task, arg) for arg in args]
        except (RuntimeError, OSError) as exc:
            self._degrade(f"pool rejected task submission ({exc})")
            self.close()
            return [task(arg) for arg in args]
        results: list = [_PENDING] * len(args)
        try:
            for index, future in enumerate(futures):
                results[index] = future.result()
        except (BrokenProcessPool, pickle.PicklingError) as exc:
            # Infrastructure died mid-run.  Keep every result the pool
            # did deliver (idempotent fallback: a completed task's
            # telemetry buffer is absorbed exactly once) and recompute
            # only the rest in-process.
            self._degrade(f"pool broke mid-run ({exc.__class__.__name__})")
            self.close()
            for index, future in enumerate(futures):
                if results[index] is not _PENDING:
                    continue
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    results[index] = future.result()
                else:
                    results[index] = task(args[index])
        except BaseException:
            # A task-raised error propagates; don't leave stragglers
            # running behind the caller's back.
            for future in futures:
                future.cancel()
            raise
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._executor_tokens = frozenset()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- ES: parallel wave expansion ---------------------------------------------------------


def _expand_task(
    args: tuple[SearchState, CostModel, bool, str | None],
) -> tuple[list[SearchState], list[dict]]:
    """Generate and cost every successor of one state (pure).

    Returns the successors plus the task's telemetry buffer — workers ship
    their span/counter events back with the expansion so the parent merges
    them in deterministic pop order.  The shipped trace id (if any) rides
    along so worker spans carry the originating request's ``trace`` tag
    at the source, not just after absorb-side stamping.
    """
    state, model, telemetry, trace = args
    local = Recorder() if telemetry else NULL_RECORDER
    successors: list[SearchState] = []
    with use_recorder(local), local.trace(trace):
        with local.span("search.es.expand"):
            for transition in candidate_transitions(state.workflow):
                successor_workflow = transition.try_apply_fast(state.workflow)
                if successor_workflow is None:
                    record_transition(
                        algorithm="ES",
                        transition=transition,
                        cost_before=state.cost,
                        accepted=False,
                        reason=rejection_reason(transition, state.workflow),
                    )
                    continue
                successor = state.successor(
                    transition, successor_workflow, model
                )
                record_transition(
                    algorithm="ES",
                    transition=transition,
                    cost_before=state.cost,
                    cost_after=successor.cost,
                    accepted=True,
                )
                successors.append(successor)
    return successors, local.events()


def parallel_exhaustive(
    workflow: ETLWorkflow,
    model: CostModel | None,
    budget: SearchBudget,
    pool: WorkerPool | None = None,
) -> OptimizationResult:
    """Best-first ES with wave-parallel frontier expansion.

    Completed runs explore exactly the serial algorithm's (finite,
    signature-deduplicated) space; budget-truncated runs may cut the
    frontier at a different point than serial ES would.
    """
    model = model if model is not None else ProcessedRowsCostModel()
    cache, owned_cache = TranspositionCache.resolve(budget.cache)
    hits_before = cache.hits
    jobs = budget.resolved_jobs()
    owned_pool = pool is None
    if owned_pool:
        pool = WorkerPool(jobs)
    started = time.perf_counter()
    try:
        initial = SearchState.initial(workflow, model)
        ns = cache.namespace(initial.workflow, model)
        ns.put_cost(initial.signature, initial.cost)
        seen: set[str] = {initial.signature}
        heap: list[tuple[float, str, SearchState]] = [
            (initial.cost, initial.signature, initial)
        ]
        best = initial
        completed = True
        # Pruning runs entirely in the main process (wave selection and
        # child merge), so worker count never changes what gets pruned.
        class_best: dict[str, float] | None = None
        if budget.prune_dominated:
            class_best = {dominance_class(initial.workflow): initial.cost}
        mobile = mobile_root_ids(initial.workflow) if budget.bound else None
        pruned_dominated = 0
        bnb_cutoffs = 0

        def budget_tripped() -> bool:
            if budget.max_states is not None and len(seen) >= budget.max_states:
                return True
            if budget.max_seconds is not None:
                return time.perf_counter() - started > budget.max_seconds
            return False

        recorder = get_recorder()
        while heap:
            if budget_tripped():
                completed = False
                break
            wave: list[tuple[float, str, SearchState]] = []
            while heap and len(wave) < _WAVE:
                item = heapq.heappop(heap)
                if mobile is not None and bound_prunes(
                    state_lower_bound(item[2], model, mobile), best.cost
                ):
                    bnb_cutoffs += 1
                    continue
                wave.append(item)
            if not wave:
                break
            with recorder.span(
                "search.es.wave", states=len(wave), algorithm="ES"
            ):
                expansions = pool.map(
                    _expand_task,
                    [
                        (
                            state,
                            model,
                            recorder.active,
                            recorder.current_trace_id(),
                        )
                        for _, _, state in wave
                    ],
                )
                for _, events in expansions:
                    recorder.absorb(events)
            for successors, _ in expansions:
                for successor in successors:
                    if successor.signature in seen:
                        continue
                    seen.add(successor.signature)
                    ns.put_cost(successor.signature, successor.cost)
                    if successor.cost < best.cost:
                        best = successor
                    if class_best is not None:
                        cls = dominance_class(successor.workflow)
                        prior = class_best.get(cls)
                        if prior is not None and prior <= successor.cost:
                            pruned_dominated += 1
                            continue
                        class_best[cls] = successor.cost
                    heapq.heappush(
                        heap, (successor.cost, successor.signature, successor)
                    )
                    if (
                        budget.max_states is not None
                        and len(seen) >= budget.max_states
                    ):
                        completed = False
                        break
                if not completed:
                    break
            if not completed:
                break

        if recorder.active:
            if pruned_dominated:
                recorder.counter("search.pruned_dominated").add(
                    pruned_dominated
                )
            if bnb_cutoffs:
                recorder.counter("search.bnb_cutoffs").add(bnb_cutoffs)
        return OptimizationResult(
            algorithm="ES",
            initial=initial,
            best=best,
            visited_states=len(seen),
            elapsed_seconds=time.perf_counter() - started,
            completed=completed,
            cache_hits=cache.hits - hits_before,
            jobs=jobs,
            lineage=best.lineage,
        )
    finally:
        if owned_pool:
            pool.close()
        if owned_cache:
            cache.flush()


# -- SA: multi-chain portfolio -----------------------------------------------------------


def _anneal_chain(
    args: tuple[ETLWorkflow, CostModel | None, dict, bool, str | None],
) -> tuple[OptimizationResult, list[dict]]:
    """One annealing chain plus its telemetry buffer (worker-safe)."""
    workflow, model, kwargs, telemetry, trace = args
    local = Recorder() if telemetry else NULL_RECORDER
    with use_recorder(local), local.trace(trace):
        # The per-chain span is recorded inside annealing_search itself, so
        # serial and pooled chains produce identical telemetry shapes.
        result = annealing_search(workflow, model=model, **kwargs)
    return result, local.events()


def annealing_multi_chain(
    workflow: ETLWorkflow,
    model: CostModel | None,
    budget: SearchBudget,
    seed: int = 0,
    steps: int = 2000,
    initial_temperature: float | None = None,
    cooling: float = 0.995,
    pool: WorkerPool | None = None,
) -> OptimizationResult:
    """Run ``jobs`` independent annealing chains and keep the best endpoint.

    Chain ``i`` uses seed ``seed + i``; chain 0 is exactly the serial run,
    so the portfolio never returns a worse state than ``jobs=1`` with the
    same seed.  ``visited_states`` sums the per-chain counts (chains do
    not share a dedup set).
    """
    jobs = budget.resolved_jobs()
    recorder = get_recorder()
    chain_budget = SearchBudget(
        max_states=budget.max_states, max_seconds=budget.max_seconds
    )
    tasks = [
        (
            workflow,
            model,
            {
                "seed": seed + chain,
                "steps": steps,
                "initial_temperature": initial_temperature,
                "cooling": cooling,
                "budget": chain_budget,
            },
            recorder.active,
            recorder.current_trace_id(),
        )
        for chain in range(jobs)
    ]
    owned_pool = pool is None
    if owned_pool:
        pool = WorkerPool(jobs)
    started = time.perf_counter()
    try:
        outcomes = pool.map(_anneal_chain, tasks)
    finally:
        if owned_pool:
            pool.close()
    chains = [result for result, _ in outcomes]
    for _, events in outcomes:
        recorder.absorb(events)
    winner_index = min(
        range(len(chains)), key=lambda i: (chains[i].best.cost, i)
    )
    winner = chains[winner_index]
    # Every chain starts from the same S0, so the winner's lineage replays
    # from chains[0].initial even though another chain produced it.
    return OptimizationResult(
        algorithm="SA",
        initial=chains[0].initial,
        best=winner.best,
        visited_states=sum(chain.visited_states for chain in chains),
        elapsed_seconds=time.perf_counter() - started,
        completed=all(chain.completed for chain in chains),
        cache_hits=0,
        jobs=jobs,
        lineage=winner.best.lineage,
    )


# -- dispatch + batch driver -------------------------------------------------------------


def run_search(
    algorithm: str,
    workflow: ETLWorkflow,
    model: CostModel | None = None,
    budget: SearchBudget | None = None,
    pool: WorkerPool | None = None,
    **kwargs,
) -> OptimizationResult:
    """Dispatch one run to the algorithm registry (every spelling)."""
    try:
        search = ALGORITHMS[algorithm.lower()]
    except KeyError:
        raise ReproError(
            f"unknown algorithm {algorithm!r}; choose one of "
            f"{sorted(set(ALGORITHMS))}"
        ) from None
    return search(workflow, model=model, budget=budget, pool=pool, **kwargs)


def optimize_many(
    workflows: Sequence[ETLWorkflow],
    algorithm: str = "heuristic",
    model: CostModel | None = None,
    budget: SearchBudget | None = None,
    **kwargs,
) -> list[OptimizationResult]:
    """Optimize a batch of workflows on one shared pool and cache.

    The heavy-traffic batch case: worker processes are forked once and
    the transposition cache persists across runs, so repeated (or
    similar) workflows skip re-exploration — repeats of a workflow
    already optimized in the batch report nonzero ``cache_hits`` and
    return in a fraction of the first run's time.
    """
    budget = budget if budget is not None else SearchBudget()
    cache, owned_cache = TranspositionCache.resolve(budget.cache)
    # dataclasses.replace keeps *every* knob — rebuilding the budget field
    # by field once silently dropped the PR 6 pruning knobs (beam_width /
    # prune_dominated / bound), so batch runs ignored them.
    shared_budget = replace(budget, cache=cache)
    jobs = budget.resolved_jobs()
    pool = WorkerPool(jobs) if jobs > 1 else None
    try:
        return [
            run_search(
                algorithm,
                workflow,
                model=model,
                budget=shared_budget,
                pool=pool,
                **kwargs,
            )
            for workflow in workflows
        ]
    finally:
        if pool is not None:
            pool.close()
        if owned_cache:
            cache.flush()
