"""Core model: workflows, transitions, costing, equivalence, search."""

from repro.core.activity import Activity, CompositeActivity
from repro.core.attributes import AttributeMapping, NamingRegistry
from repro.core.builder import WorkflowBuilder
from repro.core.equivalence import (
    EquivalenceReport,
    symbolically_equivalent,
    target_schemas,
)
from repro.core.predicates import (
    Predicate,
    node_predicates,
    workflow_post_condition,
)
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import EMPTY_SCHEMA, Schema
from repro.core.signature import state_signature
from repro.core.workflow import DerivedSchemas, ETLWorkflow

__all__ = [
    "Activity",
    "CompositeActivity",
    "AttributeMapping",
    "NamingRegistry",
    "WorkflowBuilder",
    "RecordSet",
    "RecordSetKind",
    "Schema",
    "EMPTY_SCHEMA",
    "ETLWorkflow",
    "DerivedSchemas",
    "state_signature",
    "Predicate",
    "node_predicates",
    "workflow_post_condition",
    "EquivalenceReport",
    "symbolically_equivalent",
    "target_schemas",
]
