"""Activities: the transformation nodes of an ETL workflow (section 2.1).

Formally an activity is a quadruple ``A = (Id, I, O, S)``: identifier, input
schemata, output schemata, and semantics.  In this implementation the
*input/output* schemata are **derived state** — recomputed by
:meth:`repro.core.workflow.ETLWorkflow.propagate_schemas` after every
transition, exactly as the paper prescribes ("after each transition has
taken place, the input and output schemata of each activity are
automatically re-generated").  What an :class:`Activity` object stores is
the *template-level* information of section 3.2: the functionality,
generated, and projected-out schemata, the declared selectivity, and the
instantiation parameters.

Activity objects are immutable value-like descriptors; states (workflow
graphs) share them, which makes state copies cheap during search.

:class:`CompositeActivity` implements the paper's MERGE packaging: a linear
chain of unary activities treated as a single unary node (id ``"4+5"``),
with externally visible auxiliary schemata derived from its parts.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.core.schema import Schema
from repro.exceptions import SchemaError, TemplateError, WorkflowError
from repro.templates.base import ActivityKind, ActivityTemplate, SchemaPlan
from repro.templates.builtin import (
    derive_unary_output,
    derive_binary_output,
    distributes_over_for,
)

__all__ = ["Activity", "CompositeActivity", "base_clone_id"]


def base_clone_id(activity_id: str) -> str:
    """Strip a distribute-clone suffix (``_1``/``_2``) from an activity id.

    DIS names its clones ``<id>_1`` and ``<id>_2``; FAC of two clones that
    share a base recovers the base id, so FAC(DIS(S)) reproduces the
    signature of S and the search space stays free of spurious duplicates.
    """
    if activity_id.endswith(("_1", "_2")):
        return activity_id[:-2]
    return activity_id


class Activity:
    """One instantiated activity (an immutable descriptor).

    Attributes:
        id: unique identifier; the execution priority from the topological
            order of the *initial* workflow (section 4.1), kept for the full
            lifespan of the activity across transitions.
        template: the :class:`ActivityTemplate` this instantiates.
        params: the validated instantiation parameters.
        selectivity: declared output/input row ratio used by cost models
            (for aggregations: the grouping ratio; for joins: the fraction
            of the cross product surviving).
        name: display name, e.g. ``"σ(ECOST_M>100)"``; defaults to a
            rendering of template and parameters.
    """

    __slots__ = (
        "id",
        "template",
        "params",
        "selectivity",
        "name",
        "_plan",
        "_derive_cache",
    )

    def __init__(
        self,
        id: str,
        template: ActivityTemplate,
        params: Mapping[str, Any],
        selectivity: float = 1.0,
        name: str | None = None,
    ):
        if not isinstance(id, str) or not id:
            raise WorkflowError(f"activity id must be a non-empty string, got {id!r}")
        if selectivity < 0:
            raise TemplateError(f"activity {id}: selectivity must be >= 0")
        self.id = id
        self.template = template
        self.params = template.validate_params(params)
        self.selectivity = float(selectivity)
        self._plan: SchemaPlan = template.plan(self.params)
        self.name = name if name is not None else self._default_name()
        self._derive_cache: dict[tuple[Schema, ...], Schema | SchemaError] = {}

    def _default_name(self) -> str:
        rendered = ",".join(str(v) for v in self.params.values())
        return f"{self.template.predicate_name}({rendered})"

    # -- structural properties ------------------------------------------------

    @property
    def arity(self) -> int:
        return self.template.arity

    @property
    def is_unary(self) -> bool:
        return self.template.is_unary

    @property
    def is_binary(self) -> bool:
        return self.template.is_binary

    @property
    def kind(self) -> ActivityKind:
        return self.template.kind

    # -- auxiliary schemata (section 3.2) --------------------------------------

    @property
    def functionality(self) -> Schema:
        """Attributes taking part in the computation."""
        return self._plan.functionality

    @property
    def functionality_per_input(self) -> tuple[Schema, ...]:
        return self._plan.functionality_per_input

    @property
    def generated(self) -> Schema:
        """Attributes created by the activity."""
        return self._plan.generated

    @property
    def projected_out(self) -> Schema:
        """Input attributes not propagated further."""
        return self._plan.projected_out

    @property
    def distributes_over(self) -> frozenset[str]:
        """Binary template names this instance may be moved across."""
        return distributes_over_for(self.template, self.params)

    # -- schema derivation ------------------------------------------------------

    def derive_output(self, input_schemas: tuple[Schema, ...]) -> Schema:
        """Output schema for concrete input schemas (validates subset rules).

        Memoized per activity: during search the same activity sees the
        same input schemas across thousands of states, so schema
        regeneration after a transition is mostly cache hits.
        """
        cached = self._derive_cache.get(input_schemas)
        if cached is not None:
            if isinstance(cached, SchemaError):
                raise cached
            return cached
        try:
            output = self._derive_output_uncached(input_schemas)
        except SchemaError as exc:
            # Rejections repeat just as often as successes during search.
            self._derive_cache[input_schemas] = exc
            raise
        self._derive_cache[input_schemas] = output
        return output

    def _derive_output_uncached(self, input_schemas: tuple[Schema, ...]) -> Schema:
        if len(input_schemas) != self.arity:
            raise SchemaError(
                f"activity {self.id}: expected {self.arity} input schema(s), "
                f"got {len(input_schemas)}"
            )
        for fun, schema in zip(self.functionality_per_input, input_schemas):
            if not fun.issubset(schema):
                missing = sorted(fun.as_set - schema.as_set)
                raise SchemaError(
                    f"activity {self.id} ({self.name}): functionality "
                    f"attributes {missing} missing from input schema {schema}"
                )
        if self.is_binary:
            left, right = input_schemas
            if self.template.name in ("union", "difference", "intersection"):
                if not left.compatible(right):
                    raise SchemaError(
                        f"activity {self.id} ({self.name}): branch schemas "
                        f"{left} and {right} are not compatible"
                    )
            return derive_binary_output(self.template, self.params, left, right)
        output = derive_unary_output(
            self.template, self.params, self._plan, input_schemas[0]
        )
        return output

    # -- equivalence helpers -----------------------------------------------------

    def semantics_key(self) -> tuple:
        """Hashable rendering of the algebraic semantics of this activity.

        Two activities are *homologous candidates* when their semantics keys
        match: same template, same parameters, same selectivity (section
        3.2: "same semantics ... same functionality, generated and
        projected-out schemata" — with derived schemata, parameters pin all
        three).
        """
        return (
            self.template.name,
            _freeze(self.params),
            self.selectivity,
        )

    def clone(self, new_id: str) -> "Activity":
        """A copy of this activity under a different id (used by DIS)."""
        return Activity(
            new_id, self.template, self.params, self.selectivity, self.name
        )

    def __repr__(self) -> str:
        return f"Activity({self.id}:{self.name})"


def _freeze(value: Any) -> Any:
    """Recursively convert params into hashable structures."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value


class CompositeActivity(Activity):
    """A MERGE package: a linear chain of unary activities as one unary node.

    Merging "packages" activities that must not be separated or reordered
    (section 2.2): the optimizer treats the composite as one opaque unary
    activity, which proactively prunes the search space (Heuristic 3).
    SPLIT restores the components.

    The composite's externally visible schemata are derived from the parts:

    * functionality — attributes a component reads that were not generated
      by an earlier component (i.e. attributes required from the outside);
    * generated — attributes generated by some component and still alive at
      the end of the chain;
    * projected-out — external attributes dropped by some component.
    """

    __slots__ = ("components",)

    def __init__(self, components: tuple[Activity, ...]):
        if len(components) < 2:
            raise WorkflowError("CompositeActivity needs at least two components")
        for comp in components:
            if not comp.is_unary:
                raise WorkflowError(
                    f"cannot merge non-unary activity {comp.id} ({comp.name})"
                )
        self.components = components
        composite_id = "+".join(c.id for c in components)
        selectivity = 1.0
        for comp in components:
            selectivity *= comp.selectivity
        name = "+".join(c.name for c in components)
        # Bypass Activity.__init__ (no single template); set fields directly.
        self.id = composite_id
        self.template = components[0].template  # representative; see kind below
        self.params = {}
        self.selectivity = selectivity
        self.name = name
        self._plan = self._derive_plan(components)
        self._derive_cache = {}

    @staticmethod
    def _derive_plan(components: tuple[Activity, ...]) -> SchemaPlan:
        external_fun: list[str] = []
        external_proj: list[str] = []
        live_generated: list[str] = []
        for comp in components:
            for attr in comp.functionality:
                if attr not in live_generated and attr not in external_fun:
                    external_fun.append(attr)
            for attr in comp.projected_out:
                if attr in live_generated:
                    live_generated.remove(attr)
                elif attr not in external_proj:
                    external_proj.append(attr)
            for attr in comp.generated:
                if attr not in live_generated:
                    live_generated.append(attr)
        return SchemaPlan(
            functionality_per_input=(Schema(external_fun),),
            generated=Schema(live_generated),
            projected_out=Schema(external_proj),
        )

    @property
    def arity(self) -> int:
        return 1

    @property
    def is_unary(self) -> bool:
        return True

    @property
    def is_binary(self) -> bool:
        return False

    @property
    def kind(self) -> ActivityKind:
        """AGGREGATION when any component aggregates, else FUNCTION."""
        for comp in self.components:
            if comp.kind is ActivityKind.AGGREGATION:
                return ActivityKind.AGGREGATION
        return ActivityKind.FUNCTION

    @property
    def distributes_over(self) -> frozenset[str]:
        """A composite moves across a binary only if every component does."""
        result: frozenset[str] | None = None
        for comp in self.components:
            allowed = comp.distributes_over
            result = allowed if result is None else (result & allowed)
        return result if result is not None else frozenset()

    def _derive_output_uncached(self, input_schemas: tuple[Schema, ...]) -> Schema:
        if len(input_schemas) != 1:
            raise SchemaError(
                f"composite {self.id}: expected 1 input schema, "
                f"got {len(input_schemas)}"
            )
        schema = input_schemas[0]
        for comp in self.components:
            schema = comp.derive_output((schema,))
        return schema

    def semantics_key(self) -> tuple:
        return ("composite",) + tuple(c.semantics_key() for c in self.components)

    def clone(self, new_id: str) -> "Activity":
        raise WorkflowError(
            "composite activities cannot be cloned; split them first"
        )

    def split_pair(self) -> tuple[Activity, Activity]:
        """Split into (first component, rest) per the paper's SPL definition.

        ``a+b+c`` splits into ``a`` and ``b+c``; a two-component composite
        splits into its two plain activities.
        """
        first = self.components[0]
        rest = self.components[1:]
        if len(rest) == 1:
            return first, rest[0]
        return first, CompositeActivity(rest)

    def __repr__(self) -> str:
        return f"CompositeActivity({self.id})"
